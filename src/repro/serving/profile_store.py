"""Bounded, content-hash-keyed stores for derived column state.

PR 1 memoized every derived view of a column (non-null/text/numeric values,
value counts, seeded samples, ``profile_column`` statistics, and — through the
featurizer — the column-local feature vector) on the :class:`Column` object
itself.  That is ideal for batch jobs, but a long-running service wraps many
*short-lived* ``Column`` instances around recurring content: every request
deserialises fresh tables, so the caches die with them.

:class:`ProfileStore` lifts those memo namespaces off the column into a
process-wide LRU keyed by :meth:`Column.content_hash`
(header + cell values), so any two columns with identical content — across
tables, requests, and customers — share one namespace of derived state.
Derived state is a pure function of column content, which is what makes the
sharing safe: a warm entry is byte-for-byte what the cold computation would
have produced, so predictions are unchanged (pinned by
``tests/test_serving.py``).

:class:`PersistentProfileStore` layers an append-only **disk tier** under that
LRU, so warm state additionally survives process restarts and can be shared
by ``multiprocess:N`` workers.  Namespaces are pickled into segment files
keyed by the same content hashes, written behind the request path by a
background flusher, recovered tolerantly on open (torn or corrupt tails of a
segment are skipped, everything before them is served), and compacted when
superseded records accumulate.  The persistence layer never changes
predictions either: a disk-warm entry is the pickle round-trip of the exact
bytes the cold computation produces (pinned by
``tests/test_store_persistence.py`` and the E12 benchmark).

Install a store globally with :meth:`ProfileStore.activate` (a long-running
service does this once at startup) or temporarily with the
:meth:`ProfileStore.activated` context manager.  Sizing: one entry holds the
derived state of one distinct column (roughly the column's values again, plus
a ~200-float feature vector), so ``max_columns`` of a few thousand costs tens
of megabytes; size it to the working set of distinct columns you expect
between repeats, not to total traffic.  After retraining or refitting any
model component, :meth:`clear` the store — entries are keyed by content only
and would otherwise serve features from the old model (``clear`` on a
persistent store deletes its segment files too).  See ``docs/SERVING.md`` for
the operator-facing guide.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.core.errors import ConfigurationError
from repro.core.table import get_active_profile_store, set_active_profile_store

__all__ = ["ProfileStore", "PersistentProfileStore"]


class ProfileStore:
    """A bounded LRU of per-column derived-state namespaces.

    Thread-safe: the threaded execution backend and the async service hit one
    shared store concurrently.  Namespace *creation and eviction* are guarded
    by a lock; the namespaces themselves are plain dicts filled by
    :meth:`Column._memo` — concurrent fills of the same key recompute the same
    deterministic value, so last-write-wins is harmless.

    Subclasses can layer a second tier underneath by overriding the
    ``_load_fallback`` / ``_entry_evicted`` / ``_invalidate_tier`` /
    ``_clear_tier`` hooks (see :class:`PersistentProfileStore`); the hot-path
    behaviour of the plain in-memory store is unchanged.
    """

    def __init__(self, max_columns: int = 4096) -> None:
        if max_columns < 1:
            raise ConfigurationError("max_columns must be at least 1")
        self.max_columns = max_columns
        self._lock = threading.RLock()
        self._namespaces: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ access
    def namespace(self, content_hash: str) -> dict:
        """The shared derived-state dict for a column content hash.

        Creates (and possibly evicts the least recently used entry) on first
        sight; moves the entry to most-recently-used position on every hit.
        Subclasses with a second tier get a chance to serve the entry from
        there before a fresh namespace is created.
        """
        with self._lock:
            entry = self._namespaces.get(content_hash)
            if entry is not None:
                self.hits += 1
                self._namespaces.move_to_end(content_hash)
                return entry
            entry = self._load_fallback(content_hash)
            if entry is None:
                self.misses += 1
                entry = {}
            self._namespaces[content_hash] = entry
            while len(self._namespaces) > self.max_columns:
                evicted_hash, evicted = self._namespaces.popitem(last=False)
                self._entry_evicted(evicted_hash, evicted)
                self.evictions += 1
            return entry

    def invalidate(self, content_hash: str) -> bool:
        """Drop one entry (used by ``Column.invalidate_cache``); True if present.

        On a tiered store this reaches every tier: the in-memory entry is
        dropped *and* any persisted copy is tombstoned.
        """
        with self._lock:
            in_memory = self._namespaces.pop(content_hash, None) is not None
            in_tier = self._invalidate_tier(content_hash)
            return in_memory or in_tier

    def clear(self) -> None:
        """Drop every entry (in every tier) and reset the statistics."""
        with self._lock:
            self._namespaces.clear()
            self._clear_tier()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._namespaces)

    def __contains__(self, content_hash: str) -> bool:
        return content_hash in self._namespaces

    # ----------------------------------------------------------- tier hooks
    def _load_fallback(self, content_hash: str) -> dict | None:
        """Serve a namespace from a lower tier on an LRU miss (None = miss)."""
        return None

    def _entry_evicted(self, content_hash: str, namespace: dict) -> None:
        """Called (under the lock) for every entry the LRU evicts."""

    def _invalidate_tier(self, content_hash: str) -> bool:
        """Drop *content_hash* from the lower tier; True if it was present."""
        return False

    def _clear_tier(self) -> None:
        """Drop the lower tier's state entirely."""

    # ------------------------------------------------------------- installation
    def activate(self) -> "ProfileStore":
        """Install this store process-wide (returns self for chaining)."""
        set_active_profile_store(self)
        return self

    def deactivate(self) -> None:
        """Uninstall this store if it is the active one."""
        if get_active_profile_store() is self:
            set_active_profile_store(None)

    @contextmanager
    def activated(self) -> Iterator["ProfileStore"]:
        """Temporarily install this store, restoring the previous one after."""
        previous = set_active_profile_store(self)
        try:
            yield self
        finally:
            set_active_profile_store(previous)

    # ------------------------------------------------------------------- report
    @property
    def lookups(self) -> int:
        """Total namespace lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of namespace lookups served from a warm entry."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """Counters for dashboards, benchmarks, and the E11/E12 reports."""
        return {
            "entries": len(self._namespaces),
            "max_columns": self.max_columns,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entries={len(self._namespaces)}, "
            f"max_columns={self.max_columns}, hit_rate={self.hit_rate:.2f})"
        )


# --------------------------------------------------------------------- on-disk
#: Magic bytes opening every segment file (versioned).
_SEGMENT_MAGIC = b"SPSEG1\n"
#: Record header: flag (u8), 16-byte key digest, payload length (u64 LE),
#: payload crc32 (u32 LE).
_RECORD_HEADER = struct.Struct("<B16sQI")
_RECORD_DATA = 0x01
_RECORD_TOMBSTONE = 0x02


class PersistentProfileStore(ProfileStore):
    """A :class:`ProfileStore` with an append-only on-disk tier.

    The in-memory LRU stays exactly as before; underneath it, namespaces are
    pickled into **segment files** inside *directory*, keyed by the same
    :meth:`Column.content_hash`.  The design is a tiny log-structured store:

    * **Append-only segments.**  Every persisted namespace is one framed
      record (flag, 16-byte key digest, length, crc32, pickle payload).  A
      record for an already-stored key simply supersedes the older record;
      :meth:`ProfileStore.invalidate` appends a *tombstone*.  Nothing is ever
      rewritten in place, so a crash can only ever damage the tail of the
      active segment.
    * **Write-behind flusher.**  ``namespace()`` never touches the disk on the
      write side; a daemon thread wakes every *flush_interval* seconds and
      appends every namespace whose content changed since it was last
      persisted (:meth:`flush` does the same synchronously, and eviction from
      the LRU flushes the evicted entry so warm state is never lost).  Set
      ``flush_interval=0`` to disable the thread and flush manually.
    * **Corruption-tolerant recovery.**  Opening a directory scans its
      segments in order and indexes every intact record; the first torn or
      corrupt record of a segment (bad magic, short header, short payload,
      crc mismatch) stops that segment's scan — everything before it is
      served, everything after it is ignored and counted in
      ``corrupt_records_skipped``.
    * **Compaction.**  Superseded records and tombstones are dead bytes;
      :meth:`compact` (also triggered automatically after a flush once the
      dead fraction passes *compaction_dead_ratio*) copies the live records
      into a fresh segment and deletes the old files.
    * **Fork-friendly.**  Each process appends to its own segment file, so
      forked ``multiprocess:N`` workers inheriting the store can persist
      independently without interleaving writes; recovery merges all
      segments.  (Deterministic derived state makes concurrent writers safe:
      any two records for one key hold equivalent payloads.)

    Namespaces are served **lazily**: recovery only builds the key index, and
    a namespace is unpickled the first time a request asks for it (counted in
    ``disk_hits`` — :attr:`hit_rate` includes both tiers).

    Parameters
    ----------
    directory:
        Segment-file directory, created if missing.  Reopening the same
        directory after a restart serves the previous process's warm state.
    max_columns:
        In-memory LRU capacity (the disk tier is unbounded until compaction).
    flush_interval:
        Seconds between write-behind flushes; ``0`` disables the background
        thread (explicit :meth:`flush`/:meth:`close` only).
    segment_max_bytes:
        Active segment rolls over to a new file beyond this size.
    compaction_dead_ratio:
        Auto-compact (after a flush) once dead bytes exceed this fraction of
        the total on-disk bytes.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_columns: int = 4096,
        flush_interval: float = 1.0,
        segment_max_bytes: int = 32 * 1024 * 1024,
        compaction_dead_ratio: float = 0.5,
    ) -> None:
        super().__init__(max_columns=max_columns)
        if flush_interval < 0:
            raise ConfigurationError("flush_interval must be non-negative")
        if segment_max_bytes < 1:
            raise ConfigurationError("segment_max_bytes must be positive")
        if not 0.0 < compaction_dead_ratio <= 1.0:
            raise ConfigurationError("compaction_dead_ratio must be in (0, 1]")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.flush_interval = flush_interval
        self.segment_max_bytes = segment_max_bytes
        self.compaction_dead_ratio = compaction_dead_ratio

        # Disk-tier statistics (all monotonic counters except the byte gauges).
        self.disk_hits = 0
        self.flushes = 0
        self.flushed_entries = 0
        self.recovered_entries = 0
        self.corrupt_records_skipped = 0
        self.tombstones = 0
        self.compactions = 0
        self.pickle_errors = 0

        #: content hash -> (segment path, payload offset, payload length).
        self._index: dict[str, tuple[Path, int, int]] = {}
        #: Segments this store may retire: files present at open plus files
        #: this process wrote.  A concurrent sibling's newer segments are
        #: never touched by our compaction.
        self._owned_paths: set[Path] = set()
        #: Namespace sizes as last persisted (dirty = live size differs).
        self._persisted_sizes: dict[str, int] = {}
        #: Keys whose namespaces failed to pickle (never retried).
        self._unpicklable: set[str] = set()
        self._live_bytes = 0
        self._total_bytes = 0
        self._next_segment_index = 1
        self._writer = None
        self._writer_path: Path | None = None
        self._writer_size = 0
        self._writer_pid: int | None = None
        self._flusher: threading.Thread | None = None
        self._flusher_wakeup = threading.Event()
        self._closed = False
        self._recover()

    # ----------------------------------------------------------------- recovery
    def _recover(self) -> None:
        """Index every intact record in the directory's segment files."""
        header_size = _RECORD_HEADER.size
        for path in sorted(self.directory.glob("segment-*.seg")):
            try:
                segment_index = int(path.name.split("-")[1])
                self._next_segment_index = max(self._next_segment_index, segment_index + 1)
            except (IndexError, ValueError):
                pass
            try:
                data = path.read_bytes()
            except OSError:
                self.corrupt_records_skipped += 1
                continue
            self._owned_paths.add(path)
            if not data.startswith(_SEGMENT_MAGIC):
                self.corrupt_records_skipped += 1
                continue
            self._total_bytes += len(data)
            offset = len(_SEGMENT_MAGIC)
            while offset < len(data):
                if offset + header_size > len(data):
                    self.corrupt_records_skipped += 1
                    break
                flag, key_bytes, length, crc = _RECORD_HEADER.unpack_from(data, offset)
                payload_offset = offset + header_size
                if flag not in (_RECORD_DATA, _RECORD_TOMBSTONE) or (
                    payload_offset + length > len(data)
                ):
                    self.corrupt_records_skipped += 1
                    break
                payload = data[payload_offset : payload_offset + length]
                if zlib.crc32(payload) != crc:
                    self.corrupt_records_skipped += 1
                    break
                key = key_bytes.hex()
                previous = self._index.pop(key, None)
                if previous is not None:
                    self._live_bytes -= header_size + previous[2]
                if flag == _RECORD_DATA:
                    self._index[key] = (path, payload_offset, length)
                    self._live_bytes += header_size + length
                offset = payload_offset + length
        self.recovered_entries = len(self._index)

    # ----------------------------------------------------------------- writing
    def _ensure_writer(self):
        """The append handle for this process's active segment (fork-aware)."""
        pid = os.getpid()
        if self._writer is not None and self._writer_pid == pid:
            if self._writer_size < self.segment_max_bytes:
                return self._writer
            self._writer.close()
            self._writer = None
        elif self._writer is not None:
            # Forked child: the inherited handle shares the parent's file
            # offset — abandon it (without closing the shared fd state) and
            # append to a segment of our own.
            self._writer = None
            self._flusher = None
        path = self.directory / f"segment-{self._next_segment_index:08d}-{pid}.seg"
        self._next_segment_index += 1
        # Unbuffered: a record is visible to readers as soon as it is written,
        # which keeps eviction-flushed entries immediately loadable.
        self._writer = open(path, "ab", buffering=0)
        if self._writer.tell() == 0:
            self._writer.write(_SEGMENT_MAGIC)
            self._total_bytes += len(_SEGMENT_MAGIC)
        self._writer_path = path
        self._writer_size = self._writer.tell()
        self._writer_pid = pid
        self._owned_paths.add(path)
        return self._writer

    def _append_record(self, flag: int, content_hash: str, payload: bytes) -> None:
        writer = self._ensure_writer()
        header = _RECORD_HEADER.pack(
            flag, bytes.fromhex(content_hash), len(payload), zlib.crc32(payload)
        )
        payload_offset = self._writer_size + len(header)
        writer.write(header + payload)
        record_size = len(header) + len(payload)
        self._writer_size += record_size
        self._total_bytes += record_size
        previous = self._index.pop(content_hash, None)
        if previous is not None:
            self._live_bytes -= _RECORD_HEADER.size + previous[2]
        if flag == _RECORD_DATA:
            assert self._writer_path is not None
            self._index[content_hash] = (self._writer_path, payload_offset, len(payload))
            self._live_bytes += record_size

    @staticmethod
    def _snapshot_namespace(namespace: dict) -> dict | None:
        """A shallow copy that tolerates concurrent fills (None = try later)."""
        for _ in range(4):
            try:
                return dict(namespace)
            except RuntimeError:  # resized mid-copy by a concurrent _memo fill
                continue
        return None

    def flush(self) -> int:
        """Synchronously persist every dirty in-memory namespace.

        A namespace is dirty when its number of memoized entries differs from
        the last persisted record (derived-state entries are only ever added,
        never mutated).  Returns the number of namespaces written.  Called
        periodically by the write-behind flusher and on :meth:`close`.
        """
        with self._lock:
            if self._closed:
                return 0
            flushed = 0
            for content_hash, namespace in list(self._namespaces.items()):
                if self._flush_entry(content_hash, namespace):
                    flushed += 1
            if flushed:
                self.flushes += 1
                self.flushed_entries += flushed
                assert self._writer is not None
                os.fsync(self._writer.fileno())
            self._maybe_compact()
            return flushed

    def _flush_entry(self, content_hash: str, namespace: dict) -> bool:
        """Append one namespace's record if it is dirty; True if written."""
        size = len(namespace)
        if (
            size == 0
            or size == self._persisted_sizes.get(content_hash)
            or content_hash in self._unpicklable
        ):
            return False
        snapshot = self._snapshot_namespace(namespace)
        if snapshot is None:
            return False
        try:
            payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - a foreign unpicklable cache entry
            self.pickle_errors += 1
            self._unpicklable.add(content_hash)
            return False
        self._append_record(_RECORD_DATA, content_hash, payload)
        self._persisted_sizes[content_hash] = len(snapshot)
        return True

    def _schedule_flusher(self) -> None:
        if self.flush_interval <= 0 or self._closed:
            return
        with self._lock:  # check-then-start must be atomic across threads
            if self._closed:
                return
            flusher = self._flusher
            if flusher is not None and flusher.is_alive():
                return
            self._flusher = threading.Thread(
                target=self._flusher_loop, name="profile-store-flusher", daemon=True
            )
            self._flusher.start()

    def _flusher_loop(self) -> None:
        while not self._closed:
            self._flusher_wakeup.wait(self.flush_interval)
            if self._closed:
                return
            self.flush()

    # ----------------------------------------------------------------- reading
    def namespace(self, content_hash: str) -> dict:
        entry = super().namespace(content_hash)
        self._schedule_flusher()
        return entry

    def _load_fallback(self, content_hash: str) -> dict | None:
        if self._closed:
            return None
        location = self._index.get(content_hash)
        if location is None:
            return None
        path, payload_offset, length = location
        try:
            with open(path, "rb") as handle:
                handle.seek(payload_offset)
                payload = handle.read(length)
            if len(payload) != length:
                raise EOFError(f"short read in {path.name}")
            namespace = pickle.loads(payload)
            if not isinstance(namespace, dict):
                raise TypeError("persisted namespace is not a dict")
        except Exception:  # noqa: BLE001 - a damaged record is a miss, not a crash
            self.corrupt_records_skipped += 1
            self._index.pop(content_hash, None)
            self._live_bytes -= _RECORD_HEADER.size + length
            return None
        self.disk_hits += 1
        self._persisted_sizes[content_hash] = len(namespace)
        return namespace

    # ------------------------------------------------------------------- tiers
    def _entry_evicted(self, content_hash: str, namespace: dict) -> None:
        # Write-behind must not lose warm state: persist the evicted entry
        # (if dirty) before the memory tier forgets it.
        if not self._closed:
            self._flush_entry(content_hash, namespace)
        self._persisted_sizes.pop(content_hash, None)

    def _invalidate_tier(self, content_hash: str) -> bool:
        self._persisted_sizes.pop(content_hash, None)
        self._unpicklable.discard(content_hash)
        if self._closed or content_hash not in self._index:
            return False
        self._append_record(_RECORD_TOMBSTONE, content_hash, b"")
        self.tombstones += 1
        return True

    def _clear_tier(self) -> None:
        self._close_writer()
        for path in self.directory.glob("segment-*.seg"):
            try:
                path.unlink()
            except OSError:
                pass
        self._index.clear()
        self._persisted_sizes.clear()
        self._unpicklable.clear()
        self._owned_paths.clear()
        self._live_bytes = 0
        self._total_bytes = 0
        self.disk_hits = 0
        self.recovered_entries = 0

    # --------------------------------------------------------------- compaction
    @property
    def dead_bytes(self) -> int:
        """On-disk bytes held by superseded records and tombstones."""
        return max(0, self._total_bytes - self._live_bytes)

    def _maybe_compact(self) -> None:
        if self._total_bytes and self.dead_bytes > self.compaction_dead_ratio * self._total_bytes:
            self.compact()

    @staticmethod
    def _read_payload(path: Path, payload_offset: int, length: int) -> bytes | None:
        try:
            with open(path, "rb") as handle:
                handle.seek(payload_offset)
                payload = handle.read(length)
        except OSError:
            return None
        return payload if len(payload) == length else None

    def compact(self) -> None:
        """Rewrite the live records into one fresh segment, drop the rest.

        Copies raw payload bytes (no pickle round-trip), fsyncs the new
        segment, then deletes the retired files — a crash mid-compaction
        leaves either the old segments or the complete new one.  The bulk of
        the reading happens *outside* the store lock (a snapshot of the index
        is taken first, and entries that moved meanwhile are re-read under
        the lock), so request-path lookups are not stalled for the whole
        rewrite.

        Only segments this store knows — files indexed at open time or
        written by this process — are ever unlinked.  A segment some *other*
        concurrent process (e.g. a forked worker) created after our open is
        left untouched, so compaction can never destroy a sibling's freshly
        persisted records.  The converse race (a sibling compacting away a
        shared segment we still reference) degrades gracefully: the lookup
        counts as corrupt and the entry is recomputed — warmth is lost,
        predictions never change.
        """
        with self._lock:
            if self._closed:
                return
            snapshot = dict(self._index)
        # Phase 1 (unlocked): read the live payloads referenced at snapshot time.
        payloads: dict[str, bytes] = {}
        unreadable = 0
        for content_hash, (path, payload_offset, length) in snapshot.items():
            payload = self._read_payload(path, payload_offset, length)
            if payload is None:
                unreadable += 1
            else:
                payloads[content_hash] = payload
        with self._lock:
            if self._closed:
                return
            self.corrupt_records_skipped += unreadable
            # Phase 2 (locked): catch up with whatever the flusher wrote since
            # the snapshot, and drop entries invalidated meanwhile.
            for content_hash, location in self._index.items():
                if snapshot.get(content_hash) != location:
                    payload = self._read_payload(*location)
                    if payload is None:
                        self.corrupt_records_skipped += 1
                        payloads.pop(content_hash, None)
                    else:
                        payloads[content_hash] = payload
            # Keys invalidated since the snapshot are gone from the index and
            # must not be resurrected by compaction.
            payloads = {
                content_hash: payload
                for content_hash, payload in payloads.items()
                if content_hash in self._index
            }
            retired = {path for path, _, _ in self._index.values()} | set(self._owned_paths)
            if self._writer_path is not None:
                retired.add(self._writer_path)
            self._close_writer()
            self._index.clear()
            self._live_bytes = 0
            self._total_bytes = 0
            for content_hash, payload in payloads.items():
                self._append_record(_RECORD_DATA, content_hash, payload)
            if self._writer is not None:
                os.fsync(self._writer.fileno())
            current = {self._writer_path} if self._writer_path is not None else set()
            self._owned_paths = set(current)
            for path in retired - current:
                try:
                    path.unlink()
                except OSError:
                    pass
            self.compactions += 1

    # ---------------------------------------------------------------- lifecycle
    def _close_writer(self) -> None:
        if self._writer is not None and self._writer_pid == os.getpid():
            try:
                self._writer.close()
            except OSError:
                pass
        self._writer = None
        self._writer_path = None
        self._writer_size = 0
        self._writer_pid = None

    def close(self) -> None:
        """Flush dirty namespaces, stop the flusher, and detach the disk tier.

        After ``close`` the store keeps working as a plain in-memory LRU (so
        a still-activated store never breaks the request path), but nothing
        further is read from or written to the directory.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            flusher = self._flusher
            self._flusher = None
        # Stop the background thread before the final flush so the two never
        # interleave on the writer.
        self._flusher_wakeup.set()
        if flusher is not None and flusher is not threading.current_thread():
            flusher.join(timeout=5.0)
        with self._lock:
            self.flush()
            if self._writer is not None and self._writer_pid == os.getpid():
                os.fsync(self._writer.fileno())
            self._close_writer()
            self._closed = True

    def __enter__(self) -> "PersistentProfileStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __contains__(self, content_hash: str) -> bool:
        return content_hash in self._namespaces or content_hash in self._index

    # ------------------------------------------------------------------- report
    @property
    def disk_entries(self) -> int:
        """Distinct keys currently indexed on disk."""
        return len(self._index)

    @property
    def hit_rate(self) -> float:
        """Warm fraction of lookups, counting memory *and* disk hits.

        ``hits`` counts memory-tier hits only and ``misses`` counts lookups
        neither tier could serve, so a lookup served by the disk tier appears
        exactly once — in ``disk_hits``.
        """
        total = self.hits + self.disk_hits + self.misses
        return (self.hits + self.disk_hits) / total if total else 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    def stats(self) -> dict[str, object]:
        report = super().stats()
        report.update(
            {
                "disk_hits": self.disk_hits,
                "disk_entries": self.disk_entries,
                "flushes": self.flushes,
                "flushed_entries": self.flushed_entries,
                "recovered_entries": self.recovered_entries,
                "corrupt_records_skipped": self.corrupt_records_skipped,
                "tombstones": self.tombstones,
                "compactions": self.compactions,
                "pickle_errors": self.pickle_errors,
                "segment_files": len(list(self.directory.glob("segment-*.seg"))),
                "disk_bytes": self._total_bytes,
                "dead_bytes": self.dead_bytes,
                "directory": str(self.directory),
            }
        )
        return report
