"""Bounded, content-hash-keyed store for derived column state.

PR 1 memoized every derived view of a column (non-null/text/numeric values,
value counts, seeded samples, ``profile_column`` statistics, and — through the
featurizer — the column-local feature vector) on the :class:`Column` object
itself.  That is ideal for batch jobs, but a long-running service wraps many
*short-lived* ``Column`` instances around recurring content: every request
deserialises fresh tables, so the caches die with them.

:class:`ProfileStore` lifts those memo namespaces off the column into a
process-wide LRU keyed by :meth:`Column.content_hash`
(header + cell values), so any two columns with identical content — across
tables, requests, and customers — share one namespace of derived state.
Derived state is a pure function of column content, which is what makes the
sharing safe: a warm entry is byte-for-byte what the cold computation would
have produced, so predictions are unchanged (pinned by
``tests/test_serving.py``).

Install a store globally with :meth:`ProfileStore.activate` (a long-running
service does this once at startup) or temporarily with the
:meth:`ProfileStore.activated` context manager.  Sizing: one entry holds the
derived state of one distinct column (roughly the column's values again, plus
a ~200-float feature vector), so ``max_columns`` of a few thousand costs tens
of megabytes; size it to the working set of distinct columns you expect
between repeats, not to total traffic.  After retraining or refitting any
model component, :meth:`clear` the store — entries are keyed by content only
and would otherwise serve features from the old model.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.core.errors import ConfigurationError
from repro.core.table import get_active_profile_store, set_active_profile_store

__all__ = ["ProfileStore"]


class ProfileStore:
    """A bounded LRU of per-column derived-state namespaces.

    Thread-safe: the threaded execution backend and the async service hit one
    shared store concurrently.  Namespace *creation and eviction* are guarded
    by a lock; the namespaces themselves are plain dicts filled by
    :meth:`Column._memo` — concurrent fills of the same key recompute the same
    deterministic value, so last-write-wins is harmless.
    """

    def __init__(self, max_columns: int = 4096) -> None:
        if max_columns < 1:
            raise ConfigurationError("max_columns must be at least 1")
        self.max_columns = max_columns
        self._lock = threading.RLock()
        self._namespaces: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ access
    def namespace(self, content_hash: str) -> dict:
        """The shared derived-state dict for a column content hash.

        Creates (and possibly evicts the least recently used entry) on first
        sight; moves the entry to most-recently-used position on every hit.
        """
        with self._lock:
            entry = self._namespaces.get(content_hash)
            if entry is not None:
                self.hits += 1
                self._namespaces.move_to_end(content_hash)
                return entry
            self.misses += 1
            entry = self._namespaces[content_hash] = {}
            while len(self._namespaces) > self.max_columns:
                self._namespaces.popitem(last=False)
                self.evictions += 1
            return entry

    def invalidate(self, content_hash: str) -> bool:
        """Drop one entry (used by ``Column.invalidate_cache``); True if present."""
        with self._lock:
            return self._namespaces.pop(content_hash, None) is not None

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss statistics."""
        with self._lock:
            self._namespaces.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._namespaces)

    def __contains__(self, content_hash: str) -> bool:
        return content_hash in self._namespaces

    # ------------------------------------------------------------- installation
    def activate(self) -> "ProfileStore":
        """Install this store process-wide (returns self for chaining)."""
        set_active_profile_store(self)
        return self

    def deactivate(self) -> None:
        """Uninstall this store if it is the active one."""
        if get_active_profile_store() is self:
            set_active_profile_store(None)

    @contextmanager
    def activated(self) -> Iterator["ProfileStore"]:
        """Temporarily install this store, restoring the previous one after."""
        previous = set_active_profile_store(self)
        try:
            yield self
        finally:
            set_active_profile_store(previous)

    # ------------------------------------------------------------------- report
    @property
    def hit_rate(self) -> float:
        """Fraction of namespace lookups served from a warm entry."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """Counters for dashboards, benchmarks, and the E11 report."""
        return {
            "entries": len(self._namespaces),
            "max_columns": self.max_columns,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"ProfileStore(entries={len(self._namespaces)}, max_columns={self.max_columns}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
