"""Bounded, content-hash-keyed stores for derived column state.

PR 1 memoized every derived view of a column (non-null/text/numeric values,
value counts, seeded samples, ``profile_column`` statistics, and — through the
featurizer — the column-local feature vector) on the :class:`Column` object
itself.  That is ideal for batch jobs, but a long-running service wraps many
*short-lived* ``Column`` instances around recurring content: every request
deserialises fresh tables, so the caches die with them.

:class:`ProfileStore` lifts those memo namespaces off the column into a
process-wide LRU keyed by :meth:`Column.content_hash`
(header + cell values), so any two columns with identical content — across
tables, requests, and customers — share one namespace of derived state.
Derived state is a pure function of column content, which is what makes the
sharing safe: a warm entry is byte-for-byte what the cold computation would
have produced, so predictions are unchanged (pinned by
``tests/test_serving.py``).

:class:`PersistentProfileStore` layers an append-only **disk tier** under that
LRU, so warm state additionally survives process restarts and can be shared
by ``multiprocess:N`` workers.  Namespaces are pickled into segment files
keyed by the same content hashes, written behind the request path by a
background flusher, recovered tolerantly on open (torn or corrupt tails of a
segment are skipped, everything before them is served), and compacted when
superseded records accumulate.  The persistence layer never changes
predictions either: a disk-warm entry is the pickle round-trip of the exact
bytes the cold computation produces (pinned by
``tests/test_store_persistence.py`` and the E12 benchmark).

Two properties make the disk tier usable by *concurrently live* processes —
not just across restarts:

* **Fork safety.**  Every store registers process-wide ``os.register_at_fork``
  handlers (see :func:`install_fork_handlers`): the parent's store locks are
  briefly taken around the fork so the child snapshots consistent state, and
  the child re-initialises its lock, drops the parent's (dead) write-behind
  flusher thread and its wakeup event, and abandons the inherited segment
  writer so its first flush opens a segment of its own.  A forked
  ``multiprocess:N`` worker therefore inherits a store it can actually use.
* **Live cross-process sharing.**  Alongside its segments, every writer
  appends a tiny sidecar **index journal** (``index-<pid>-<uid>.idx``) naming
  each record it persists (key, segment file, offset, length, payload crc).
  A store whose LRU *and* own index miss tails its siblings' journals and
  serves the record straight out of the sibling's segment file — so a worker
  can serve another live worker's freshly flushed entries without a restart
  (counted in ``shared_hits``).  Shared reads are crc-checked and degrade to
  a recomputing miss on any damage; compaction defers deleting retired
  segments while a live sibling may still index them.

Install a store globally with :meth:`ProfileStore.activate` (a long-running
service does this once at startup) or temporarily with the
:meth:`ProfileStore.activated` context manager.  Sizing: one entry holds the
derived state of one distinct column (roughly the column's values again, plus
a ~200-float feature vector), so ``max_columns`` of a few thousand costs tens
of megabytes; size it to the working set of distinct columns you expect
between repeats, not to total traffic.  After retraining or refitting any
model component, :meth:`clear` the store — entries are keyed by content only
and would otherwise serve features from the old model (``clear`` on a
persistent store deletes its segment and journal files too).  See
``docs/SERVING.md`` for the operator-facing guide.
"""

from __future__ import annotations

import functools
import os
import pickle
import struct
import threading
import weakref
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from itertools import count
from pathlib import Path
from typing import Iterator, NamedTuple

from repro.core.errors import ConfigurationError
from repro.core.table import get_active_profile_store, set_active_profile_store

__all__ = [
    "ProfileStore",
    "PersistentProfileStore",
    "install_fork_handlers",
    "JournalEntry",
    "journal_pid",
    "read_index_journal",
]


# ------------------------------------------------------------------ fork safety
#: Seconds the before-fork handler waits per store lock.  A lock that cannot
#: be taken in this window (a wedged writer, a pathological flush) does not
#: block the fork; the child then conservatively drops that store's memory
#: tier instead of inheriting a possibly half-mutated one.
_FORK_LOCK_TIMEOUT = 1.0

#: Every live store; at-fork handlers re-initialise each one in the child.
_FORK_REGISTRY: "weakref.WeakSet[ProfileStore]" = weakref.WeakSet()
#: Stores whose lock the before-fork handler managed to take (module state is
#: inherited by the child, which uses it to tell consistent snapshots apart).
_HELD_AT_FORK: list["ProfileStore"] = []
#: Serialises concurrent forks from different threads: held from the before
#: handler to the after-in-parent handler, so two simultaneous forks cannot
#: clobber each other's ``_HELD_AT_FORK`` bookkeeping (which would leave
#: store locks permanently acquired in the parent).
_FORK_STATE_LOCK = threading.Lock()
_INSTALL_LOCK = threading.Lock()
_FORK_HANDLERS_INSTALLED = False


def _holding_store_lock(method):
    """Take ``self._lock`` (re-entrantly) around *method*.

    The persistent store's helpers are reached with the caller already
    holding the RLock, so the extra acquire is free; decorating makes the
    counters-under-lock invariant (RL005) locally provable instead of a
    property of every call chain — and keeps it true if a new caller
    forgets the lock.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


def _fork_before() -> None:
    # repro-lint: disable=RL002 cross-handler ownership: released by _fork_after_in_parent / re-initialised by _fork_after_in_child
    _FORK_STATE_LOCK.acquire()
    del _HELD_AT_FORK[:]
    for store in list(_FORK_REGISTRY):
        try:
            # repro-lint: disable=RL002 cross-handler ownership: released by _fork_after_in_parent; the child replaces the lock outright
            if store._lock.acquire(timeout=_FORK_LOCK_TIMEOUT):
                _HELD_AT_FORK.append(store)
        except Exception:  # noqa: BLE001 - a fork must never fail on a cache
            pass


def _fork_after_in_parent() -> None:
    try:
        for store in _HELD_AT_FORK:
            try:
                store._lock.release()
            except Exception:  # noqa: BLE001
                pass
        del _HELD_AT_FORK[:]
    finally:
        try:
            _FORK_STATE_LOCK.release()
        except RuntimeError:  # pragma: no cover - handler ran without before
            pass


def _fork_after_in_child() -> None:
    global _FORK_STATE_LOCK, _INSTALL_LOCK
    held = set(map(id, _HELD_AT_FORK))
    del _HELD_AT_FORK[:]
    # The inherited fork-state lock is held (the parent's before handler took
    # it); replace it so the child's own future forks are not wedged.  The
    # install lock gets the same treatment: another parent thread could have
    # been inside install_fork_handlers() at fork time, and a child that
    # later constructs a store would wedge on the inherited held lock.
    _FORK_STATE_LOCK = threading.Lock()
    _INSTALL_LOCK = threading.Lock()
    for store in list(_FORK_REGISTRY):
        try:
            store._after_fork_in_child(consistent=id(store) in held)
        except Exception:  # noqa: BLE001
            pass


def install_fork_handlers() -> None:
    """Register the store at-fork handlers process-wide (idempotent).

    Called automatically by every :class:`ProfileStore` constructor and by
    :class:`~repro.serving.backends.MultiprocessBackend`, so forked workers
    always inherit usable stores: the parent's store locks are taken around
    the fork (bounded wait), and the child gets a fresh lock, no flusher
    thread, a fresh wakeup event, and no inherited file handles.  Without
    this, a child forked while the write-behind flusher holds the store lock
    deadlocks on its first ``namespace()`` call.
    """
    global _FORK_HANDLERS_INSTALLED
    if not hasattr(os, "register_at_fork"):  # pragma: no cover - non-POSIX
        return
    with _INSTALL_LOCK:
        if _FORK_HANDLERS_INSTALLED:
            return
        os.register_at_fork(
            before=_fork_before,
            after_in_parent=_fork_after_in_parent,
            after_in_child=_fork_after_in_child,
        )
        _FORK_HANDLERS_INSTALLED = True


class ProfileStore:
    """A bounded LRU of per-column derived-state namespaces.

    Thread-safe: the threaded execution backend and the async service hit one
    shared store concurrently.  Namespace *creation and eviction* are guarded
    by a lock; the namespaces themselves are plain dicts filled by
    :meth:`Column._memo` — concurrent fills of the same key recompute the same
    deterministic value, so last-write-wins is harmless.  The statistics
    readers (:meth:`stats`, ``len``, ``in``) take the same lock, so a snapshot
    can never race a concurrent :meth:`clear` or eviction sweep.

    Fork-safe: constructing any store installs process-wide at-fork handlers
    (:func:`install_fork_handlers`) that hand forked children a usable copy —
    fresh lock, consistent (or conservatively emptied) LRU.

    Subclasses can layer a second tier underneath by overriding the
    ``_load_fallback`` / ``_entry_evicted`` / ``_invalidate_tier`` /
    ``_clear_tier`` hooks (see :class:`PersistentProfileStore`); the hot-path
    behaviour of the plain in-memory store is unchanged.
    """

    def __init__(self, max_columns: int = 4096) -> None:
        if max_columns < 1:
            raise ConfigurationError("max_columns must be at least 1")
        self.max_columns = max_columns
        self._lock = threading.RLock()
        self._namespaces: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        install_fork_handlers()
        _FORK_REGISTRY.add(self)

    # ------------------------------------------------------------------ access
    def namespace(self, content_hash: str) -> dict:
        """The shared derived-state dict for a column content hash.

        Creates (and possibly evicts the least recently used entry) on first
        sight; moves the entry to most-recently-used position on every hit.
        Subclasses with a second tier get a chance to serve the entry from
        there before a fresh namespace is created.
        """
        with self._lock:
            entry = self._namespaces.get(content_hash)
            if entry is not None:
                self.hits += 1
                self._namespaces.move_to_end(content_hash)
                return entry
            entry = self._load_fallback(content_hash)
            if entry is None:
                self.misses += 1
                entry = {}
            self._namespaces[content_hash] = entry
            while len(self._namespaces) > self.max_columns:
                evicted_hash, evicted = self._namespaces.popitem(last=False)
                self._entry_evicted(evicted_hash, evicted)
                self.evictions += 1
            return entry

    def invalidate(self, content_hash: str) -> bool:
        """Drop one entry (used by ``Column.invalidate_cache``); True if present.

        On a tiered store this reaches every tier: the in-memory entry is
        dropped *and* any persisted copy is tombstoned.
        """
        with self._lock:
            in_memory = self._namespaces.pop(content_hash, None) is not None
            in_tier = self._invalidate_tier(content_hash)
            return in_memory or in_tier

    def clear(self) -> None:
        """Drop every entry (in every tier) and reset the statistics."""
        with self._lock:
            self._namespaces.clear()
            self._clear_tier()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._namespaces)

    def __contains__(self, content_hash: str) -> bool:
        with self._lock:
            return content_hash in self._namespaces

    # ----------------------------------------------------------- tier hooks
    def _load_fallback(self, content_hash: str) -> dict | None:
        """Serve a namespace from a lower tier on an LRU miss (None = miss)."""
        return None

    def _entry_evicted(self, content_hash: str, namespace: dict) -> None:
        """Called (under the lock) for every entry the LRU evicts."""

    def _invalidate_tier(self, content_hash: str) -> bool:
        """Drop *content_hash* from the lower tier; True if it was present."""
        return False

    def _clear_tier(self) -> None:
        """Drop the lower tier's state entirely."""

    # --------------------------------------------------------------- fork hook
    def _after_fork_in_child(self, consistent: bool = True) -> None:
        """Re-initialise this store inside a freshly forked child.

        The inherited lock may be held by a parent thread that does not exist
        in the child (classically the write-behind flusher), so it is always
        replaced.  When the before-fork handler could *not* take the lock
        (``consistent=False``), the LRU may have been snapshotted mid-mutation
        and is conservatively dropped — cold, never corrupt.
        """
        self._lock = threading.RLock()
        if not consistent:
            self._namespaces = OrderedDict()

    # ------------------------------------------------------------- installation
    def activate(self) -> "ProfileStore":
        """Install this store process-wide (returns self for chaining)."""
        set_active_profile_store(self)
        return self

    def deactivate(self) -> None:
        """Uninstall this store if it is the active one."""
        if get_active_profile_store() is self:
            set_active_profile_store(None)

    @contextmanager
    def activated(self) -> Iterator["ProfileStore"]:
        """Temporarily install this store, restoring the previous one after."""
        previous = set_active_profile_store(self)
        try:
            yield self
        finally:
            set_active_profile_store(previous)

    # ------------------------------------------------------------------- report
    @property
    def lookups(self) -> int:
        """Total namespace lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of namespace lookups served from a warm entry."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """Counters for dashboards, benchmarks, and the E11/E12 reports."""
        with self._lock:
            return {
                "entries": len(self._namespaces),
                "max_columns": self.max_columns,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4),
            }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entries={len(self._namespaces)}, "
            f"max_columns={self.max_columns}, hit_rate={self.hit_rate:.2f})"
        )


# --------------------------------------------------------------------- on-disk
#: Magic bytes opening every segment file (versioned).
_SEGMENT_MAGIC = b"SPSEG1\n"
#: Record header: flag (u8), 16-byte key digest, payload length (u64 LE),
#: payload crc32 (u32 LE).
_RECORD_HEADER = struct.Struct("<B16sQI")
_RECORD_DATA = 0x01
_RECORD_TOMBSTONE = 0x02

#: Magic bytes opening every sidecar index journal (versioned).
_INDEX_MAGIC = b"SPIDX1\n"
#: Journal record header: flag (u8), 16-byte key digest, payload offset
#: (u64 LE), payload length (u64 LE), payload crc32 (u32 LE), segment-name
#: length (u16 LE), segment-name crc32 (u32 LE); the segment file name
#: (UTF-8) follows.  One journal record is appended per segment record, so a
#: sibling process can index a writer's freshly flushed entries by tailing
#: the journal instead of re-scanning whole segments.
_INDEX_HEADER = struct.Struct("<B16sQQIHI")
#: Upper bound on a plausible segment-file name; anything larger means the
#: journal framing is lost.
_MAX_SEGMENT_NAME = 255

#: Per-process store instance counter: disambiguates the segment and journal
#: files of two stores sharing one directory *and* one pid (tests, embedded
#: setups), so their appends never interleave inside one file.
_STORE_UIDS = count()


# -------------------------------------------------------------- warmth export
class JournalEntry(NamedTuple):
    """One parsed sidecar-journal record (see :func:`read_index_journal`)."""

    #: Column content hash (hex) the record names.
    key: str
    #: Segment file name the payload lives in; ``None`` for tombstones.
    segment_name: str | None
    tombstone: bool


def journal_pid(path: Path | str) -> int | None:
    """The writer pid encoded in a journal file name (``index-<pid>-<uid>.idx``)."""
    try:
        return int(Path(path).name.split("-")[1])
    except (IndexError, ValueError):
        return None


def read_index_journal(path: Path | str, offset: int = 0) -> tuple[list, int]:
    """Parse the records appended to a sidecar journal since *offset*.

    The public face of the PR 4 journal format, for consumers that track
    warmth without being a store themselves — the pool's
    :class:`~repro.serving.pool.WarmthIndex` tails every journal in a shared
    segment directory through this.  Returns ``(entries, new_offset)``:
    every intact :class:`JournalEntry` from *offset* on, and the offset to
    resume from next time.  A torn tail (a record still being appended)
    simply ends the batch — re-read later from ``new_offset``.  Lost framing
    (bad magic, corrupt header, crc mismatch) raises ``ValueError``: an
    append-only stream cannot be resynced, so the caller should retire the
    journal (its segments stay recoverable by any restart).
    """
    path = Path(path)
    with open(path, "rb") as handle:
        handle.seek(offset)
        data = handle.read()
    pos = 0
    if offset == 0:
        if len(data) < len(_INDEX_MAGIC):
            return [], 0  # torn magic: retry once more bytes land
        if not data.startswith(_INDEX_MAGIC):
            raise ValueError(f"bad journal magic in {path.name}")
        pos = len(_INDEX_MAGIC)
    entries: list = []
    header_size = _INDEX_HEADER.size
    while pos + header_size <= len(data):
        flag, key_bytes, _payload_offset, _length, _payload_crc, name_len, name_crc = (
            _INDEX_HEADER.unpack_from(data, pos)
        )
        if flag not in (_RECORD_DATA, _RECORD_TOMBSTONE) or name_len > _MAX_SEGMENT_NAME:
            raise ValueError(f"journal framing lost in {path.name}")
        end = pos + header_size + name_len
        if end > len(data):
            break  # torn tail: the record may still be completing
        name_bytes = data[pos + header_size : end]
        if zlib.crc32(name_bytes) != name_crc:
            raise ValueError(f"journal name crc mismatch in {path.name}")
        key = key_bytes.hex()
        if flag == _RECORD_DATA:
            try:
                segment_name = name_bytes.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ValueError(f"journal segment name undecodable in {path.name}") from exc
            entries.append(JournalEntry(key, segment_name, False))
        else:
            entries.append(JournalEntry(key, None, True))
        pos = end
    return entries, offset + pos


class PersistentProfileStore(ProfileStore):
    """A :class:`ProfileStore` with an append-only on-disk tier.

    The in-memory LRU stays exactly as before; underneath it, namespaces are
    pickled into **segment files** inside *directory*, keyed by the same
    :meth:`Column.content_hash`.  The design is a tiny log-structured store:

    * **Append-only segments.**  Every persisted namespace is one framed
      record (flag, 16-byte key digest, length, crc32, pickle payload).  A
      record for an already-stored key simply supersedes the older record;
      :meth:`ProfileStore.invalidate` appends a *tombstone*.  Nothing is ever
      rewritten in place, so a crash can only ever damage the tail of the
      active segment.
    * **Write-behind flusher.**  ``namespace()`` never touches the disk on the
      write side; a daemon thread wakes every *flush_interval* seconds and
      appends every namespace whose content changed since it was last
      persisted (:meth:`flush` does the same synchronously, and eviction from
      the LRU flushes the evicted entry so warm state is never lost).  Set
      ``flush_interval=0`` to disable the thread and flush manually.
    * **Corruption-tolerant recovery.**  Opening a directory scans its
      segments in order and indexes every intact record; the first torn or
      corrupt record of a segment (bad magic, short header, short payload,
      crc mismatch) stops that segment's scan — everything before it is
      served, everything after it is ignored and counted in
      ``corrupt_records_skipped``.
    * **Compaction.**  Superseded records and tombstones are dead bytes;
      :meth:`compact` (also triggered automatically after a flush once the
      dead fraction passes *compaction_dead_ratio*) copies the live records
      into a fresh segment and deletes the old files — unless a live sibling
      process may still index them, in which case deletion is deferred until
      no sibling is live (``deferred_segments`` in the stats).
    * **Fork-safe.**  Process-wide at-fork handlers (see
      :func:`install_fork_handlers`) give forked ``multiprocess:N`` workers a
      usable store: fresh lock, no inherited flusher thread or wakeup state,
      and a per-pid segment writer, so children persist independently without
      interleaving writes; recovery merges all segments.  (Deterministic
      derived state makes concurrent writers safe: any two records for one
      key hold equivalent payloads.)
    * **Live cross-process sharing.**  Each writer also appends a sidecar
      index journal (``index-<pid>-<uid>.idx``) naming every record it
      persists.  On a miss in both the LRU and this store's own index, the
      store *tails* its siblings' journals and serves the record directly
      from the sibling's segment (crc-checked; counted in ``shared_hits``) —
      a live worker serves another live worker's freshly flushed entries
      without any restart.  A damaged or compacted-away shared record
      degrades to a recomputing miss (after one re-tail to pick up the
      record's post-compaction home), never to a crash or a wrong result.

    Namespaces are served **lazily**: recovery only builds the key index, and
    a namespace is unpickled the first time a request asks for it (counted in
    ``disk_hits`` for this store's own records and ``shared_hits`` for a
    sibling's — :attr:`hit_rate` includes all warm tiers).

    Parameters
    ----------
    directory:
        Segment-file directory, created if missing.  Reopening the same
        directory after a restart serves the previous process's warm state.
    max_columns:
        In-memory LRU capacity (the disk tier is unbounded until compaction).
    flush_interval:
        Seconds between write-behind flushes; ``0`` disables the background
        thread (explicit :meth:`flush`/:meth:`close` only).
    segment_max_bytes:
        Active segment rolls over to a new file beyond this size.
    compaction_dead_ratio:
        Auto-compact (after a flush) once dead bytes exceed this fraction of
        the total on-disk bytes.
    share_across_processes:
        Maintain and tail the sidecar index journals (default).  Disabling
        restores the restart-only behaviour: no journal writes, no tailing,
        and compaction retires segments immediately.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_columns: int = 4096,
        flush_interval: float = 1.0,
        segment_max_bytes: int = 32 * 1024 * 1024,
        compaction_dead_ratio: float = 0.5,
        share_across_processes: bool = True,
    ) -> None:
        super().__init__(max_columns=max_columns)
        if flush_interval < 0:
            raise ConfigurationError("flush_interval must be non-negative")
        if segment_max_bytes < 1:
            raise ConfigurationError("segment_max_bytes must be positive")
        if not 0.0 < compaction_dead_ratio <= 1.0:
            raise ConfigurationError("compaction_dead_ratio must be in (0, 1]")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.flush_interval = flush_interval
        self.segment_max_bytes = segment_max_bytes
        self.compaction_dead_ratio = compaction_dead_ratio
        self.share_across_processes = share_across_processes

        # Disk-tier statistics (all monotonic counters except the byte gauges).
        self.disk_hits = 0
        self.shared_hits = 0
        self.flushes = 0
        self.flushed_entries = 0
        self.recovered_entries = 0
        self.prewarmed_entries = 0
        self.corrupt_records_skipped = 0
        self.tombstones = 0
        self.compactions = 0
        self.pickle_errors = 0

        #: content hash -> (segment path, payload offset, payload length) for
        #: records this store recovered at open or wrote itself.
        self._index: dict[str, tuple[Path, int, int]] = {}
        #: content hash -> (segment path, offset, length, payload crc) learned
        #: by tailing sibling journals; consulted only after ``_index`` misses.
        self._shared_index: dict[str, tuple[Path, int, int, int]] = {}
        #: Per-journal tail position: the next byte to read from each sibling
        #: journal.  Seeded at open to the journals' current sizes (everything
        #: before that is covered by the segment scan).
        self._tail_offsets: dict[Path, int] = {}
        #: Journals whose framing was lost (bad magic/header/crc); skipped.
        self._dead_journals: set[Path] = set()
        #: Directory-mtime-keyed cache of the journal listing, so the per-miss
        #: tail costs one ``stat`` of the directory instead of a glob.
        self._journal_dir_mtime: int | None = None
        self._journal_paths_cache: list[Path] = []
        #: Segments this store may retire: files present at open plus files
        #: this process wrote.  A concurrent sibling's newer segments are
        #: never touched by our compaction.
        self._owned_paths: set[Path] = set()
        #: Segments retired by a compaction that ran while a sibling was
        #: live; deleted by a later compaction once no sibling remains.
        self._deferred_retired: set[Path] = set()
        #: Every segment file this store knows about (own, recovered, or
        #: discovered via a sibling journal) — the locked, glob-free source of
        #: the ``segment_files`` statistic.
        self._known_segments: set[Path] = set()
        #: Namespace sizes as last persisted (dirty = live size differs).
        self._persisted_sizes: dict[str, int] = {}
        #: Keys whose namespaces failed to pickle (never retried).
        self._unpicklable: set[str] = set()
        self._live_bytes = 0
        self._total_bytes = 0
        self._next_segment_index = 1
        self._store_uid = next(_STORE_UIDS)
        self._writer = None
        self._writer_path: Path | None = None
        self._writer_size = 0
        self._writer_pid: int | None = None
        self._journal = None
        self._journal_path: Path | None = None
        self._journal_pid: int | None = None
        self._flusher: threading.Thread | None = None
        self._flusher_wakeup = threading.Event()
        self._closed = False
        self._recover()
        if self.share_across_processes:
            # Create the journal eagerly: its presence (with a live pid in the
            # name) is how sibling compactions detect that this store is live
            # and must not retire segments it may still index.
            self._ensure_journal()

    # ----------------------------------------------------------------- recovery
    @_holding_store_lock
    def _recover(self) -> None:
        """Index every intact record in the directory's segment files."""
        # Snapshot sibling journal sizes *before* scanning segments: every
        # record the segment scan can miss is then guaranteed to land after
        # these offsets (writers append to the segment first, the journal
        # second), so the first tail picks it up.
        if self.share_across_processes:
            for path in self.directory.glob("index-*.idx"):
                try:
                    self._tail_offsets[path] = path.stat().st_size
                except OSError:
                    continue
        header_size = _RECORD_HEADER.size
        for path in sorted(self.directory.glob("segment-*.seg")):
            try:
                segment_index = int(path.name.split("-")[1])
                self._next_segment_index = max(self._next_segment_index, segment_index + 1)
            except (IndexError, ValueError):
                pass
            try:
                data = path.read_bytes()
            except OSError:
                self.corrupt_records_skipped += 1
                continue
            self._owned_paths.add(path)
            self._known_segments.add(path)
            if not data.startswith(_SEGMENT_MAGIC):
                self.corrupt_records_skipped += 1
                continue
            self._total_bytes += len(data)
            offset = len(_SEGMENT_MAGIC)
            while offset < len(data):
                if offset + header_size > len(data):
                    self.corrupt_records_skipped += 1
                    break
                flag, key_bytes, length, crc = _RECORD_HEADER.unpack_from(data, offset)
                payload_offset = offset + header_size
                if flag not in (_RECORD_DATA, _RECORD_TOMBSTONE) or (
                    payload_offset + length > len(data)
                ):
                    self.corrupt_records_skipped += 1
                    break
                payload = data[payload_offset : payload_offset + length]
                if zlib.crc32(payload) != crc:
                    self.corrupt_records_skipped += 1
                    break
                key = key_bytes.hex()
                previous = self._index.pop(key, None)
                if previous is not None:
                    self._live_bytes -= header_size + previous[2]
                if flag == _RECORD_DATA:
                    self._index[key] = (path, payload_offset, length)
                    self._live_bytes += header_size + length
                offset = payload_offset + length
        self.recovered_entries = len(self._index)

    # ----------------------------------------------------------------- writing
    @_holding_store_lock
    def _ensure_writer(self):
        """The append handle for this process's active segment (fork-aware)."""
        pid = os.getpid()
        if self._writer is not None and self._writer_pid == pid:
            if self._writer_size < self.segment_max_bytes:
                return self._writer
            self._writer.close()
            self._writer = None
        elif self._writer is not None:
            # Forked child that missed the at-fork handler: the inherited
            # handle shares the parent's file offset — abandon it (without
            # closing the shared fd state) and append to a segment of our own.
            self._writer = None
            self._flusher = None
            self._journal = None
            self._journal_path = None
            self._journal_pid = None
        path = self.directory / f"segment-{self._next_segment_index:08d}-{pid}-{self._store_uid}.seg"
        self._next_segment_index += 1
        # Unbuffered: a record is visible to readers as soon as it is written,
        # which keeps eviction-flushed entries immediately loadable.
        self._writer = open(path, "ab", buffering=0)
        if self._writer.tell() == 0:
            self._writer.write(_SEGMENT_MAGIC)
            self._total_bytes += len(_SEGMENT_MAGIC)
        self._writer_path = path
        self._writer_size = self._writer.tell()
        self._writer_pid = pid
        self._owned_paths.add(path)
        self._known_segments.add(path)
        return self._writer

    def _ensure_journal(self):
        """The append handle for this process's sidecar index journal."""
        pid = os.getpid()
        if self._journal is not None and self._journal_pid == pid:
            return self._journal
        self._journal = None  # forked child: abandon the inherited handle
        path = self.directory / f"index-{pid}-{self._store_uid}.idx"
        self._journal = open(path, "ab", buffering=0)
        if self._journal.tell() == 0:
            self._journal.write(_INDEX_MAGIC)
        self._journal_path = path
        self._journal_pid = pid
        return self._journal

    def _append_journal(
        self, flag: int, content_hash: str, payload_offset: int, length: int, crc: int
    ) -> None:
        """Mirror one segment record into this writer's index journal."""
        name_bytes = (
            self._writer_path.name.encode("utf-8")
            if flag == _RECORD_DATA and self._writer_path is not None
            else b""
        )
        record = (
            _INDEX_HEADER.pack(
                flag,
                bytes.fromhex(content_hash),
                payload_offset,
                length,
                crc,
                len(name_bytes),
                zlib.crc32(name_bytes),
            )
            + name_bytes
        )
        self._ensure_journal().write(record)

    @_holding_store_lock
    def _append_record(self, flag: int, content_hash: str, payload: bytes) -> None:
        writer = self._ensure_writer()
        crc = zlib.crc32(payload)
        header = _RECORD_HEADER.pack(flag, bytes.fromhex(content_hash), len(payload), crc)
        payload_offset = self._writer_size + len(header)
        writer.write(header + payload)
        record_size = len(header) + len(payload)
        self._writer_size += record_size
        self._total_bytes += record_size
        previous = self._index.pop(content_hash, None)
        if previous is not None:
            self._live_bytes -= _RECORD_HEADER.size + previous[2]
        if flag == _RECORD_DATA:
            assert self._writer_path is not None
            self._index[content_hash] = (self._writer_path, payload_offset, len(payload))
            self._live_bytes += record_size
        if self.share_across_processes:
            self._append_journal(flag, content_hash, payload_offset, len(payload), crc)

    @staticmethod
    def _snapshot_namespace(namespace: dict) -> dict | None:
        """A shallow copy that tolerates concurrent fills (None = try later)."""
        for _ in range(4):
            try:
                return dict(namespace)
            except RuntimeError:  # resized mid-copy by a concurrent _memo fill
                continue
        return None

    def flush(self) -> int:
        """Synchronously persist every dirty in-memory namespace.

        A namespace is dirty when its number of memoized entries differs from
        the last persisted record (derived-state entries are only ever added,
        never mutated).  Returns the number of namespaces written.  Called
        periodically by the write-behind flusher and on :meth:`close`.
        """
        with self._lock:
            if self._closed:
                return 0
            flushed = 0
            for content_hash, namespace in list(self._namespaces.items()):
                if self._flush_entry(content_hash, namespace):
                    flushed += 1
            if flushed:
                self.flushes += 1
                self.flushed_entries += flushed
                assert self._writer is not None
                os.fsync(self._writer.fileno())
                if self._journal is not None and self._journal_pid == os.getpid():
                    os.fsync(self._journal.fileno())
            self._maybe_compact()
            return flushed

    @_holding_store_lock
    def _flush_entry(self, content_hash: str, namespace: dict) -> bool:
        """Append one namespace's record if it is dirty; True if written."""
        size = len(namespace)
        if (
            size == 0
            or size == self._persisted_sizes.get(content_hash)
            or content_hash in self._unpicklable
        ):
            return False
        snapshot = self._snapshot_namespace(namespace)
        if snapshot is None:
            return False
        try:
            payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - a foreign unpicklable cache entry
            self.pickle_errors += 1
            self._unpicklable.add(content_hash)
            return False
        self._append_record(_RECORD_DATA, content_hash, payload)
        self._persisted_sizes[content_hash] = len(snapshot)
        return True

    def _schedule_flusher(self) -> None:
        if self.flush_interval <= 0 or self._closed:
            return
        with self._lock:  # check-then-start must be atomic across threads
            if self._closed:
                return
            flusher = self._flusher
            if flusher is not None and flusher.is_alive():
                return
            self._flusher = threading.Thread(
                target=self._flusher_loop, name="profile-store-flusher", daemon=True
            )
            self._flusher.start()

    def _flusher_loop(self) -> None:
        while not self._closed:
            self._flusher_wakeup.wait(self.flush_interval)
            if self._closed:
                return
            self.flush()

    # --------------------------------------------------------------- fork hook
    def _after_fork_in_child(self, consistent: bool = True) -> None:
        """Hand the forked child a usable store (see the class docstring).

        The parent's flusher thread does not exist in the child, its wakeup
        event may carry a stale set flag, and the inherited segment/journal
        handles share the parent's file descriptions — so the thread slot and
        event are re-created and the handles abandoned (never closed: the
        descriptions are still the parent's).  The child's first flush then
        opens a fresh per-pid segment and journal of its own.
        """
        super()._after_fork_in_child(consistent)
        self._flusher = None
        self._flusher_wakeup = threading.Event()
        self._writer = None
        self._writer_path = None
        self._writer_size = 0
        self._writer_pid = None
        self._journal = None
        self._journal_path = None
        self._journal_pid = None
        if not consistent:
            self._persisted_sizes.clear()

    # ----------------------------------------------------------------- reading
    def namespace(self, content_hash: str) -> dict:
        entry = super().namespace(content_hash)
        self._schedule_flusher()
        return entry

    def _read_and_unpickle(
        self, path: Path, payload_offset: int, length: int, crc: int | None = None
    ) -> dict | None:
        """Load one persisted namespace; None for *any* damage (miss, not crash)."""
        try:
            with open(path, "rb") as handle:
                handle.seek(payload_offset)
                payload = handle.read(length)
            if len(payload) != length:
                raise EOFError(f"short read in {path.name}")
            if crc is not None and zlib.crc32(payload) != crc:
                raise ValueError(f"crc mismatch in {path.name}")
            namespace = pickle.loads(payload)
            if not isinstance(namespace, dict):
                raise TypeError("persisted namespace is not a dict")
        except Exception:  # noqa: BLE001 - a damaged record is a miss, not a crash
            return None
        return namespace

    @_holding_store_lock
    def _load_fallback(self, content_hash: str) -> dict | None:
        if self._closed:
            return None
        location = self._index.get(content_hash)
        if location is not None:
            path, payload_offset, length = location
            namespace = self._read_and_unpickle(path, payload_offset, length)
            if namespace is not None:
                self.disk_hits += 1
                self._persisted_sizes[content_hash] = len(namespace)
                return namespace
            self.corrupt_records_skipped += 1
            self._index.pop(content_hash, None)
            self._live_bytes -= _RECORD_HEADER.size + length
        if not self.share_across_processes:
            return None
        shared = self._shared_index.get(content_hash)
        if shared is None:
            self._tail_shared_index()
            shared = self._shared_index.get(content_hash)
        attempts = 0
        while shared is not None and attempts < 2:
            attempts += 1
            path, payload_offset, length, crc = shared
            namespace = self._read_and_unpickle(path, payload_offset, length, crc)
            if namespace is not None:
                self.shared_hits += 1
                self._persisted_sizes[content_hash] = len(namespace)
                return namespace
            # The sibling's record is damaged or its segment was compacted
            # away: degrade to a miss, drop the stale pointer, and re-tail
            # once — the sibling's journal may already name the record's new
            # (post-compaction) home.
            self.corrupt_records_skipped += 1
            self._shared_index.pop(content_hash, None)
            self._tail_shared_index()
            relocated = self._shared_index.get(content_hash)
            shared = relocated if relocated != shared else None
        return None

    # ------------------------------------------------------------ shared index
    def _sibling_journal_paths(self) -> list[Path]:
        """Every sidecar journal in the directory except this store's own.

        The listing is re-globbed only when the directory's mtime changes
        (journal creation/deletion touches it; appends do not need a
        re-listing), so the per-miss tail costs one ``stat`` of the
        directory rather than a glob.
        """
        try:
            mtime = os.stat(self.directory).st_mtime_ns
        except OSError:
            return []
        if mtime != self._journal_dir_mtime:
            try:
                self._journal_paths_cache = list(self.directory.glob("index-*.idx"))
            except OSError:
                return []
            self._journal_dir_mtime = mtime
        return [path for path in self._journal_paths_cache if path != self._journal_path]

    def _tail_shared_index(self) -> None:
        """Ingest sibling journal records appended since the last tail."""
        if self._closed or not self.share_across_processes:
            return
        for path in sorted(self._sibling_journal_paths()):
            if path not in self._dead_journals:
                self._tail_journal(path)

    @_holding_store_lock
    def _tail_journal(self, path: Path) -> None:
        offset = self._tail_offsets.get(path, 0)
        try:
            size = path.stat().st_size
        except OSError:
            self._tail_offsets.pop(path, None)
            return
        if size < offset:
            # The journal shrank (its directory was cleared and the writer
            # recreated it): rescan from the top.
            offset = 0
        if size <= offset and offset > 0:
            return
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except OSError:
            return
        pos = 0
        if offset == 0:
            if len(data) < len(_INDEX_MAGIC):
                return  # torn magic: retry once more bytes land
            if not data.startswith(_INDEX_MAGIC):
                self._dead_journals.add(path)
                self.corrupt_records_skipped += 1
                return
            pos = len(_INDEX_MAGIC)
        header_size = _INDEX_HEADER.size
        while pos + header_size <= len(data):
            (
                flag,
                key_bytes,
                payload_offset,
                length,
                payload_crc,
                name_len,
                name_crc,
            ) = _INDEX_HEADER.unpack_from(data, pos)
            if flag not in (_RECORD_DATA, _RECORD_TOMBSTONE) or name_len > _MAX_SEGMENT_NAME:
                # Framing lost mid-journal: no way to resync an append-only
                # stream, so retire this journal (its segments remain
                # recoverable by any restart).
                self._dead_journals.add(path)
                self.corrupt_records_skipped += 1
                break
            end = pos + header_size + name_len
            if end > len(data):
                break  # torn tail: the record may still be completing
            name_bytes = data[pos + header_size : end]
            if zlib.crc32(name_bytes) != name_crc:
                self._dead_journals.add(path)
                self.corrupt_records_skipped += 1
                break
            key = key_bytes.hex()
            if flag == _RECORD_DATA:
                try:
                    segment = self.directory / name_bytes.decode("utf-8")
                except UnicodeDecodeError:
                    self._dead_journals.add(path)
                    self.corrupt_records_skipped += 1
                    break
                self._shared_index[key] = (segment, payload_offset, length, payload_crc)
                self._known_segments.add(segment)
            else:
                # A sibling tombstoned the key: drop it from *every* tier we
                # hold — shared pointer, own on-disk record, and the LRU — so
                # neither a lookup nor our next compaction can resurrect it.
                self._shared_index.pop(key, None)
                previous = self._index.pop(key, None)
                if previous is not None:
                    self._live_bytes -= _RECORD_HEADER.size + previous[2]
                self._namespaces.pop(key, None)
                self._persisted_sizes.pop(key, None)
            pos = end
        self._tail_offsets[path] = offset + pos

    @staticmethod
    def _journal_pid_of(path: Path) -> int | None:
        try:
            return int(path.name.split("-")[1])
        except (IndexError, ValueError):
            return None

    def _live_sibling_exists(self) -> bool:
        """Whether any *other* store (this or another process) looks alive.

        A sibling is represented by its journal; its pid is live when the
        process exists (``os.kill(pid, 0)``).  Another store inside this very
        process trivially counts as live.  Conservative by design: a false
        positive only defers segment deletion, never loses data.
        """
        for path in self._sibling_journal_paths():
            pid = self._journal_pid_of(path)
            if pid is None:
                continue
            if pid == os.getpid():
                return True
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            except PermissionError:  # pragma: no cover - exists, other user
                return True
            except OSError:  # pragma: no cover - unknown platform failure
                continue
            return True
        return False

    def _collect_dead_journals(self) -> None:
        """Delete sibling journals once no sibling is live (their segments
        stay; a future open recovers them directly)."""
        for path in self._sibling_journal_paths():
            try:
                path.unlink()
            except OSError:
                pass
            self._tail_offsets.pop(path, None)
            self._dead_journals.discard(path)

    # ------------------------------------------------------------------- tiers
    def _entry_evicted(self, content_hash: str, namespace: dict) -> None:
        # Write-behind must not lose warm state: persist the evicted entry
        # (if dirty) before the memory tier forgets it.
        if not self._closed:
            self._flush_entry(content_hash, namespace)
        self._persisted_sizes.pop(content_hash, None)

    @_holding_store_lock
    def _invalidate_tier(self, content_hash: str) -> bool:
        self._persisted_sizes.pop(content_hash, None)
        self._unpicklable.discard(content_hash)
        if self._closed:
            return False
        if (
            self.share_across_processes
            and content_hash not in self._index
            and content_hash not in self._shared_index
        ):
            # The key may be a sibling's record we have not tailed yet;
            # refresh before deciding whether a tombstone is needed.
            self._tail_shared_index()
        in_shared = self._shared_index.pop(content_hash, None) is not None
        if content_hash not in self._index and not in_shared:
            return False
        # The tombstone lands in our segment *and* journal, so live siblings
        # tailing us drop their copy too (and recovery never resurrects it).
        self._append_record(_RECORD_TOMBSTONE, content_hash, b"")
        self.tombstones += 1
        return True

    def _clear_tier(self) -> None:
        self._close_writer()
        self._close_journal()
        for pattern in ("segment-*.seg", "index-*.idx"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        self._index.clear()
        self._shared_index.clear()
        self._tail_offsets.clear()
        self._dead_journals.clear()
        self._journal_dir_mtime = None
        self._journal_paths_cache = []
        self._persisted_sizes.clear()
        self._unpicklable.clear()
        self._owned_paths.clear()
        self._deferred_retired.clear()
        self._known_segments.clear()
        self._live_bytes = 0
        self._total_bytes = 0
        self.disk_hits = 0
        self.shared_hits = 0
        self.recovered_entries = 0
        if self.share_across_processes and not self._closed:
            self._ensure_journal()  # stay visible to sibling liveness checks

    # --------------------------------------------------------------- compaction
    @property
    def dead_bytes(self) -> int:
        """On-disk bytes held by superseded records and tombstones."""
        return max(0, self._total_bytes - self._live_bytes)

    def _maybe_compact(self) -> None:
        if self._total_bytes and self.dead_bytes > self.compaction_dead_ratio * self._total_bytes:
            self.compact()

    @staticmethod
    def _read_payload(path: Path, payload_offset: int, length: int) -> bytes | None:
        try:
            with open(path, "rb") as handle:
                handle.seek(payload_offset)
                payload = handle.read(length)
        except OSError:
            return None
        return payload if len(payload) == length else None

    def compact(self) -> None:
        """Rewrite the live records into one fresh segment, drop the rest.

        Copies raw payload bytes (no pickle round-trip), fsyncs the new
        segment, then deletes the retired files — a crash mid-compaction
        leaves either the old segments or the complete new one.  The bulk of
        the reading happens *outside* the store lock (a snapshot of the index
        is taken first, and entries that moved meanwhile are re-read under
        the lock), so request-path lookups are not stalled for the whole
        rewrite.

        Only segments this store knows — files indexed at open time or
        written by this process — are ever unlinked.  A segment some *other*
        concurrent process (e.g. a forked worker) created after our open is
        left untouched, so compaction can never destroy a sibling's freshly
        persisted records.  And while any **live sibling** exists (a sidecar
        journal whose pid is alive), even our own retired segments are kept
        on disk — the sibling may have indexed them via recovery or journal
        tailing — and only deleted by a later compaction once no sibling is
        live (``deferred_segments`` counts them meanwhile).  Every surviving
        record is re-announced in our journal, so siblings that tail us
        relocate to the compacted segment; a sibling that still reads a
        stale location degrades gracefully: the lookup counts as corrupt and
        the entry is recomputed — warmth is lost, predictions never change.
        """
        with self._lock:
            if self._closed:
                return
            snapshot = dict(self._index)
        # Phase 1 (unlocked): read the live payloads referenced at snapshot time.
        payloads: dict[str, bytes] = {}
        unreadable = 0
        for content_hash, (path, payload_offset, length) in snapshot.items():
            payload = self._read_payload(path, payload_offset, length)
            if payload is None:
                unreadable += 1
            else:
                payloads[content_hash] = payload
        with self._lock:
            if self._closed:
                return
            self.corrupt_records_skipped += unreadable
            # Phase 2 (locked): catch up with whatever the flusher wrote since
            # the snapshot, and drop entries invalidated meanwhile.
            for content_hash, location in self._index.items():
                if snapshot.get(content_hash) != location:
                    payload = self._read_payload(*location)
                    if payload is None:
                        self.corrupt_records_skipped += 1
                        payloads.pop(content_hash, None)
                    else:
                        payloads[content_hash] = payload
            # Keys invalidated since the snapshot are gone from the index and
            # must not be resurrected by compaction.
            payloads = {
                content_hash: payload
                for content_hash, payload in payloads.items()
                if content_hash in self._index
            }
            retired = (
                {path for path, _, _ in self._index.values()}
                | set(self._owned_paths)
                | set(self._deferred_retired)
            )
            if self._writer_path is not None:
                retired.add(self._writer_path)
            self._close_writer()
            self._index.clear()
            self._live_bytes = 0
            self._total_bytes = 0
            for content_hash, payload in payloads.items():
                self._append_record(_RECORD_DATA, content_hash, payload)
            if self._writer is not None:
                os.fsync(self._writer.fileno())
            current = {self._writer_path} if self._writer_path is not None else set()
            self._owned_paths = set(current)
            to_retire = retired - current
            if self.share_across_processes and self._live_sibling_exists():
                # A live sibling may still index these segments (it recovered
                # them at open, or tailed them from our journal): keep the
                # files; a later compaction retires them once no sibling is
                # live.  Our journal already names every record's new home.
                self._deferred_retired = to_retire
            else:
                for path in to_retire:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    self._known_segments.discard(path)
                self._deferred_retired = set()
                if self.share_across_processes:
                    self._collect_dead_journals()
            self.compactions += 1

    # ---------------------------------------------------------------- lifecycle
    def _close_writer(self) -> None:
        if self._writer is not None and self._writer_pid == os.getpid():
            try:
                self._writer.close()
            except OSError:
                pass
        self._writer = None
        self._writer_path = None
        self._writer_size = 0
        self._writer_pid = None

    def _close_journal(self) -> None:
        if self._journal is not None and self._journal_pid == os.getpid():
            try:
                self._journal.close()
            except OSError:
                pass
        self._journal = None
        self._journal_path = None
        self._journal_pid = None

    def close(self) -> None:
        """Flush dirty namespaces, stop the flusher, and detach the disk tier.

        After ``close`` the store keeps working as a plain in-memory LRU (so
        a still-activated store never breaks the request path), but nothing
        further is read from or written to the directory.  The store's own
        journal file is deleted: a closed store must not keep counting as a
        live sibling (which would defer every sibling compaction forever).
        Siblings lose at most warmth for records they had not tailed yet —
        the segments stay and any restart recovers them.  A SIGKILLed
        process's journal naturally stays behind; a surviving store's
        compaction garbage-collects it once the pid is gone.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            flusher = self._flusher
            self._flusher = None
        # Stop the background thread before the final flush so the two never
        # interleave on the writer.
        self._flusher_wakeup.set()
        if flusher is not None and flusher is not threading.current_thread():
            flusher.join(timeout=5.0)
        with self._lock:
            self.flush()
            if self._writer is not None and self._writer_pid == os.getpid():
                os.fsync(self._writer.fileno())
            self._close_writer()
            journal_path = self._journal_path
            self._close_journal()
            if journal_path is not None:
                try:
                    journal_path.unlink()
                except OSError:
                    pass
            self._closed = True

    def __enter__(self) -> "PersistentProfileStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __contains__(self, content_hash: str) -> bool:
        with self._lock:
            return (
                content_hash in self._namespaces
                or content_hash in self._index
                or content_hash in self._shared_index
            )

    # ---------------------------------------------------------------- pre-warm
    @_holding_store_lock
    def prewarm(self, limit: int | None = None) -> int:
        """Load persisted namespaces into the in-memory LRU ahead of demand.

        Pool workers call this at startup so a restarted process serves its
        first requests warm instead of paying a ``disk_hit`` per column.  At
        most *limit* entries are loaded (default: up to ``max_columns``);
        keys already in memory are skipped and damaged records degrade to a
        skip, never a crash.  Returns the number of entries loaded (also
        accumulated in ``prewarmed_entries``).
        """
        if self._closed:
            return 0
        budget = self.max_columns - len(self._namespaces)
        if limit is not None:
            budget = min(budget, limit)
        loaded = 0
        for key, (path, payload_offset, length) in list(self._index.items()):
            if loaded >= budget:
                break
            if key in self._namespaces:
                continue
            namespace = self._read_and_unpickle(path, payload_offset, length)
            if namespace is None:
                continue
            self._namespaces[key] = namespace
            self._persisted_sizes[key] = len(namespace)
            loaded += 1
        self.prewarmed_entries += loaded
        return loaded

    @_holding_store_lock
    def warm_keys(self) -> set[str]:
        """Every content hash any tier of this store could serve warm."""
        return set(self._namespaces) | set(self._index) | set(self._shared_index)

    # ------------------------------------------------------------------- report
    @property
    def disk_entries(self) -> int:
        """Distinct keys currently indexed on disk."""
        return len(self._index)

    @property
    def shared_entries(self) -> int:
        """Distinct keys currently indexed from sibling journals."""
        return len(self._shared_index)

    @property
    def hit_rate(self) -> float:
        """Warm fraction of lookups, counting memory, disk, *and* shared hits.

        ``hits`` counts memory-tier hits only, ``disk_hits`` lookups served
        from this store's own segments, ``shared_hits`` lookups served from a
        live sibling's segment, and ``misses`` lookups no tier could serve —
        so every lookup appears exactly once.
        """
        total = self.hits + self.disk_hits + self.shared_hits + self.misses
        return (self.hits + self.disk_hits + self.shared_hits) / total if total else 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.shared_hits + self.misses

    def stats(self) -> dict[str, object]:
        with self._lock:
            report = super().stats()
            report.update(
                {
                    "disk_hits": self.disk_hits,
                    "disk_entries": self.disk_entries,
                    "shared_hits": self.shared_hits,
                    "shared_entries": self.shared_entries,
                    "sibling_journals": len(
                        [p for p in self._tail_offsets if p != self._journal_path]
                    ),
                    "share_across_processes": self.share_across_processes,
                    "flushes": self.flushes,
                    "flushed_entries": self.flushed_entries,
                    "recovered_entries": self.recovered_entries,
                    "prewarmed_entries": self.prewarmed_entries,
                    "corrupt_records_skipped": self.corrupt_records_skipped,
                    "tombstones": self.tombstones,
                    "compactions": self.compactions,
                    "deferred_segments": len(self._deferred_retired),
                    "pickle_errors": self.pickle_errors,
                    "segment_files": len(self._known_segments),
                    "disk_bytes": self._total_bytes,
                    "dead_bytes": self.dead_bytes,
                    "directory": str(self.directory),
                }
            )
            return report
