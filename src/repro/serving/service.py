"""Async annotation facade: request queue, micro-batching, per-customer routing.

The deployment the paper targets is a multi-tenant product annotating customer
tables online.  :class:`AnnotationService` is that serving shell around a
:class:`~repro.core.sigmatyper.SigmaTyper`: callers ``await
service.annotate(table, customer_id=...)`` concurrently, a single worker task
drains the request queue, coalesces whatever arrived within a short batching
window into per-customer groups, and runs each group through the batched
``annotate_corpus`` path off the event loop.  Per-request results are
identical to calling ``SigmaTyper.annotate`` directly — micro-batching only
amortises shared work (warm caches, one cascade pass per group), it never
mixes customers: each group is annotated with exactly the requester's
``customer_id``, so one tenant's local model can never leak into another's
predictions.

The batching window and batch-size cap can be **fixed** (the defaults) or
**adaptive**: with an :class:`AdaptiveBatchingConfig`, a bounded AIMD-style
controller per customer tunes both knobs online from the per-batch latency
and arrival-rate statistics the service already collects — saturated batches
grow the window additively to amortise more work per cascade pass, idle
windows and latency breaches shrink it multiplicatively to protect tail
latency.  Controller decisions are exposed in :class:`ServiceStats`.
Adaptivity only changes *when* work is grouped, never *what* is computed, so
predictions stay bit-identical to direct annotation either way.

Requests may carry a **deadline**: ``annotate(table, deadline=0.25)`` gives
the request a 250 ms end-to-end budget.  A request that ages out while queued
is discarded by the worker *before* its group's cascade runs (expired work is
never computed), and the caller gets a typed
:class:`~repro.core.errors.DeadlineExceededError` the moment the budget
expires — not when the worker happens to reach it.  Client-side cancellation
(``asyncio.CancelledError`` in the awaiting task) is equally safe at any
point: the worker skips requests whose future is already settled, never
counts skipped work into batching statistics or AIMD latency observations,
and a group whose every request was cancelled is not annotated at all.

Shutdown is graceful: :meth:`shutdown` stops accepting new requests, lets the
worker drain everything already enqueued, and fails any stragglers with
:class:`~repro.core.errors.ServingError`.  Pass ``drain_timeout`` to bound
the drain — past the deadline the worker is hard-cancelled and every still-
pending request fails with a typed
:class:`~repro.core.errors.ShutdownError` instead of hanging forever.

With an :class:`~repro.serving.slo.SloController` attached, the service also
feeds every served request's queue+batch latency to the controller, which
steps the cascade confidence threshold c down when the observed tail
breaches its budget (shallower, faster cascade) and recovers it as the queue
drains — see :mod:`repro.serving.slo` for the semantics and the explicit
parity caveat.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

from repro.core.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServingError,
    ShutdownError,
)
from repro.core import colblock
from repro.core.prediction import TablePrediction
from repro.core.table import Table, get_active_profile_store
from repro.serving.slo import SloConfig, SloController
from repro.serving.transport import transport_stats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.sigmatyper import SigmaTyper
    from repro.serving.backends import ExecutionBackend

__all__ = ["AdaptiveBatchingConfig", "AnnotationService", "ServiceStats"]


@dataclass
class AdaptiveBatchingConfig:
    """Bounds and gains of the per-customer AIMD batching controller.

    The controller follows the classic congestion-control shape: **additive
    increase** while demand saturates the current batch size (coalescing more
    per cascade pass raises throughput), **multiplicative decrease** when a
    batch breaches the latency target or the window expires mostly idle
    (waiting longer would only add latency).  Both knobs are hard-bounded —
    the window never leaves ``[min_batch_delay, max_batch_delay]`` and the
    size cap never leaves ``[1, max_batch_size]`` — so a misbehaving workload
    can degrade the controller's choices, never the service's limits.
    """

    #: Hard lower bound on the coalescing window (seconds).
    min_batch_delay: float = 0.0
    #: Hard upper bound on the coalescing window (seconds).
    max_batch_delay: float = 0.05
    #: Hard upper bound on the per-batch request cap.
    max_batch_size: int = 128
    #: Additive window growth per saturated batch (seconds).
    delay_increase: float = 0.002
    #: Additive size-cap growth per saturated batch (requests).
    size_increase: int = 4
    #: Multiplicative decrease factor for both knobs (0 < backoff < 1).
    backoff: float = 0.5
    #: Per-batch wall-clock latency above which the controller backs off.
    target_batch_seconds: float = 0.5
    #: Recent arrival timestamps kept per customer for the rate estimate.
    arrival_window: int = 64

    def validate(self) -> "AdaptiveBatchingConfig":
        if self.min_batch_delay < 0 or self.max_batch_delay < self.min_batch_delay:
            raise ConfigurationError(
                "adaptive batching requires 0 <= min_batch_delay <= max_batch_delay"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError("adaptive max_batch_size must be at least 1")
        if not 0.0 < self.backoff < 1.0:
            raise ConfigurationError("adaptive backoff must be in (0, 1)")
        if self.delay_increase < 0 or self.size_increase < 0:
            raise ConfigurationError("adaptive increase steps must be non-negative")
        if self.target_batch_seconds <= 0:
            raise ConfigurationError("target_batch_seconds must be positive")
        if self.arrival_window < 2:
            raise ConfigurationError("arrival_window must be at least 2")
        return self


class _AimdController:
    """One customer's bounded AIMD state: current window, size cap, history."""

    __slots__ = (
        "config",
        "delay",
        "size",
        "increases",
        "decreases",
        "batches",
        "arrivals",
    )

    def __init__(self, config: AdaptiveBatchingConfig, delay: float, size: int) -> None:
        self.config = config
        self.delay = min(max(delay, config.min_batch_delay), config.max_batch_delay)
        self.size = min(max(size, 1), config.max_batch_size)
        self.increases = 0
        self.decreases = 0
        self.batches = 0
        self.arrivals: deque[float] = deque(maxlen=config.arrival_window)

    def record_arrival(self, now: float) -> None:
        self.arrivals.append(now)

    @property
    def arrival_rate(self) -> float:
        """Requests/second over the recent arrival window (0 when unknown)."""
        if len(self.arrivals) < 2:
            return 0.0
        span = self.arrivals[-1] - self.arrivals[0]
        return (len(self.arrivals) - 1) / span if span > 0 else 0.0

    def observe(self, batch_size: int, batch_seconds: float) -> None:
        """Update the knobs from one completed batch (AIMD step).

        *batch_size* is the size of the whole **coalesced** batch the
        customer's group rode in, not the group alone: the coalesced size is
        the demand observed during the window, which is the saturation
        signal.  Comparing the customer's own (smaller) group against its cap
        would make the increase branch unreachable whenever several tenants
        share batches — precisely the multi-tenant load adaptivity targets.
        *batch_seconds* is the group's own annotate latency.
        """
        config = self.config
        self.batches += 1
        if batch_seconds > config.target_batch_seconds:
            # Latency breach: cut both knobs multiplicatively.
            self.size = max(1, int(self.size * config.backoff))
            self.delay = max(config.min_batch_delay, self.delay * config.backoff)
            self.decreases += 1
        elif batch_size >= self.size:
            # Saturated under the latency target: grow additively to amortise
            # more requests per cascade pass.
            self.size = min(config.max_batch_size, self.size + config.size_increase)
            self.delay = min(config.max_batch_delay, self.delay + config.delay_increase)
            self.increases += 1
        elif batch_size <= max(1, self.size // 2) and self.delay > config.min_batch_delay:
            # The window expired mostly idle: shrink it to cut latency for
            # sparse traffic.
            self.delay = max(config.min_batch_delay, self.delay * config.backoff)
            self.decreases += 1

    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable view of the controller's current decisions."""
        return {
            "batch_delay": round(self.delay, 6),
            "batch_size": self.size,
            "increases": self.increases,
            "decreases": self.decreases,
            "batches": self.batches,
            "arrival_rate_per_s": round(self.arrival_rate, 2),
        }


@dataclass
class ServiceStats:
    """Aggregate counters describing the service's batching behaviour.

    Besides the request/batch totals, the stats carry the raw signals the
    adaptive controller feeds on (per-batch wall-clock seconds) and — when
    adaptive batching is enabled — the latest per-customer controller
    decisions under ``controllers`` (window, size cap, increase/decrease
    counts, observed arrival rate).  When the active profile store is a
    :class:`~repro.serving.profile_store.PersistentProfileStore` with live
    cross-process sharing, ``store_shared_hits`` mirrors its ``shared_hits``
    counter — lookups this process served from a *sibling process's* freshly
    flushed segment records.
    """

    requests_total: int = 0
    batches_total: int = 0
    largest_batch: int = 0
    errors_total: int = 0
    rejected_total: int = 0
    #: Requests refused up front by admission control (front-end shedding);
    #: the front end mirrors its shed counters here so one summary() shows
    #: overload being managed.
    shed_total: int = 0
    #: Requests whose deadline expired before their group ran (discarded
    #: unexecuted) or whose caller stopped waiting past the budget.
    timed_out_total: int = 0
    #: Requests whose caller cancelled while they were queued or in flight.
    cancelled_total: int = 0
    #: Batches annotated while the SLO controller held the cascade threshold
    #: c below its baseline — the windows in which results may be shallower.
    degraded_batches: int = 0
    #: Current cascade confidence threshold c (None until a batch ran with an
    #: SLO controller attached; mirrors the controller's actuator state).
    confidence_threshold: float | None = None
    requests_by_customer: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds spent inside annotate calls, summed over batches.
    batch_seconds_total: float = 0.0
    #: Seconds requests spent queued (enqueue → their group's annotate call),
    #: summed over requests — the latency cost of coalescing.
    queue_seconds_total: float = 0.0
    #: Latest per-customer AIMD controller snapshots (empty when fixed).
    controllers: dict[str, dict] = field(default_factory=dict)
    #: Lookups served from a sibling process's segments (live cross-process
    #: store sharing); mirrors the active store's ``shared_hits`` counter.
    store_shared_hits: int = 0
    #: Columnar-kernel operations served vectorized in this process; mirrors
    #: :func:`repro.core.colblock.kernel_stats` (``kernel_hits``).
    kernel_hits: int = 0
    #: Columnar-kernel operations that fell back to the per-value Python
    #: path (bigint/mixed/non-ASCII cells, or kernels disabled mid-run).
    kernel_fallbacks: int = 0
    #: Shards whose cascade ran on a remote peer (net transport); mirrors the
    #: process-wide :func:`repro.serving.transport.transport_stats`.
    transport_remote_shards: int = 0
    #: Shards that degraded off their preferred transport path — pickle
    #: fallbacks (shm/tcp encode leg) plus the net transport's local reruns
    #: after a network failure.
    transport_fallbacks: int = 0
    #: Human-readable reason of the most recent transport fallback.
    transport_fallback_reason: str = ""

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per cascade invocation."""
        return self.requests_total / self.batches_total if self.batches_total else 0.0

    @property
    def mean_batch_seconds(self) -> float:
        """Average annotate-call latency per batch."""
        return self.batch_seconds_total / self.batches_total if self.batches_total else 0.0

    @property
    def mean_queue_seconds(self) -> float:
        """Average time one request waited between enqueue and execution."""
        return self.queue_seconds_total / self.requests_total if self.requests_total else 0.0

    def record_batch(self, batch_size: int, customers: dict[str, int]) -> None:
        self.requests_total += batch_size
        self.batches_total += 1
        self.largest_batch = max(self.largest_batch, batch_size)
        for customer, count in customers.items():
            self.requests_by_customer[customer] = (
                self.requests_by_customer.get(customer, 0) + count
            )

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation for logs and benchmarks."""
        return {
            "requests_total": self.requests_total,
            "batches_total": self.batches_total,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "largest_batch": self.largest_batch,
            "errors_total": self.errors_total,
            "rejected_total": self.rejected_total,
            "shed_total": self.shed_total,
            "timed_out_total": self.timed_out_total,
            "cancelled_total": self.cancelled_total,
            "degraded_batches": self.degraded_batches,
            "confidence_threshold": self.confidence_threshold,
            "requests_by_customer": dict(self.requests_by_customer),
            "batch_seconds_total": round(self.batch_seconds_total, 4),
            "mean_batch_seconds": round(self.mean_batch_seconds, 4),
            "queue_seconds_total": round(self.queue_seconds_total, 4),
            "mean_queue_seconds": round(self.mean_queue_seconds, 4),
            "controllers": {name: dict(state) for name, state in self.controllers.items()},
            "store_shared_hits": self.store_shared_hits,
            "kernel_hits": self.kernel_hits,
            "kernel_fallbacks": self.kernel_fallbacks,
            "transport_remote_shards": self.transport_remote_shards,
            "transport_fallbacks": self.transport_fallbacks,
            "transport_fallback_reason": self.transport_fallback_reason,
        }


class _Request:
    """One enqueued annotation request and the future its caller awaits."""

    __slots__ = ("table", "customer_id", "future", "enqueued_at", "deadline_at")

    def __init__(
        self,
        table: Table,
        customer_id: str | None,
        future: asyncio.Future,
        enqueued_at: float,
        deadline_at: float | None = None,
    ) -> None:
        self.table = table
        self.customer_id = customer_id
        self.future = future
        self.enqueued_at = enqueued_at
        #: Absolute ``time.monotonic()`` deadline, or None for no budget.
        self.deadline_at = deadline_at


#: Queue sentinel that tells the worker to finish draining and exit.
_STOP = object()

#: Stats key for requests without a customer (the shared global model).
_GLOBAL = "<global>"


class AnnotationService:
    """Asyncio serving facade over a :class:`SigmaTyper`.

    Parameters
    ----------
    typer:
        The (pretrained) system to serve.  Customer registration and feedback
        still go through the ``SigmaTyper`` API directly.
    max_batch_size:
        Upper bound on requests coalesced into one queue drain.
    max_batch_delay:
        Seconds the worker waits for additional requests after the first one
        of a batch arrives.  A couple of milliseconds is enough to coalesce
        genuinely concurrent traffic; latency-sensitive deployments set 0 to
        batch only what is already queued.
    backend:
        Optional :class:`~repro.serving.backends.ExecutionBackend` (or spec
        string / typed :class:`~repro.serving.spec.BackendSpec`) used for
        the ``annotate_corpus`` call of each batch.  Leave
        unset (serial) for typical online micro-batches — the multiprocess
        backend forks a pool per call, which only pays off for large batches.
    adaptive:
        ``None``/``False`` (default) keeps the fixed window and size cap.
        Pass ``True`` (defaults) or an :class:`AdaptiveBatchingConfig` to let
        a bounded per-customer AIMD controller tune both knobs online from
        observed per-batch latency and arrival rates; ``max_batch_size`` /
        ``max_batch_delay`` then seed the controllers' starting point, while
        the config's bounds cap what the controller may choose.
    slo:
        Optional SLO control of the cascade confidence threshold c: pass an
        :class:`~repro.serving.slo.SloController` (or a
        :class:`~repro.serving.slo.SloConfig`, from which one is built around
        *typer*) and the service feeds it every served request's queue+batch
        latency; the controller steps c down when the observed tail breaches
        its budget and recovers it as load drains.  Degradation changes
        predictions (shallower cascade) — see :mod:`repro.serving.slo`.
    """

    def __init__(
        self,
        typer: "SigmaTyper",
        max_batch_size: int = 32,
        max_batch_delay: float = 0.005,
        backend: "ExecutionBackend | str | None" = None,
        adaptive: "AdaptiveBatchingConfig | bool | None" = None,
        slo: "SloController | SloConfig | None" = None,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be at least 1")
        if max_batch_delay < 0:
            raise ConfigurationError("max_batch_delay must be non-negative")
        self.typer = typer
        self.max_batch_size = max_batch_size
        self.max_batch_delay = max_batch_delay
        self.backend = backend
        if adaptive is True:
            adaptive = AdaptiveBatchingConfig()
        elif adaptive is False:
            adaptive = None
        if adaptive is not None and not isinstance(adaptive, AdaptiveBatchingConfig):
            raise ConfigurationError(
                "adaptive must be an AdaptiveBatchingConfig, a bool, or None"
            )
        self.adaptive: AdaptiveBatchingConfig | None = (
            adaptive.validate() if adaptive is not None else None
        )
        if isinstance(slo, SloConfig):
            slo = SloController(typer, slo)
        if slo is not None and not isinstance(slo, SloController):
            raise ConfigurationError("slo must be an SloController, an SloConfig, or None")
        self.slo: SloController | None = slo
        self._controllers: dict[str, _AimdController] = {}
        self.stats = ServiceStats()
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._accepting = False

    # ---------------------------------------------------------------- lifecycle
    @property
    def is_running(self) -> bool:
        """Whether the worker task is up and the service accepts requests."""
        return self._accepting and self._worker is not None

    async def start(self) -> "AnnotationService":
        """Start the queue worker (idempotent only before :meth:`shutdown`)."""
        if self._worker is not None:
            raise ServingError("AnnotationService is already running")
        self._queue = asyncio.Queue()
        self._accepting = True
        self._worker = asyncio.get_running_loop().create_task(self._worker_loop())
        return self

    async def shutdown(self, drain_timeout: float | None = None) -> None:
        """Stop accepting requests, drain everything enqueued, stop the worker.

        With ``drain_timeout=None`` (the default) the drain is unbounded: the
        worker finishes every batch already enqueued, however long that
        takes.  With a timeout, the drain is given that many seconds and then
        **hard-cancelled**: the worker task is cancelled (an in-flight
        cascade finishes on its executor thread but its results are
        dropped), and every request still pending — in flight or queued —
        fails with a typed :class:`ShutdownError` instead of hanging on a
        future nobody will resolve.  Either way the call returns with the
        worker stopped and the queue empty; the persistent store is
        untouched (it only ever gains entries, so dropping results cannot
        leave it inconsistent).
        """
        if self._worker is None:
            return
        if drain_timeout is not None and drain_timeout < 0:
            raise ConfigurationError("drain_timeout must be non-negative")
        self._accepting = False
        assert self._queue is not None
        await self._queue.put(_STOP)
        try:
            if drain_timeout is None:
                await self._worker
            else:
                try:
                    # wait_for cancels the worker on timeout and awaits its
                    # cancellation handler (_process_batch fails the in-flight
                    # group's futures with ShutdownError before re-raising).
                    await asyncio.wait_for(self._worker, drain_timeout)
                except asyncio.TimeoutError:
                    pass
        finally:
            self._worker = None
            # Anything that raced past the accepting flag after the sentinel
            # was enqueued — or was abandoned by a hard-cancelled drain — can
            # no longer be served.
            while not self._queue.empty():
                leftover = self._queue.get_nowait()
                if leftover is _STOP:
                    continue
                if not leftover.future.done():
                    leftover.future.set_exception(
                        ShutdownError("AnnotationService shut down before serving this request")
                    )
                self.stats.rejected_total += 1
            self._queue = None

    async def __aenter__(self) -> "AnnotationService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    # ----------------------------------------------------------------- requests
    async def annotate(
        self,
        table: Table,
        customer_id: str | None = None,
        deadline: float | None = None,
    ) -> TablePrediction:
        """Annotate one table; identical to ``SigmaTyper.annotate`` per request.

        *deadline* is the request's end-to-end latency budget in seconds
        (``None`` = unbounded, the default).  When the budget expires the
        caller gets a :class:`DeadlineExceededError` immediately and the
        worker discards the request before (or without) running its cascade;
        a result is never silently computed past its deadline.
        """
        if not self._accepting or self._queue is None:
            self.stats.rejected_total += 1
            raise ServingError("AnnotationService is not accepting requests")
        if deadline is not None and deadline < 0:
            raise ConfigurationError("deadline must be non-negative")
        now = time.monotonic()
        deadline_at = now + deadline if deadline is not None else None
        if self.adaptive is not None:
            self._controller(customer_id).record_arrival(now)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Request(table, customer_id, future, now, deadline_at))
        if deadline_at is None:
            return await future
        try:
            return await asyncio.wait_for(future, max(0.0, deadline_at - time.monotonic()))
        except asyncio.TimeoutError:
            # wait_for already cancelled the future, so the worker will skip
            # the request when it reaches it (counted there as cancelled, not
            # here — this is the one place the timeout is accounted).
            self.stats.timed_out_total += 1
            raise DeadlineExceededError(
                f"request exceeded its {deadline:.3f}s latency budget"
            ) from None

    # --------------------------------------------------------------- controllers
    def _controller(self, customer_id: str | None) -> _AimdController:
        """The AIMD controller of one customer (created on first request)."""
        assert self.adaptive is not None
        key = customer_id if customer_id is not None else _GLOBAL
        controller = self._controllers.get(key)
        if controller is None:
            controller = self._controllers[key] = _AimdController(
                self.adaptive, delay=self.max_batch_delay, size=self.max_batch_size
            )
        return controller

    def _batch_knobs(self, first: _Request) -> tuple[float, int]:
        """The coalescing window and size cap to use for a nascent batch.

        Fixed mode returns the constructor knobs.  Adaptive mode returns the
        current decision of the *first* request's customer controller — the
        customer that opened the batch paid the queueing delay, so its
        latency/throughput trade-off governs how long the batch may wait.
        """
        if self.adaptive is None:
            return self.max_batch_delay, self.max_batch_size
        controller = self._controller(first.customer_id)
        return controller.delay, controller.size

    # ------------------------------------------------------------------- worker
    async def _worker_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            request = await self._queue.get()
            if request is _STOP:
                break
            batch = [request]
            stop_after_batch = False
            batch_delay, batch_size_cap = self._batch_knobs(request)
            deadline = loop.time() + batch_delay
            while len(batch) < batch_size_cap:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Window elapsed: still coalesce whatever is already queued.
                    try:
                        next_request = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        next_request = await asyncio.wait_for(self._queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                if next_request is _STOP:
                    stop_after_batch = True
                    break
                batch.append(next_request)
            await self._process_batch(batch)
            if stop_after_batch:
                break

    def _discard_settled(self, requests: list[_Request], now: float) -> list[_Request]:
        """Drop requests that can no longer be served, settling their futures.

        A request whose future is already done was cancelled (or timed out)
        client-side; one whose deadline has passed is failed with a typed
        :class:`DeadlineExceededError` *without* running the cascade.  Either
        way the request never reaches annotate, never contributes queue time,
        and never feeds the AIMD or SLO controllers — cancellations cannot
        skew latency observations.
        """
        live: list[_Request] = []
        for request in requests:
            if request.future.done():
                # Count client-side timeouts where they were raised (annotate);
                # everything else settled early is a genuine cancellation.
                if request.deadline_at is None or now < request.deadline_at:
                    self.stats.cancelled_total += 1
                continue
            if request.deadline_at is not None and now >= request.deadline_at:
                request.future.set_exception(
                    DeadlineExceededError("request expired while queued")
                )
                self.stats.timed_out_total += 1
                continue
            live.append(request)
        return live

    async def _process_batch(self, batch: list[_Request]) -> None:
        loop = asyncio.get_running_loop()
        batch = self._discard_settled(batch, time.monotonic())
        if not batch:
            return
        groups: dict[str | None, list[_Request]] = {}
        for request in batch:
            groups.setdefault(request.customer_id, []).append(request)
        self.stats.record_batch(
            len(batch),
            {customer_id if customer_id is not None else _GLOBAL: len(requests)
             for customer_id, requests in groups.items()},
        )
        for customer_id, requests in groups.items():
            # Re-check right before dispatch: earlier groups' annotate calls
            # consumed wall-clock this group's stragglers may not have had.
            requests = self._discard_settled(requests, time.monotonic())
            if not requests:
                continue
            tables = [request.table for request in requests]
            annotate = partial(
                self.typer.annotate_corpus,
                tables,
                customer_id=customer_id,
                backend=self.backend,
            )
            degraded = self.slo is not None and self.slo.is_degraded
            started = time.monotonic()
            for request in requests:
                self.stats.queue_seconds_total += started - request.enqueued_at
            try:
                predictions = await loop.run_in_executor(None, annotate)
            except asyncio.CancelledError:
                # Hard-cancelled mid-flight (bounded shutdown drain): fail the
                # group's callers with a typed error instead of leaving them
                # awaiting futures nobody will resolve.  The executor thread
                # finishes its cascade in the background; its result is
                # dropped, which is safe — the store only ever gains entries.
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(
                            ShutdownError("request cancelled by shutdown drain deadline")
                        )
                raise
            except Exception as exc:  # noqa: BLE001 - surfaced per request
                self.stats.errors_total += len(requests)
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(
                            ServingError(f"annotation failed: {exc}")
                        )
                continue
            finally:
                elapsed = time.monotonic() - started
                self.stats.batch_seconds_total += elapsed
                if degraded:
                    self.stats.degraded_batches += 1
                store = get_active_profile_store()
                if store is not None:
                    self.stats.store_shared_hits = int(getattr(store, "shared_hits", 0))
                kernel_counters = colblock.kernel_stats()
                self.stats.kernel_hits = int(kernel_counters["kernel_hits"])
                self.stats.kernel_fallbacks = int(kernel_counters["kernel_fallbacks"])
                shard_transport = transport_stats()
                if shard_transport:
                    remote = fallbacks = 0
                    reason = ""
                    for bucket in shard_transport.values():
                        remote += bucket.get("remote_shards", 0)
                        fallbacks += (
                            bucket.get("pickle_fallbacks", 0)
                            + bucket.get("local_fallbacks", 0)
                        )
                        reason = bucket.get("last_fallback_reason", "") or reason
                    self.stats.transport_remote_shards = remote
                    self.stats.transport_fallbacks = fallbacks
                    self.stats.transport_fallback_reason = reason
                if self.adaptive is not None:
                    controller = self._controller(customer_id)
                    controller.observe(len(batch), elapsed)
                    key = customer_id if customer_id is not None else _GLOBAL
                    self.stats.controllers[key] = controller.snapshot()
                if self.slo is not None:
                    for request in requests:
                        self.slo.observe((started - request.enqueued_at) + elapsed)
                    self.slo.maybe_adjust()
                    self.stats.confidence_threshold = self.slo.current
            for request, prediction in zip(requests, predictions):
                if not request.future.done():
                    request.future.set_result(prediction)

    # ------------------------------------------------------------------- report
    def summary(self) -> dict[str, object]:
        """Service-level report in the unified :func:`~repro.serving.stats.
        render_stats` shape (running state, batching knobs, stats).

        When a shared profile store is active its full counters — including
        the cross-process ``shared_hits`` of a persistent store with live
        sharing — are included under ``profile_store``.  ``service`` is the
        canonical section for this component's own counters; ``stats``
        aliases it for one release (docs/SERVING.md#stats-vocabulary).
        """
        from repro.serving.stats import render_stats

        report: dict[str, object] = {
            "running": self.is_running,
            "max_batch_size": self.max_batch_size,
            "max_batch_delay": self.max_batch_delay,
            "adaptive": self.adaptive is not None,
            "backend": getattr(self.backend, "name", self.backend) or "serial",
        }
        report.update(render_stats(service=self))
        report["stats"] = report["service"]
        return report
