"""Async annotation facade: request queue, micro-batching, per-customer routing.

The deployment the paper targets is a multi-tenant product annotating customer
tables online.  :class:`AnnotationService` is that serving shell around a
:class:`~repro.core.sigmatyper.SigmaTyper`: callers ``await
service.annotate(table, customer_id=...)`` concurrently, a single worker task
drains the request queue, coalesces whatever arrived within a short batching
window into per-customer groups, and runs each group through the batched
``annotate_corpus`` path off the event loop.  Per-request results are
identical to calling ``SigmaTyper.annotate`` directly — micro-batching only
amortises shared work (warm caches, one cascade pass per group), it never
mixes customers: each group is annotated with exactly the requester's
``customer_id``, so one tenant's local model can never leak into another's
predictions.

Shutdown is graceful: :meth:`shutdown` stops accepting new requests, lets the
worker drain everything already enqueued, and fails any stragglers with
:class:`~repro.core.errors.ServingError`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError, ServingError
from repro.core.prediction import TablePrediction
from repro.core.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.sigmatyper import SigmaTyper
    from repro.serving.backends import ExecutionBackend

__all__ = ["AnnotationService", "ServiceStats"]


@dataclass
class ServiceStats:
    """Aggregate counters describing the service's batching behaviour."""

    requests_total: int = 0
    batches_total: int = 0
    largest_batch: int = 0
    errors_total: int = 0
    rejected_total: int = 0
    requests_by_customer: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per cascade invocation."""
        return self.requests_total / self.batches_total if self.batches_total else 0.0

    def record_batch(self, batch_size: int, customers: dict[str, int]) -> None:
        self.requests_total += batch_size
        self.batches_total += 1
        self.largest_batch = max(self.largest_batch, batch_size)
        for customer, count in customers.items():
            self.requests_by_customer[customer] = (
                self.requests_by_customer.get(customer, 0) + count
            )

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation for logs and benchmarks."""
        return {
            "requests_total": self.requests_total,
            "batches_total": self.batches_total,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "largest_batch": self.largest_batch,
            "errors_total": self.errors_total,
            "rejected_total": self.rejected_total,
            "requests_by_customer": dict(self.requests_by_customer),
        }


class _Request:
    """One enqueued annotation request and the future its caller awaits."""

    __slots__ = ("table", "customer_id", "future")

    def __init__(self, table: Table, customer_id: str | None, future: asyncio.Future) -> None:
        self.table = table
        self.customer_id = customer_id
        self.future = future


#: Queue sentinel that tells the worker to finish draining and exit.
_STOP = object()

#: Stats key for requests without a customer (the shared global model).
_GLOBAL = "<global>"


class AnnotationService:
    """Asyncio serving facade over a :class:`SigmaTyper`.

    Parameters
    ----------
    typer:
        The (pretrained) system to serve.  Customer registration and feedback
        still go through the ``SigmaTyper`` API directly.
    max_batch_size:
        Upper bound on requests coalesced into one queue drain.
    max_batch_delay:
        Seconds the worker waits for additional requests after the first one
        of a batch arrives.  A couple of milliseconds is enough to coalesce
        genuinely concurrent traffic; latency-sensitive deployments set 0 to
        batch only what is already queued.
    backend:
        Optional :class:`~repro.serving.backends.ExecutionBackend` (or spec
        string) used for the ``annotate_corpus`` call of each batch.  Leave
        unset (serial) for typical online micro-batches — the multiprocess
        backend forks a pool per call, which only pays off for large batches.
    """

    def __init__(
        self,
        typer: "SigmaTyper",
        max_batch_size: int = 32,
        max_batch_delay: float = 0.005,
        backend: "ExecutionBackend | str | None" = None,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be at least 1")
        if max_batch_delay < 0:
            raise ConfigurationError("max_batch_delay must be non-negative")
        self.typer = typer
        self.max_batch_size = max_batch_size
        self.max_batch_delay = max_batch_delay
        self.backend = backend
        self.stats = ServiceStats()
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._accepting = False

    # ---------------------------------------------------------------- lifecycle
    @property
    def is_running(self) -> bool:
        """Whether the worker task is up and the service accepts requests."""
        return self._accepting and self._worker is not None

    async def start(self) -> "AnnotationService":
        """Start the queue worker (idempotent only before :meth:`shutdown`)."""
        if self._worker is not None:
            raise ServingError("AnnotationService is already running")
        self._queue = asyncio.Queue()
        self._accepting = True
        self._worker = asyncio.get_running_loop().create_task(self._worker_loop())
        return self

    async def shutdown(self) -> None:
        """Stop accepting requests, drain everything enqueued, stop the worker."""
        if self._worker is None:
            return
        self._accepting = False
        assert self._queue is not None
        await self._queue.put(_STOP)
        try:
            await self._worker
        finally:
            self._worker = None
            # Anything that raced past the accepting flag after the sentinel
            # was enqueued can no longer be served.
            while not self._queue.empty():
                leftover = self._queue.get_nowait()
                if leftover is _STOP:
                    continue
                if not leftover.future.done():
                    leftover.future.set_exception(ServingError("AnnotationService shut down"))
                self.stats.rejected_total += 1
            self._queue = None

    async def __aenter__(self) -> "AnnotationService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    # ----------------------------------------------------------------- requests
    async def annotate(self, table: Table, customer_id: str | None = None) -> TablePrediction:
        """Annotate one table; identical to ``SigmaTyper.annotate`` per request."""
        if not self._accepting or self._queue is None:
            self.stats.rejected_total += 1
            raise ServingError("AnnotationService is not accepting requests")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Request(table, customer_id, future))
        return await future

    # ------------------------------------------------------------------- worker
    async def _worker_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            request = await self._queue.get()
            if request is _STOP:
                break
            batch = [request]
            stop_after_batch = False
            deadline = loop.time() + self.max_batch_delay
            while len(batch) < self.max_batch_size:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Window elapsed: still coalesce whatever is already queued.
                    try:
                        next_request = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        next_request = await asyncio.wait_for(self._queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                if next_request is _STOP:
                    stop_after_batch = True
                    break
                batch.append(next_request)
            await self._process_batch(batch)
            if stop_after_batch:
                break

    async def _process_batch(self, batch: list[_Request]) -> None:
        loop = asyncio.get_running_loop()
        groups: dict[str | None, list[_Request]] = {}
        for request in batch:
            groups.setdefault(request.customer_id, []).append(request)
        self.stats.record_batch(
            len(batch),
            {customer_id if customer_id is not None else _GLOBAL: len(requests)
             for customer_id, requests in groups.items()},
        )
        for customer_id, requests in groups.items():
            tables = [request.table for request in requests]
            annotate = partial(
                self.typer.annotate_corpus,
                tables,
                customer_id=customer_id,
                backend=self.backend,
            )
            try:
                predictions = await loop.run_in_executor(None, annotate)
            except Exception as exc:  # noqa: BLE001 - surfaced per request
                self.stats.errors_total += len(requests)
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(
                            ServingError(f"annotation failed: {exc}")
                        )
                continue
            for request, prediction in zip(requests, predictions):
                if not request.future.done():
                    request.future.set_result(prediction)

    # ------------------------------------------------------------------- report
    def summary(self) -> dict[str, object]:
        """Service-level report (running state, batching knobs, stats)."""
        return {
            "running": self.is_running,
            "max_batch_size": self.max_batch_size,
            "max_batch_delay": self.max_batch_delay,
            "backend": getattr(self.backend, "name", self.backend) or "serial",
            "stats": self.stats.to_dict(),
        }
