"""One stats vocabulary for the serving layer: :func:`render_stats`.

Before PR 10 every report spelled shared counters its own way:
``SigmaTyper.summary()`` nested the active store's counters under
``profile_store``, ``ServiceStats`` mirrored the same number as a flat
``store_shared_hits``, and the front end's ``/stats`` nested both.  One
counter, three spellings — exactly the drift a dashboard regex breaks on.

:func:`render_stats` is now the single composer: every ``summary()`` in the
serving layer (:class:`~repro.serving.service.AnnotationService`,
:class:`~repro.serving.frontend.AnnotationFrontend`,
:class:`~repro.serving.pool.AnnotationPool`) and
``SigmaTyper.summary()`` build their shared sections through it, so the same
counter always appears under the same section with the same key:

* ``profile_store`` — the active store's own :meth:`stats` (canonical home
  of ``shared_hits``, ``disk_hits``, ``prewarmed_entries``, ...);
* ``shard_transport`` — :func:`repro.serving.transport.transport_stats`;
* ``columnar_kernels`` — :func:`repro.core.colblock.kernel_stats`;
* plus the caller's own section (``service`` / ``frontend`` / ``pool``) and
  ``slo`` when a controller is attached.

The pre-PR 10 spellings remain as **deprecated aliases for one release**
(:data:`DEPRECATED_KEYS`; see docs/SERVING.md#stats-vocabulary): the flat
``ServiceStats`` mirrors (``store_shared_hits``, ``kernel_hits``, ...) and
the ``summary()["stats"]`` key (now also available as ``summary()["service"]``
/ ``summary()["pool"]``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.frontend import AnnotationFrontend
    from repro.serving.pool import AnnotationPool
    from repro.serving.service import AnnotationService

__all__ = ["DEPRECATED_KEYS", "render_stats", "shared_sections", "resolve_key"]

#: Deprecated spelling → canonical ``section.key`` path (dots traverse the
#: :func:`render_stats` report; ``*`` matches every key of a dict section).
#: The aliases keep emitting for one release; new consumers read the
#: canonical paths.  Documented in docs/SERVING.md#stats-vocabulary.
DEPRECATED_KEYS: dict[str, str] = {
    "service.store_shared_hits": "profile_store.shared_hits",
    "service.kernel_hits": "columnar_kernels.kernel_hits",
    "service.kernel_fallbacks": "columnar_kernels.kernel_fallbacks",
    "service.transport_remote_shards": "shard_transport.*.remote_shards",
    "service.transport_fallbacks": "shard_transport.*.pickle_fallbacks+local_fallbacks",
    "service.transport_fallback_reason": "shard_transport.*.last_fallback_reason",
    "summary.stats": "summary.service (or summary.pool on a pool)",
}


def shared_sections() -> dict[str, object]:
    """The process-wide sections every serving report shares.

    ``profile_store`` appears when a store is active, ``shard_transport``
    once any transport shipped bytes, ``columnar_kernels`` always — the
    exact presence rules ``SigmaTyper.summary()`` has always had.
    """
    from repro.core import colblock
    from repro.core.table import get_active_profile_store
    from repro.serving.transport import transport_stats

    sections: dict[str, object] = {}
    store = get_active_profile_store()
    if store is not None and hasattr(store, "stats"):
        sections["profile_store"] = store.stats()
    shard_transport = transport_stats()
    if shard_transport:
        sections["shard_transport"] = shard_transport
    sections["columnar_kernels"] = colblock.kernel_stats()
    return sections


def render_stats(
    *,
    service: "AnnotationService | None" = None,
    frontend: "AnnotationFrontend | None" = None,
    pool: "AnnotationPool | None" = None,
    typer=None,
) -> dict[str, object]:
    """The unified stats shape: caller sections + the shared sections.

    Pass whichever components the report covers; each contributes its own
    canonical section (``service`` / ``frontend`` / ``pool`` from the
    component's stats ``to_dict()``, ``slo`` from an attached controller,
    ``timings`` from a typer).  The shared sections ride along once.
    """
    report: dict[str, object] = {}
    if frontend is not None:
        report["frontend"] = frontend.stats.to_dict()
    if service is not None:
        report["service"] = service.stats.to_dict()
        if service.slo is not None:
            report["slo"] = service.slo.snapshot()
    if pool is not None:
        report["pool"] = pool.stats.to_dict()
    report.update(shared_sections())
    if typer is not None:
        from repro.core.timings import stage_timings

        report["timings"] = stage_timings()
    return report


def resolve_key(report: dict, dotted: str):
    """Read a canonical ``section.key`` path out of a report (test helper).

    A ``*`` component sums the keyed value across every entry of a dict
    section; a ``a+b`` leaf sums sibling keys.  Returns ``None`` when any
    component is absent.
    """
    nodes: list = [report]
    for part in dotted.split("."):
        next_nodes: list = []
        for node in nodes:
            if not isinstance(node, dict):
                return None
            if part == "*":
                next_nodes.extend(node.values())
            elif "+" in part:
                total = 0
                for leaf in part.split("+"):
                    if leaf not in node:
                        return None
                    total += node[leaf]
                next_nodes.append(total)
            else:
                if part not in node:
                    return None
                next_nodes.append(node[part])
        nodes = next_nodes
    if not nodes:
        return None
    if len(nodes) == 1:
        return nodes[0]
    if all(isinstance(node, (int, float)) for node in nodes):
        return sum(nodes)
    return nodes
