"""Multi-node shard transport: the block wire format over TCP.

PR 7 made the typed column block the system's native representation — the
profiling/featurization kernels run directly over its tag/offset/blob
buffers — so the block format *is* the wire format.  This module cashes that
in behind the existing :class:`~repro.serving.transport.Transport` seam:

* :class:`NetTransport` ships each shard as the exact
  :class:`~repro.serving.transport.ColumnBlockCodec` byte layout inside one
  length-prefixed crc-framed TCP message, and receives predictions back as
  the :class:`~repro.serving.transport.PredictionBlockCodec` layout.  Spec
  strings select it like any other transport: ``"multiprocess:4+tcp"``
  (peers from ``$REPRO_NET_PEERS``) or
  ``"multiprocess:4+tcp://host:port,host2:port2"``.
* :class:`BlockWorkerServer` is the peer: it receives a segment into an
  anonymous ``mmap`` and runs the columnar kernels over the received buffer
  exactly as multiprocess workers run them over a local shm segment —
  :meth:`Table.from_block` attaches the same zero-copy views either way.

Robustness is first-class, not best-effort:

* every connection carries explicit deadlines (``NetConfig.connect_timeout``
  for the dial, ``NetConfig.io_timeout`` for each framed read/write), so a
  slow or wedged peer can never stall the dispatcher indefinitely;
* connects retry with bounded exponential backoff
  (``connect_retries`` / ``backoff_base`` / ``backoff_max``), counted in
  ``stats.reconnects``;
* **any** network failure — unreachable peer, torn frame, crc mismatch,
  deadline, remote shard error — degrades to running that one shard locally
  over the same decoded block (``stats.local_fallbacks``, with the reason in
  ``last_fallback_reason``).  Results are bit-identical either way, so a
  chaos run and a clean run produce the same predictions;
* lifecycle is airtight: the transport owns no named segments (payload bytes
  travel inside the frame; the server's receive buffer is an anonymous mmap
  freed on close), so a killed peer cannot leak a segment, and one
  connection serves exactly one shard, so there is no pooled socket to wedge.

Frame layout (network byte order)::

    magic "SGN1" | u8 msg_type | u32 payload_len | u32 crc32(payload)
    payload_len bytes of payload

Message types: ``MSG_SHARD`` (ColumnBlockCodec blob), ``MSG_RESULT``
(PredictionBlockCodec blob), ``MSG_RESULT_PICKLE`` (pickled results — the
result leg's own fallback for unsupported prediction shapes) and
``MSG_ERROR`` (UTF-8 description of a shard-function error; the client
reruns the shard locally so deterministic errors propagate with a real
traceback).

The E16 benchmark (``benchmarks/test_bench_net_transport.py``) pins parity
for the loopback and chaos legs; ``tests/test_net_transport.py`` drives the
full fault-injection matrix through ``tests/faultnet.py``.
"""

from __future__ import annotations

import itertools
import mmap
import os
import pickle
import socket
import struct
import threading
import time
import zlib
from dataclasses import dataclass

from repro.core.errors import ConfigurationError, ServingError
from repro.core.table import Table
from repro.serving.transport import (
    _PICKLE_PROTOCOL,
    ColumnBlockCodec,
    PredictionBlockCodec,
    Transport,
    UnsupportedPayloadError,
)

__all__ = [
    "NetTransport",
    "BlockWorkerServer",
    "NetConfig",
    "NetError",
    "FrameError",
    "PeerUnavailableError",
    "NetTimeoutError",
    "MSG_SHARD",
    "MSG_RESULT",
    "MSG_RESULT_PICKLE",
    "MSG_ERROR",
    "MSG_POOL_REQUEST",
    "MSG_POOL_RESULT",
    "MSG_POOL_ERROR",
    "MSG_POOL_PING",
    "MSG_POOL_PONG",
    "FRAME_MAGIC",
    "FRAME_HEADER",
    "read_frame",
    "write_frame",
]


class NetError(ServingError):
    """Base class for network-transport failures (all degrade to local)."""


class FrameError(NetError):
    """Torn, oversized, or corrupt frame (bad magic / length / crc)."""


class PeerUnavailableError(NetError):
    """Peer unreachable after the bounded reconnect budget."""


class NetTimeoutError(NetError):
    """A framed read/write missed its per-connection deadline."""


FRAME_MAGIC = b"SGN1"
#: ``magic | u8 msg_type | u32 payload_len | u32 crc32`` — 13 bytes.
FRAME_HEADER = struct.Struct("!4sBII")

MSG_SHARD = 1
MSG_RESULT = 2
MSG_RESULT_PICKLE = 3
MSG_ERROR = 4
#: Pool dispatcher <-> worker messages (see :mod:`repro.serving.pool`): a
#: dispatched request, its result/error, and the heartbeat ping/pong pair.
#: They share the SGN1 framing so :func:`read_frame`'s magic/crc/size guards
#: cover the pool protocol too.
MSG_POOL_REQUEST = 5
MSG_POOL_RESULT = 6
MSG_POOL_ERROR = 7
MSG_POOL_PING = 8
MSG_POOL_PONG = 9

_KNOWN_MESSAGES = frozenset(
    {
        MSG_SHARD,
        MSG_RESULT,
        MSG_RESULT_PICKLE,
        MSG_ERROR,
        MSG_POOL_REQUEST,
        MSG_POOL_RESULT,
        MSG_POOL_ERROR,
        MSG_POOL_PING,
        MSG_POOL_PONG,
    }
)


@dataclass
class NetConfig:
    """Deadline/backoff knobs for one transport or server.

    Every field has an environment override (``REPRO_NET_<FIELD>``, upper
    case) read by :meth:`from_env`, which is what spec-string resolution
    uses — operators tune deadlines without touching code.
    """

    #: Deadline for one TCP dial.
    connect_timeout: float = 2.0
    #: Deadline for each framed read/write on an established connection.
    io_timeout: float = 30.0
    #: Additional connect attempts after the first (0 = dial once).
    connect_retries: int = 2
    #: First retry sleeps this long; each later retry doubles it...
    backoff_base: float = 0.05
    #: ...capped here.
    backoff_max: float = 1.0
    #: Reject frames larger than this on both sides (default 256 MB).
    max_message_bytes: int = 256 << 20

    _ENV_FIELDS = (
        ("connect_timeout", float),
        ("io_timeout", float),
        ("connect_retries", int),
        ("backoff_base", float),
        ("backoff_max", float),
        ("max_message_bytes", int),
    )

    def __post_init__(self) -> None:
        if self.connect_timeout <= 0 or self.io_timeout <= 0:
            raise ConfigurationError("net timeouts must be positive")
        if self.connect_retries < 0:
            raise ConfigurationError("connect_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < self.backoff_base:
            raise ConfigurationError("backoff must satisfy 0 <= base <= max")
        if self.max_message_bytes < 1:
            raise ConfigurationError("max_message_bytes must be positive")

    @classmethod
    def from_env(cls, env=None) -> "NetConfig":
        env = os.environ if env is None else env
        kwargs = {}
        for name, cast in cls._ENV_FIELDS:
            raw = env.get(f"REPRO_NET_{name.upper()}")
            if raw is None:
                continue
            try:
                kwargs[name] = cast(raw)
            except ValueError as exc:
                raise ConfigurationError(f"bad REPRO_NET_{name.upper()}={raw!r}: {exc}") from exc
        return cls(**kwargs)


# --------------------------------------------------------------------- framing
def _read_exact(sock: socket.socket, n: int, *, eof_ok: bool = False):
    """Read exactly *n* bytes; ``None`` on clean EOF at a frame boundary."""
    chunks = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except socket.timeout as exc:
            raise NetTimeoutError(f"read deadline after {got}/{n} bytes") from exc
        except OSError as exc:
            raise FrameError(f"connection lost after {got}/{n} bytes: {exc}") from exc
        if not chunk:
            if got == 0 and eof_ok:
                return None
            raise FrameError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, max_message_bytes: int, *, eof_ok: bool = False):
    """Read one frame; returns ``(msg_type, payload, frame_bytes)``.

    ``None`` on clean EOF before the first header byte when *eof_ok*.
    Raises :class:`FrameError` for bad magic/type/length/crc and torn frames,
    :class:`NetTimeoutError` when the read deadline fires.
    """
    header = _read_exact(sock, FRAME_HEADER.size, eof_ok=eof_ok)
    if header is None:
        return None
    magic, msg_type, length, crc = FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if msg_type not in _KNOWN_MESSAGES:
        raise FrameError(f"unknown message type {msg_type}")
    if length > max_message_bytes:
        raise FrameError(f"frame of {length} bytes exceeds max_message_bytes")
    payload = _read_exact(sock, length)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("frame crc mismatch (corrupt payload)")
    return msg_type, payload, FRAME_HEADER.size + length


def write_frame(sock: socket.socket, msg_type: int, payload) -> int:
    """Write one frame; returns the bytes put on the wire."""
    payload = bytes(payload)
    header = FRAME_HEADER.pack(FRAME_MAGIC, msg_type, len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
    try:
        sock.sendall(header)
        sock.sendall(payload)
    except socket.timeout as exc:
        raise NetTimeoutError("write deadline fired") from exc
    except OSError as exc:
        raise FrameError(f"connection lost while writing: {exc}") from exc
    return len(header) + len(payload)


def _parse_peers(spec: str) -> list:
    peers = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(f"peer {part!r} is not host:port")
        try:
            peers.append((host, int(port)))
        except ValueError as exc:
            raise ConfigurationError(f"peer {part!r} has a non-numeric port") from exc
    if not peers:
        raise ConfigurationError("no peers in tcp transport spec")
    return peers


# ------------------------------------------------------------------- transport
class NetTransport(Transport):
    """Socket-backed segment shipping behind the :class:`Transport` seam.

    ``encode_shard`` produces either a ``("net", uid, blob, peer)`` payload —
    the ColumnBlockCodec bytes plus the round-robin-assigned peer — or the
    standard ``("pickle", uid, data)`` fallback for shards the codec cannot
    represent.  The worker-side :meth:`run_in_worker` performs the framed
    exchange; every network failure reruns that shard locally over the same
    block, so parity is unconditional.  Worker-side accounting rides back to
    the parent as a small meta dict (a fork's counters die with the fork) and
    is folded into :attr:`stats` by :meth:`decode_results`.
    """

    name = "tcp"

    def __init__(self, peers, config: NetConfig | None = None) -> None:
        super().__init__()
        self.peers = [(str(host), int(port)) for host, port in peers]
        if not self.peers:
            raise ConfigurationError("NetTransport needs at least one peer")
        self.config = config if config is not None else NetConfig()
        # repro-lint: disable=RL004 uid prefix only names wire messages/segments; never reaches results
        self._uid_prefix = f"{os.getpid()}-{os.urandom(3).hex()}"
        self._uid_counter = itertools.count()
        self._peer_counter = itertools.count()

    @classmethod
    def from_spec(cls, spec: str, config: NetConfig | None = None) -> "NetTransport":
        """Build from ``"tcp"`` (peers from ``$REPRO_NET_PEERS``) or
        ``"tcp://host:port[,host2:port2]"``."""
        if config is None:
            config = NetConfig.from_env()
        if spec == "tcp":
            raw = os.environ.get("REPRO_NET_PEERS", "")
            if not raw.strip():
                raise ConfigurationError(
                    "transport 'tcp' needs peers: set REPRO_NET_PEERS=host:port[,host:port] "
                    "or use an explicit tcp://host:port spec"
                )
            return cls(_parse_peers(raw), config)
        if spec.startswith("tcp://"):
            return cls(_parse_peers(spec[len("tcp://"):]), config)
        raise ConfigurationError(f"not a tcp transport spec: {spec!r}")

    # ------------------------------------------------------------- parent side
    def _next_uid(self) -> str:
        with self._lock:
            return f"{self._uid_prefix}-{next(self._uid_counter)}"

    def _pick_peer(self) -> tuple:
        with self._lock:
            return self.peers[next(self._peer_counter) % len(self.peers)]

    def _fallback(self, reason: str) -> None:
        with self._lock:
            self.stats.pickle_fallbacks += 1
            self.stats.last_fallback_reason = reason

    def encode_shard(self, items: list) -> tuple:
        uid = self._next_uid()
        with self._lock:
            self.stats.shards += 1
        blob = None
        reason = ""
        if all(isinstance(item, Table) for item in items):
            try:
                blob = ColumnBlockCodec.encode_tables(items)
            except UnsupportedPayloadError as exc:
                reason = str(exc)
        else:
            reason = "shard items are not tables"
        if blob is not None and len(blob) > self.config.max_message_bytes:
            reason = f"encoded shard ({len(blob)} bytes) exceeds max_message_bytes"
            blob = None
        if blob is None:
            self._fallback(reason)
            payload = ("pickle", uid, pickle.dumps(items, _PICKLE_PROTOCOL))
        else:
            payload = ("net", uid, bytes(blob), self._pick_peer())
        self._count_shipped(payload)
        return payload

    def decode_results(self, payload: tuple) -> list:
        self._count_shipped(payload[:2])
        kind, data, meta = payload
        with self._lock:
            stats = self.stats
            stats.remote_shards += meta.get("remote", 0)
            stats.local_fallbacks += meta.get("local_fallback", 0)
            stats.net_bytes_out += meta.get("bytes_out", 0)
            stats.net_bytes_in += meta.get("bytes_in", 0)
            stats.reconnects += meta.get("reconnects", 0)
            if meta.get("reason"):
                stats.last_fallback_reason = meta["reason"]
            if kind == "pickle" and meta.get("remote"):
                # The peer ran the shard but had to pickle the reply.
                stats.result_pickle_fallbacks += 1
        if kind == "net":
            return PredictionBlockCodec.decode_predictions(memoryview(data))
        if kind != "pickle":  # pragma: no cover - worker/parent version skew
            raise ServingError(f"unknown result payload kind {kind!r}")
        return pickle.loads(data)

    def release(self, payload: tuple) -> None:
        # Payload bytes live inside the tuple; nothing named to unlink, which
        # is exactly why a killed peer cannot leak a segment.
        pass

    # ------------------------------------------------------------- worker side
    def open_shard(self, payload: tuple):
        kind, _, data, *_rest = payload
        if kind == "pickle":
            return pickle.loads(data), lambda: None
        block = ColumnBlockCodec.decode(memoryview(data))
        tables = [Table.from_block(block, index) for index in range(block.num_tables)]
        return tables, block.close

    def encode_results(self, results: list, payload: tuple) -> tuple:
        try:
            blob = PredictionBlockCodec.encode_predictions(results)
        except UnsupportedPayloadError:
            return ("pickle", pickle.dumps(results, _PICKLE_PROTOCOL))
        if len(blob) > self.config.max_message_bytes:
            return ("pickle", pickle.dumps(results, _PICKLE_PROTOCOL))
        return ("net", bytes(blob))

    def _connect(self, peer: tuple, meta: dict) -> socket.socket:
        config = self.config
        delay = config.backoff_base
        last_error: Exception | None = None
        for attempt in range(config.connect_retries + 1):
            if attempt:
                meta["reconnects"] += 1
                time.sleep(min(delay, config.backoff_max))
                delay *= 2
            try:
                sock = socket.create_connection(peer, timeout=config.connect_timeout)
                sock.settimeout(config.io_timeout)
                return sock
            except OSError as exc:
                last_error = exc
        raise PeerUnavailableError(
            f"peer {peer[0]}:{peer[1]} unreachable after "
            f"{config.connect_retries + 1} attempts: {last_error}"
        )

    def _exchange(self, peer: tuple, blob: bytes, meta: dict):
        """One connection, one shard: frame out, reply in, always closed."""
        sock = self._connect(peer, meta)
        try:
            meta["bytes_out"] += write_frame(sock, MSG_SHARD, blob)
            reply = read_frame(sock, self.config.max_message_bytes)
            msg_type, payload, frame_bytes = reply
            meta["bytes_in"] += frame_bytes
            return msg_type, payload
        finally:
            sock.close()

    def run_in_worker(self, fn, payload: tuple) -> tuple:
        meta = {
            "remote": 0,
            "local_fallback": 0,
            "reason": "",
            "bytes_out": 0,
            "bytes_in": 0,
            "reconnects": 0,
        }
        if payload[0] == "net":
            _, _, blob, peer = payload
            try:
                msg_type, reply = self._exchange(peer, blob, meta)
                if msg_type == MSG_RESULT:
                    meta["remote"] = 1
                    return ("net", reply, meta)
                if msg_type == MSG_RESULT_PICKLE:
                    meta["remote"] = 1
                    return ("pickle", reply, meta)
                if msg_type == MSG_ERROR:
                    # The peer's shard function raised.  Rerun locally: a
                    # deterministic error propagates with a real traceback,
                    # and parity holds if the remote failure was environmental.
                    meta["reason"] = "remote shard error: " + reply.decode("utf-8", "replace")
                else:  # pragma: no cover - server/client version skew
                    meta["reason"] = f"unexpected reply type {msg_type}"
            except NetError as exc:
                meta["reason"] = f"{type(exc).__name__}: {exc}"
            meta["local_fallback"] = 1
        return super().run_in_worker(fn, payload) + (meta,)


# ---------------------------------------------------------------------- server
class BlockWorkerServer:
    """A remote annotation worker speaking the framed block protocol.

    Each received shard lands in an **anonymous mmap** and is decoded in
    place — :meth:`Table.from_block` attaches the columnar-kernel views over
    the received buffer exactly as multiprocess workers attach them over a
    local shm segment, so the remote cascade is the same code on the same
    bytes.  A shard-function error is reported as ``MSG_ERROR`` (the server
    survives); a torn or corrupt frame closes only that connection.

    Thread-per-connection; :meth:`stop` closes the listener and every live
    connection, so no reader thread can outlive the server.
    """

    def __init__(self, shard_fn, host: str = "127.0.0.1", port: int = 0,
                 config: NetConfig | None = None) -> None:
        self.shard_fn = shard_fn
        self.config = config if config is not None else NetConfig()
        self._requested = (host, port)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._threads: list = []
        self._conns: set = set()
        self._lock = threading.Lock()
        self._running = False
        self.stats = {
            "connections": 0,
            "shards_served": 0,
            "fn_errors": 0,
            "frame_errors": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }

    @classmethod
    def for_typer(cls, typer, **kwargs) -> "BlockWorkerServer":
        """Serve a :class:`SigmaTyper`'s global cascade — the same bound
        ``annotate_many`` that ``annotate_corpus`` dispatches to local
        workers, so remote results are bit-identical by construction."""
        return cls(typer.global_model.pipeline.annotate_many, **kwargs)

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple:
        if self._listener is None:
            raise ServingError("server not started")
        return self._listener.getsockname()[:2]

    @property
    def spec(self) -> str:
        """The ``tcp://host:port`` string selecting this server."""
        host, port = self.address
        return f"tcp://{host}:{port}"

    def open_connections(self) -> int:
        with self._lock:
            return len(self._conns)

    def wait_idle(self, timeout: float = 5.0) -> bool:
        """Wait until no connection is open (a client close is observed by
        the connection thread a beat after the client returns); True when
        idle, False on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.open_connections() == 0:
                return True
            time.sleep(0.01)
        return self.open_connections() == 0

    def start(self) -> "BlockWorkerServer":
        if self._running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._requested)
        listener.listen(64)
        # A closed listener does not wake a thread already blocked in
        # accept(); a short accept timeout lets the loop observe shutdown.
        listener.settimeout(0.25)
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="block-worker-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()  # unblocks accept()
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        with self._lock:
            self._conns.clear()

    def __enter__(self) -> "BlockWorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ serving
    def _accept_loop(self) -> None:
        listener = self._listener
        while self._running and listener is not None:
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed by stop()
                break
            conn.settimeout(self.config.io_timeout)
            with self._lock:
                if not self._running:
                    conn.close()
                    break
                self._conns.add(conn)
                self.stats["connections"] += 1
                self._threads = [t for t in self._threads if t.is_alive()]
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name="block-worker-conn", daemon=True,
                )
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        # io_timeout (set at accept) bounds every read: a torn frame (or a
        # client that connected and went silent) can never pin this thread —
        # clients use one connection per shard, so there are no long idle
        # gaps to honor.
        try:
            while self._running:
                try:
                    frame = read_frame(conn, self.config.max_message_bytes, eof_ok=True)
                except NetError:
                    with self._lock:
                        self.stats["frame_errors"] += 1
                    return
                if frame is None:  # client done
                    return
                msg_type, payload, frame_bytes = frame
                with self._lock:
                    self.stats["bytes_in"] += frame_bytes
                if msg_type != MSG_SHARD:
                    reply_type, reply = MSG_ERROR, f"unexpected message type {msg_type}".encode()
                else:
                    reply_type, reply = self._run_shard(payload)
                try:
                    sent = write_frame(conn, reply_type, reply)
                except NetError:
                    with self._lock:
                        self.stats["frame_errors"] += 1
                    return
                with self._lock:
                    self.stats["bytes_out"] += sent
        finally:
            with self._lock:
                self._conns.discard(conn)
            conn.close()

    def _run_shard(self, payload: bytes):
        # Anonymous mmap: same buffer discipline as a shm segment (the
        # kernels view it in place), nothing named, freed on close.
        buf = mmap.mmap(-1, max(len(payload), 1))
        try:
            buf[: len(payload)] = payload
            block = ColumnBlockCodec.decode(memoryview(buf)[: len(payload)])
            try:
                tables = [Table.from_block(block, index) for index in range(block.num_tables)]
                results = list(self.shard_fn(tables))
                # Encode before closing the block: results may alias the
                # view-backed tables (same contract as Transport.run_in_worker).
                try:
                    blob = PredictionBlockCodec.encode_predictions(results)
                    if len(blob) > self.config.max_message_bytes:
                        raise UnsupportedPayloadError("encoded results exceed max_message_bytes")
                    reply = (MSG_RESULT, bytes(blob))
                except UnsupportedPayloadError:
                    reply = (MSG_RESULT_PICKLE, pickle.dumps(results, _PICKLE_PROTOCOL))
            finally:
                block.close()
            with self._lock:
                self.stats["shards_served"] += 1
            return reply
        except Exception as exc:  # shard fn / decode error: report, survive
            with self._lock:
                self.stats["fn_errors"] += 1
            return (MSG_ERROR, f"{type(exc).__name__}: {exc}".encode("utf-8", "replace"))
        finally:
            buf.close()
