"""Typed serving configuration: frozen spec dataclasses over the spec strings.

The serving layer grew up on **spec strings** — ``"multiprocess:8+shm"``,
``"tcp://worker-a:7071"`` — because they travel well (CLI flags, env vars,
benchmark JSON).  They stay first-class.  What this module adds is the typed
form underneath: a small family of frozen dataclasses that parse from and
print back to exactly those strings, so programmatic callers stop growing
keyword sprawl and string-assembling code, and the two forms can never
drift (``str(ServingSpec.parse(s)) == s`` for every canonical spec string —
pinned by ``tests/test_pool.py``).

Grammar (canonical forms; every documented spec string in
docs/SERVING.md round-trips)::

    serving   := [ "pool:" N "@" ] backend | "pool:" N
    backend   := name [ ":" workers ] [ "+" transport ]
    name      := "serial" | "threaded" | "multiprocess"
    transport := "pickle" | "shm" | "tcp" [ "://" host ":" port { "," host ":" port } ]

Every ``resolve_*`` entry point and serving constructor accepts either form:
:func:`repro.serving.backends.resolve_backend` takes a
:class:`BackendSpec` (or :class:`ServingSpec`),
:func:`repro.serving.transport.resolve_transport` a :class:`TransportSpec`,
:class:`~repro.serving.frontend.AnnotationFrontend` a :class:`FrontendSpec`,
and :class:`~repro.serving.pool.AnnotationPool` a :class:`PoolSpec` /
:class:`ServingSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.backends import ExecutionBackend
    from repro.serving.frontend import FrontendConfig
    from repro.serving.profile_store import ProfileStore
    from repro.serving.transport import Transport

__all__ = [
    "BackendSpec",
    "TransportSpec",
    "StoreSpec",
    "PoolSpec",
    "FrontendSpec",
    "ServingSpec",
]

_BACKEND_NAMES = ("serial", "threaded", "multiprocess")
_TRANSPORT_NAMES = ("pickle", "shm", "tcp")


def _parse_peers(text: str, spec: str) -> tuple[tuple[str, int], ...]:
    """``host:port[,host:port...]`` → peer tuples (strict: ports are ints)."""
    peers = []
    for item in text.split(","):
        host, sep, port = item.strip().rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"invalid peer {item!r} in transport spec {spec!r}; expected host:port"
            )
        try:
            peers.append((host, int(port)))
        except ValueError as exc:
            raise ConfigurationError(
                f"invalid peer port {port!r} in transport spec {spec!r}"
            ) from exc
    return tuple(peers)


@dataclass(frozen=True)
class TransportSpec:
    """A shard transport: ``pickle`` | ``shm`` | ``tcp[://host:port,...]``."""

    name: str = "pickle"
    #: ``(host, port)`` worker peers; only meaningful for the ``tcp``
    #: transport (empty = peers come from ``$REPRO_NET_PEERS``).
    peers: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.name not in _TRANSPORT_NAMES:
            raise ConfigurationError(
                f"unknown transport {self.name!r}; expected one of {list(_TRANSPORT_NAMES)}"
            )
        if self.peers and self.name != "tcp":
            raise ConfigurationError(
                f"transport {self.name!r} does not take peers (only 'tcp' does)"
            )

    @classmethod
    def parse(cls, spec: str) -> "TransportSpec":
        if spec.startswith("tcp://"):
            return cls(name="tcp", peers=_parse_peers(spec[len("tcp://") :], spec))
        return cls(name=spec)

    def __str__(self) -> str:
        if self.peers:
            return "tcp://" + ",".join(f"{host}:{port}" for host, port in self.peers)
        return self.name

    def resolve(self) -> "Transport":
        """Build the :class:`~repro.serving.transport.Transport` this names."""
        from repro.serving.transport import resolve_transport

        return resolve_transport(str(self))


@dataclass(frozen=True)
class BackendSpec:
    """An execution backend: ``name[:workers][+transport]``."""

    name: str = "serial"
    workers: int | None = None
    transport: TransportSpec | None = None

    def __post_init__(self) -> None:
        if self.name not in _BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown execution backend {self.name!r}; "
                f"expected one of {list(_BACKEND_NAMES)}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("backend workers must be at least 1")
        if self.transport is not None and self.name != "multiprocess":
            raise ConfigurationError(
                f"backend {self.name!r} names a shard transport, but only the "
                "multiprocess backend ships shards across a process boundary"
            )

    @classmethod
    def parse(cls, spec: str) -> "BackendSpec":
        base, _, transport_text = spec.partition("+")
        name, _, workers_text = base.partition(":")
        try:
            workers = int(workers_text) if workers_text else None
        except ValueError as exc:
            raise ConfigurationError(f"invalid worker count in backend spec {spec!r}") from exc
        transport = TransportSpec.parse(transport_text) if transport_text else None
        return cls(name=name, workers=workers, transport=transport)

    def __str__(self) -> str:
        text = self.name
        if self.workers is not None:
            text += f":{self.workers}"
        if self.transport is not None:
            text += f"+{self.transport}"
        return text

    def resolve(self) -> "ExecutionBackend":
        """Build the :class:`~repro.serving.backends.ExecutionBackend`."""
        from repro.serving.backends import resolve_backend

        return resolve_backend(str(self))


@dataclass(frozen=True)
class StoreSpec:
    """A profile store: in-memory LRU, or a persistent disk tier under it.

    ``directory=None`` builds a plain :class:`~repro.serving.profile_store.
    ProfileStore`; a directory builds a :class:`~repro.serving.profile_store.
    PersistentProfileStore` over it.  String forms: ``memory[:max_columns]``
    and ``disk:<directory>[:max_columns]``.
    """

    directory: str | None = None
    max_columns: int = 4096
    flush_interval: float = 1.0
    segment_max_bytes: int = 32 * 1024 * 1024
    compaction_dead_ratio: float = 0.5
    share_across_processes: bool = True

    @classmethod
    def parse(cls, spec: str) -> "StoreSpec":
        kind, _, rest = spec.partition(":")
        if kind == "memory":
            if not rest:
                return cls()
            try:
                return cls(max_columns=int(rest))
            except ValueError as exc:
                raise ConfigurationError(f"invalid store spec {spec!r}") from exc
        if kind == "disk" and rest:
            directory, _, max_text = rest.rpartition(":")
            if directory and max_text.isdigit():
                return cls(directory=directory, max_columns=int(max_text))
            return cls(directory=rest)
        raise ConfigurationError(
            f"invalid store spec {spec!r}; expected 'memory[:max]' or 'disk:<dir>[:max]'"
        )

    def __str__(self) -> str:
        suffix = f":{self.max_columns}" if self.max_columns != 4096 else ""
        if self.directory is None:
            return f"memory{suffix}"
        return f"disk:{self.directory}{suffix}"

    def build(self) -> "ProfileStore":
        """Build the store this spec names (persistent when on disk)."""
        from repro.serving.profile_store import PersistentProfileStore, ProfileStore

        if self.directory is None:
            return ProfileStore(max_columns=self.max_columns)
        return PersistentProfileStore(
            self.directory,
            max_columns=self.max_columns,
            flush_interval=self.flush_interval,
            segment_max_bytes=self.segment_max_bytes,
            compaction_dead_ratio=self.compaction_dead_ratio,
            share_across_processes=self.share_across_processes,
        )


@dataclass(frozen=True)
class PoolSpec:
    """A worker pool: N annotation processes behind one warm-routing dispatcher.

    String form: ``pool:N`` (everything beyond the worker count is
    kwargs-only — routing knobs do not travel in spec strings).
    """

    workers: int = 2
    #: ``Column.content_hash()`` hex-prefix length the warmth index keys on.
    prefix_len: int = 8
    #: Queue depth above which the warm worker is escaped for the least
    #: loaded one (the load-balance hatch).
    queue_depth_bound: int = 4
    #: Pre-load each worker's LRU from the shared segment directory at start.
    prewarm: bool = True
    #: Seconds between liveness pings (also bounds dead-worker detection).
    heartbeat_interval: float = 0.25
    #: ``"warm"`` (warmth/rendezvous affinity) or ``"round-robin"`` (blind
    #: baseline — what E17 compares against).
    routing: str = "warm"
    #: Restart a dead worker in place (and re-dispatch its in-flight work).
    restart: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("pool workers must be at least 1")
        if self.prefix_len < 1 or self.prefix_len > 32:
            raise ConfigurationError("prefix_len must be in [1, 32]")
        if self.queue_depth_bound < 1:
            raise ConfigurationError("queue_depth_bound must be at least 1")
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if self.routing not in ("warm", "round-robin"):
            raise ConfigurationError(
                f"unknown routing {self.routing!r}; expected 'warm' or 'round-robin'"
            )

    @classmethod
    def parse(cls, spec: str) -> "PoolSpec":
        name, _, workers_text = spec.partition(":")
        if name != "pool":
            raise ConfigurationError(f"invalid pool spec {spec!r}; expected 'pool[:N]'")
        if not workers_text:
            return cls()
        try:
            return cls(workers=int(workers_text))
        except ValueError as exc:
            raise ConfigurationError(f"invalid worker count in pool spec {spec!r}") from exc

    def __str__(self) -> str:
        return f"pool:{self.workers}"


@dataclass(frozen=True)
class FrontendSpec:
    """Frozen twin of :class:`~repro.serving.frontend.FrontendConfig`.

    Kwargs-only (no string form): the HTTP edge's knobs never travelled in
    spec strings.  :meth:`to_config` builds the mutable, validated config the
    frontend consumes; :class:`~repro.serving.frontend.AnnotationFrontend`
    accepts either form directly.
    """

    host: str = "127.0.0.1"
    port: int = 0
    tenant_rate: float | None = 50.0
    tenant_burst: float = 20.0
    max_pending_per_tenant: int = 64
    max_pending_total: int = 512
    default_deadline: float | None = 2.0
    drain_timeout: float = 10.0
    request_timeout: float = 30.0
    keepalive_timeout: float = 15.0
    max_body_bytes: int = 8 * 1024 * 1024

    def to_config(self) -> "FrontendConfig":
        from repro.serving.frontend import FrontendConfig

        return FrontendConfig(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        ).validate()


@dataclass(frozen=True)
class ServingSpec:
    """The composite: backend + optional pool/store/frontend sections.

    :meth:`parse` accepts every backend spec string the serving layer ever
    documented, plus the pool forms (``pool:4``, ``pool:4@multiprocess:2+shm``),
    and ``str()`` reproduces the input exactly — the round-trip contract the
    PR 10 acceptance gate pins.
    """

    backend: BackendSpec = field(default_factory=BackendSpec)
    pool: PoolSpec | None = None
    store: StoreSpec | None = None
    frontend: FrontendSpec | None = None

    @classmethod
    def parse(cls, spec: str) -> "ServingSpec":
        text = spec.strip()
        if not text:
            raise ConfigurationError("empty serving spec")
        if text.startswith("pool"):
            pool_text, sep, backend_text = text.partition("@")
            pool = PoolSpec.parse(pool_text)
            if sep and not backend_text:
                raise ConfigurationError(f"dangling '@' in serving spec {spec!r}")
            backend = BackendSpec.parse(backend_text) if backend_text else BackendSpec()
            return cls(backend=backend, pool=pool)
        return cls(backend=BackendSpec.parse(text))

    def __str__(self) -> str:
        if self.pool is None:
            return str(self.backend)
        if self.backend == BackendSpec():
            return str(self.pool)
        return f"{self.pool}@{self.backend}"

    def with_store(self, store: StoreSpec) -> "ServingSpec":
        return replace(self, store=store)

    def resolve_backend(self) -> "ExecutionBackend":
        return self.backend.resolve()
