"""Zero-copy shard transport for the multiprocess execution backend.

The ``multiprocess`` backend ships every shard — whole :class:`Table` objects
on the way out, whole :class:`TablePrediction` lists on the way back — through
``pickle``.  For small corpora that serialization dominates the run: the
workers spend more time unpickling tables than annotating them.  This module
replaces the pickle round-trip with POSIX shared memory:

* :class:`ColumnBlockCodec` flattens a shard's tables into one contiguous
  block of typed buffers — per-column value bytes plus ``u64`` offsets, a
  per-value tag array, framed headers, and table/column boundary records —
  written once into a ``multiprocessing.shared_memory`` segment.  Workers
  attach the segment and rebuild the tables through the zero-copy
  :meth:`repro.core.table.Table.from_block` view path: no pickling, no
  per-value copies until a value is actually read.
* :class:`PredictionBlockCodec` returns predictions as fixed-width records
  (string-table references + ``f64`` confidences) in a worker-created
  segment, so the result leg avoids pickle as well.
* :class:`Transport` is the seam the backend calls through.
  :class:`PickleTransport` is the explicit baseline (and the accounting
  reference for ``bytes_shipped``); :class:`ShmTransport` is the
  shared-memory path with graceful **pickle fallback** for shards that are
  not lists of tables, contain non-scalar cell values, or exceed
  ``max_segment_bytes``.

Spec strings select a transport per backend: ``"multiprocess:4+shm"`` /
``"multiprocess+pickle"`` (see :func:`repro.serving.backends.resolve_backend`).

Lifecycle contract — **no leaked ``/dev/shm`` segments, ever**:

* shard segments are created by the parent and unlinked by the parent in a
  ``finally`` block after the pool round-trip, success or not;
* result segments are created by workers under a *deterministic* name derived
  from the shard id, so the parent can unlink them even when the worker
  crashed mid-shard and never reported the segment back;
* workers close their attachments before returning, and every unlink
  tolerates already-removed segments.

The E13 benchmark (``benchmarks/test_bench_shard_transport.py``) pins the
bytes accounting, parity, and the no-leak property; the CI transport smoke
job additionally scans ``/dev/shm`` after the run.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
import threading
import weakref
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable

# Scalar/text cell tags are canonical in repro.core.colblock — the columnar
# kernels interpret the same buffers this codec writes, so sharing the
# constants means the wire format and the kernels can never drift apart.
from repro.core.colblock import (
    TAG_BIGINT as _T_BIGINT,
    TAG_F64 as _T_F64,
    TAG_FALSE as _T_FALSE,
    TAG_I64 as _T_I64,
    TAG_NONE as _T_NONE,
    TAG_STR as _T_STR,
    TAG_TRUE as _T_TRUE,
    view_from_block_buffers,
)
from repro.core.errors import ConfigurationError, ServingError
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.table import Table

__all__ = [
    "Transport",
    "PickleTransport",
    "ShmTransport",
    "TransportStats",
    "ColumnBlockCodec",
    "ColumnBlock",
    "PredictionBlockCodec",
    "UnsupportedPayloadError",
    "resolve_transport",
    "transport_stats",
    "reset_transport_stats",
    "SHARD_SEGMENT_PREFIX",
    "RESULT_SEGMENT_PREFIX",
]

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Shared-memory segment name prefixes.  Deterministic and greppable: the CI
#: transport smoke job fails when any name with these prefixes survives a run.
SHARD_SEGMENT_PREFIX = "sigshard-"
RESULT_SEGMENT_PREFIX = "sigres-"


class UnsupportedPayloadError(ServingError):
    """A payload the block codecs cannot represent (handled by fallback)."""


# --------------------------------------------------------------------- codecs
#
# Value encoding shared by cell values and metadata: one tag byte selecting a
# fixed-width or length-framed representation.  Only exact builtin scalar
# types round-trip — a subclass (e.g. ``numpy.float64``) must not silently
# decode to its base type, because ``Column.content_hash()`` keys on the
# exact type name.  Anything else raises ``UnsupportedPayloadError`` and the
# transport falls back to pickle for the whole shard.

# _T_NONE.._T_FALSE are imported from repro.core.colblock above.
# _T_LIST/_T_DICT only ever appear in metadata payloads (cell values holding
# containers are rejected into the pickle fallback), so they stay local.
_T_LIST = 7
_T_DICT = 8

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_BLOCK_MAGIC = b"SGB1"
_RESULT_MAGIC = b"SGR1"

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class _Writer:
    """Append-only binary writer over a ``bytearray``."""

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data = bytearray()

    def raw(self, payload: bytes) -> None:
        self.data += payload

    def u8(self, value: int) -> None:
        self.data += _U8.pack(value)

    def u16(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise UnsupportedPayloadError(f"value {value} does not fit in u16")
        self.data += _U16.pack(value)

    def u32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise UnsupportedPayloadError(f"value {value} does not fit in u32")
        self.data += _U32.pack(value)

    def u64(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
            raise UnsupportedPayloadError(f"value {value} does not fit in u64")
        self.data += _U64.pack(value)

    def f64(self, value: float) -> None:
        self.data += _F64.pack(value)

    def frame(self, payload: bytes) -> None:
        self.u32(len(payload))
        self.data += payload

    def text(self, value: str) -> None:
        self.frame(value.encode("utf-8", "surrogatepass"))

    def tagged(self, value: object) -> None:
        """Encode one scalar (or flat list/dict of scalars) with a type tag."""
        if value is None:
            self.u8(_T_NONE)
            return
        value_type = type(value)
        if value_type is bool:
            self.u8(_T_TRUE if value else _T_FALSE)
        elif value_type is str:
            self.u8(_T_STR)
            self.text(value)
        elif value_type is int:
            if _I64_MIN <= value <= _I64_MAX:
                self.u8(_T_I64)
                self.data += _I64.pack(value)
            else:
                self.u8(_T_BIGINT)
                self.frame(str(value).encode("ascii"))
        elif value_type is float:
            self.u8(_T_F64)
            self.data += _F64.pack(value)
        elif value_type is list:
            self.u8(_T_LIST)
            self.u32(len(value))
            for item in value:
                self.tagged(item)
        elif value_type is dict:
            self.u8(_T_DICT)
            self.u32(len(value))
            for key, item in value.items():
                if type(key) is not str:
                    raise UnsupportedPayloadError(
                        f"unsupported mapping key type {type(key).__name__}"
                    )
                self.text(key)
                self.tagged(item)
        else:
            raise UnsupportedPayloadError(
                f"unsupported value type {value_type.__name__}"
            )


class _Reader:
    """Sequential binary reader over any buffer."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf, pos: int = 0) -> None:
        self.buf = buf
        self.pos = pos

    def u8(self) -> int:
        (value,) = _U8.unpack_from(self.buf, self.pos)
        self.pos += 1
        return value

    def u16(self) -> int:
        (value,) = _U16.unpack_from(self.buf, self.pos)
        self.pos += 2
        return value

    def u32(self) -> int:
        (value,) = _U32.unpack_from(self.buf, self.pos)
        self.pos += 4
        return value

    def u64(self) -> int:
        (value,) = _U64.unpack_from(self.buf, self.pos)
        self.pos += 8
        return value

    def i64(self) -> int:
        (value,) = _I64.unpack_from(self.buf, self.pos)
        self.pos += 8
        return value

    def f64(self) -> float:
        (value,) = _F64.unpack_from(self.buf, self.pos)
        self.pos += 8
        return value

    def frame(self) -> bytes:
        length = self.u32()
        payload = bytes(self.buf[self.pos : self.pos + length])
        self.pos += length
        return payload

    def text(self) -> str:
        return self.frame().decode("utf-8", "surrogatepass")

    def tagged(self) -> object:
        tag = self.u8()
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_STR:
            return self.text()
        if tag == _T_I64:
            return self.i64()
        if tag == _T_BIGINT:
            return int(self.frame().decode("ascii"))
        if tag == _T_F64:
            return self.f64()
        if tag == _T_LIST:
            return [self.tagged() for _ in range(self.u32())]
        if tag == _T_DICT:
            return {self.text(): self.tagged() for _ in range(self.u32())}
        raise ServingError(f"corrupt column block: unknown value tag {tag}")


class BlockValues(Sequence):
    """Lazy, immutable view of one column's values inside a column block.

    Decodes values out of the shared buffer on access (and memoizes the full
    list on first iteration, so repeated scans pay decode once).  The view
    raises :class:`ServingError` after :meth:`ColumnBlock.close` — a column
    must never outlive the segment backing it.
    """

    __slots__ = (
        "_block",
        "_count",
        "_tags_off",
        "_offsets_off",
        "_blob_off",
        "_cache",
        "_kview",
    )

    def __init__(self, block: "ColumnBlock", count: int, tags_off: int, offsets_off: int, blob_off: int) -> None:
        self._block = block
        self._count = count
        self._tags_off = tags_off
        self._offsets_off = offsets_off
        self._blob_off = blob_off
        self._cache: list | None = None
        self._kview = None

    def __len__(self) -> int:
        return self._count

    def kernel_view(self):
        """Columnar kernel view (``repro.core.colblock.ColumnView``) of this column.

        The duck-typed hook ``Column._kernel_view`` picks up: multiprocess
        workers rebuilding a shard via ``Table.from_block`` profile straight
        off the received segment.  The view *copies* the three buffers out of
        the block (tags, offsets, blob), so it stays valid — and keeps no
        export on the segment — after ``ColumnBlock.close``.
        """
        if self._kview is None:
            self._kview = view_from_block_buffers(
                self._block.buffer(),
                self._count,
                self._tags_off,
                self._offsets_off,
                self._blob_off,
            )
        return self._kview

    def _decode(self, index: int) -> object:
        buf = self._block.buffer()
        tag = buf[self._tags_off + index]
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        start, end = struct.unpack_from("<2Q", buf, self._offsets_off + 8 * index)
        begin = self._blob_off + start
        stop = self._blob_off + end
        if tag == _T_STR:
            return str(buf[begin:stop], "utf-8", "surrogatepass")
        if tag == _T_I64:
            return _I64.unpack_from(buf, begin)[0]
        if tag == _T_BIGINT:
            return int(bytes(buf[begin:stop]).decode("ascii"))
        if tag == _T_F64:
            return _F64.unpack_from(buf, begin)[0]
        raise ServingError(f"corrupt column block: unknown cell tag {tag}")

    def _materialize(self) -> list:
        if self._cache is None:
            self._cache = [self._decode(i) for i in range(self._count)]
        return self._cache

    def __getitem__(self, index):
        if self._cache is not None:
            return self._cache[index]
        if isinstance(index, slice):
            return [self._decode(i) for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        return self._decode(index)

    def __iter__(self):
        return iter(self._materialize())

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, BlockValues)):
            return list(self) == list(other)
        return NotImplemented

    def __reduce__(self):
        # A view must never cross a process boundary still pointing at a
        # segment: pickling materializes it into a plain list (raising
        # loudly, not silently, if the block was already closed).
        return (list, (self._materialize(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockValues({self._count} values)"


@dataclass(frozen=True)
class _ColumnEntry:
    """Boundary record for one column inside a :class:`ColumnBlock`."""

    name: str
    semantic_type: str | None
    metadata: dict
    values: BlockValues


@dataclass(frozen=True)
class _TableEntry:
    """Boundary record for one table inside a :class:`ColumnBlock`."""

    name: str
    metadata: dict
    columns: tuple


class ColumnBlock:
    """A decoded shard of tables, viewed in place over a shared buffer.

    The accessor trio (:meth:`table_name`, :meth:`table_metadata`,
    :meth:`table_columns`) is the duck-typed protocol
    :meth:`repro.core.table.Table.from_block` builds zero-copy tables from.
    """

    def __init__(self, buf, entries: list) -> None:
        self._buf = buf
        self._entries = entries
        self._closed = False

    @property
    def num_tables(self) -> int:
        return len(self._entries)

    def buffer(self):
        """The backing buffer; raises once the block was closed."""
        if self._closed:
            raise ServingError("column block used after close (segment detached)")
        return self._buf

    def table_name(self, index: int) -> str:
        return self._entries[index].name

    def table_metadata(self, index: int) -> dict:
        return self._entries[index].metadata

    def table_columns(self, index: int) -> tuple:
        """``(name, semantic_type, metadata, values)`` per column, in order."""
        return tuple(
            (c.name, c.semantic_type, c.metadata, c.values)
            for c in self._entries[index].columns
        )

    def close(self) -> None:
        """Detach from the buffer; any later value access raises."""
        self._closed = True
        self._buf = None


class ColumnBlockCodec:
    """Flatten tables into contiguous typed buffers (and back).

    Layout (little-endian)::

        magic "SGB1" | u32 n_tables
        per table:   framed name | tagged-dict metadata | u32 n_columns
        per column:  framed name | tagged semantic_type | tagged-dict metadata
                     u64 n_values | n tag bytes | (n+1) u64 offsets
                     u64 blob_len | value blob

    Cell values are tagged scalars; variable-width payloads live in the
    column's blob addressed by the offsets array, so a reader never scans —
    it slices.
    """

    @staticmethod
    def encode_tables(tables: Sequence[Table]) -> bytearray:
        writer = _Writer()
        writer.raw(_BLOCK_MAGIC)
        writer.u32(len(tables))
        for table in tables:
            writer.text(table.name)
            writer.tagged(dict(table.metadata))
            writer.u32(len(table.columns))
            for column in table.columns:
                writer.text(column.name)
                writer.tagged(column.semantic_type)
                writer.tagged(dict(column.metadata))
                ColumnBlockCodec._encode_values(writer, column.values)
        return writer.data

    @staticmethod
    def _encode_values(writer: _Writer, values: Sequence[object]) -> None:
        count = len(values)
        tags = bytearray(count)
        offsets = bytearray()
        blob = bytearray()
        offsets += _U64.pack(0)
        for index, value in enumerate(values):
            if value is None:
                tags[index] = _T_NONE
            else:
                value_type = type(value)
                if value_type is bool:
                    tags[index] = _T_TRUE if value else _T_FALSE
                elif value_type is str:
                    tags[index] = _T_STR
                    blob += value.encode("utf-8", "surrogatepass")
                elif value_type is int:
                    if _I64_MIN <= value <= _I64_MAX:
                        tags[index] = _T_I64
                        blob += _I64.pack(value)
                    else:
                        tags[index] = _T_BIGINT
                        blob += str(value).encode("ascii")
                elif value_type is float:
                    tags[index] = _T_F64
                    blob += _F64.pack(value)
                else:
                    raise UnsupportedPayloadError(
                        f"unsupported cell value type {value_type.__name__}"
                    )
            offsets += _U64.pack(len(blob))
        writer.u64(count)
        writer.raw(bytes(tags))
        writer.raw(bytes(offsets))
        writer.u64(len(blob))
        writer.raw(bytes(blob))

    @staticmethod
    def decode(buf) -> ColumnBlock:
        """Parse the boundary structure; values stay lazy views over *buf*."""
        if bytes(buf[: len(_BLOCK_MAGIC)]) != _BLOCK_MAGIC:
            raise ServingError("corrupt column block: bad magic")
        reader = _Reader(buf, len(_BLOCK_MAGIC))
        block = ColumnBlock(buf, [])
        entries = []
        for _ in range(reader.u32()):
            table_name = reader.text()
            table_metadata = reader.tagged()
            columns = []
            for _ in range(reader.u32()):
                column_name = reader.text()
                semantic_type = reader.tagged()
                metadata = reader.tagged()
                count = reader.u64()
                tags_off = reader.pos
                reader.pos += count
                offsets_off = reader.pos
                reader.pos += 8 * (count + 1)
                blob_len = reader.u64()
                blob_off = reader.pos
                reader.pos += blob_len
                columns.append(
                    _ColumnEntry(
                        name=column_name,
                        semantic_type=semantic_type,
                        metadata=metadata,
                        values=BlockValues(block, count, tags_off, offsets_off, blob_off),
                    )
                )
            entries.append(_TableEntry(name=table_name, metadata=table_metadata, columns=tuple(columns)))
        block._entries.extend(entries)
        return block


class PredictionBlockCodec:
    """Predictions as fixed-width records over an interned string table.

    Layout::

        magic "SGR1" | u32 n_strings | framed strings...
        u32 n_tables
        per table:  u32 name_ref | u32 n_columns | u32 n_trace | u32 n_seconds
                    trace records   (u32 step_ref, u64 count)
                    seconds records (u32 step_ref, f64 seconds)
        per column: u32 index | u32 name_ref | u32 source_ref | u8 abstained
                    u16 n_scores | u16 n_step_lists
                    score records (u32 type_ref, f64 confidence)
                    step lists    (u32 step_ref, u16 n, n score records)

    Every record after the string table is fixed width, so the parent decodes
    with pure ``struct`` slicing; confidences are ``f64`` and therefore
    bit-identical to the worker's floats.
    """

    @staticmethod
    def encode_predictions(predictions: Sequence[TablePrediction]) -> bytearray:
        strings: dict[str, int] = {}

        def ref(text: str) -> int:
            if type(text) is not str:
                raise UnsupportedPayloadError(
                    f"unsupported prediction string {type(text).__name__}"
                )
            index = strings.get(text)
            if index is None:
                index = strings[text] = len(strings)
            return index

        body = _Writer()
        body.u32(len(predictions))
        for prediction in predictions:
            if type(prediction) is not TablePrediction:
                raise UnsupportedPayloadError(
                    f"unsupported result type {type(prediction).__name__}"
                )
            body.u32(ref(prediction.table_name))
            body.u32(len(prediction.columns))
            body.u32(len(prediction.step_trace))
            body.u32(len(prediction.step_seconds))
            for step, count in prediction.step_trace.items():
                body.u32(ref(step))
                body.u64(count)
            for step, seconds in prediction.step_seconds.items():
                body.u32(ref(step))
                body.f64(seconds)
            for column in prediction.columns:
                if type(column) is not ColumnPrediction:
                    raise UnsupportedPayloadError("unsupported column prediction type")
                body.u32(column.column_index)
                body.u32(ref(column.column_name))
                body.u32(ref(column.source_step))
                body.u8(1 if column.abstained else 0)
                body.u16(len(column.scores))
                body.u16(len(column.step_scores))
                for score in column.scores:
                    body.u32(ref(score.type_name))
                    body.f64(score.confidence)
                for step, scores in column.step_scores.items():
                    body.u32(ref(step))
                    body.u16(len(scores))
                    for score in scores:
                        body.u32(ref(score.type_name))
                        body.f64(score.confidence)

        writer = _Writer()
        writer.raw(_RESULT_MAGIC)
        writer.u32(len(strings))
        for text in strings:
            writer.text(text)
        writer.raw(bytes(body.data))
        return writer.data

    @staticmethod
    def decode_predictions(buf) -> list:
        if bytes(buf[: len(_RESULT_MAGIC)]) != _RESULT_MAGIC:
            raise ServingError("corrupt prediction block: bad magic")
        reader = _Reader(buf, len(_RESULT_MAGIC))
        strings = [reader.text() for _ in range(reader.u32())]
        predictions = []
        for _ in range(reader.u32()):
            table_name = strings[reader.u32()]
            n_columns = reader.u32()
            n_trace = reader.u32()
            n_seconds = reader.u32()
            step_trace = {strings[reader.u32()]: reader.u64() for _ in range(n_trace)}
            step_seconds = {strings[reader.u32()]: reader.f64() for _ in range(n_seconds)}
            columns = []
            for _ in range(n_columns):
                column_index = reader.u32()
                column_name = strings[reader.u32()]
                source_step = strings[reader.u32()]
                abstained = bool(reader.u8())
                n_scores = reader.u16()
                n_step_lists = reader.u16()
                scores = []
                for _ in range(n_scores):
                    type_ref = reader.u32()
                    confidence = reader.f64()
                    scores.append(TypeScore(confidence=confidence, type_name=strings[type_ref]))
                step_scores: dict[str, list] = {}
                for _ in range(n_step_lists):
                    step = strings[reader.u32()]
                    step_scores[step] = []
                    for _ in range(reader.u16()):
                        type_ref = reader.u32()
                        confidence = reader.f64()
                        step_scores[step].append(
                            TypeScore(confidence=confidence, type_name=strings[type_ref])
                        )
                columns.append(
                    ColumnPrediction(
                        column_index=column_index,
                        column_name=column_name,
                        scores=scores,
                        source_step=source_step,
                        abstained=abstained,
                        step_scores=step_scores,
                    )
                )
            predictions.append(
                TablePrediction(
                    table_name=table_name,
                    columns=columns,
                    step_trace=step_trace,
                    step_seconds=step_seconds,
                )
            )
        return predictions


# ------------------------------------------------------------------ transports
@dataclass
class TransportStats:
    """Parent-side accounting for one transport instance.

    ``bytes_shipped`` counts the pickled bytes that actually crossed a
    process boundary (the shard payloads out plus the result payloads back) —
    for the shm transport that is just the tiny descriptors.  ``shm_bytes``
    counts the shared-memory bytes written instead; ``pickle_fallbacks`` /
    ``result_pickle_fallbacks`` count the outbound shards and inbound result
    legs the shm transport had to pickle after all (the two legs fall back
    independently), with the last reason kept for operators.
    """

    shards: int = 0
    bytes_shipped: int = 0
    shm_bytes: int = 0
    #: Outbound shards that had to be pickled after all.
    pickle_fallbacks: int = 0
    #: Result legs that came back pickled (oversized or non-prediction
    #: results) while the shard itself may still have ridden shared memory.
    result_pickle_fallbacks: int = 0
    last_fallback_reason: str = ""
    segments_created: int = 0
    segments_unlinked: int = 0
    #: Shards whose cascade actually ran on a remote peer (net transport).
    remote_shards: int = 0
    #: Shards that were meant for a peer but ran locally after a network
    #: failure (unreachable peer, torn/corrupt frame, deadline) — the net
    #: transport's per-shard graceful-degradation counter.
    local_fallbacks: int = 0
    #: Framed bytes that actually crossed a socket, per direction.
    net_bytes_out: int = 0
    net_bytes_in: int = 0
    #: Connection attempts beyond the first (bounded reconnect-with-backoff).
    reconnects: int = 0

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "bytes_shipped": self.bytes_shipped,
            "shm_bytes": self.shm_bytes,
            "pickle_fallbacks": self.pickle_fallbacks,
            "result_pickle_fallbacks": self.result_pickle_fallbacks,
            "last_fallback_reason": self.last_fallback_reason,
            "segments_created": self.segments_created,
            "segments_unlinked": self.segments_unlinked,
            "remote_shards": self.remote_shards,
            "local_fallbacks": self.local_fallbacks,
            "net_bytes_out": self.net_bytes_out,
            "net_bytes_in": self.net_bytes_in,
            "reconnects": self.reconnects,
        }


#: Process-wide stats registry.  Keyed by transport *uid* (one entry per
#: live instance), not by name: counters live on the instance's
#: ``TransportStats`` and the aggregate reads them through here, so
#: re-registering the same instance (``resolve_transport`` on a transport
#: that is already in use) is idempotent instead of double counting.
#: Aggregates of garbage-collected instances fold into ``_RETIRED_STATS``
#: (keyed by transport name) via a ``weakref.finalize`` hook, so the
#: process-wide totals survive the instances that produced them.
_STATS_LOCK = threading.Lock()
_LIVE_STATS: dict = {}
_RETIRED_STATS: dict = {}
_UID_COUNTER = itertools.count()


def _next_transport_uid(name: str) -> str:
    return f"{name}-{os.getpid()}-{next(_UID_COUNTER)}"


def _fold_stats(bucket: dict, snapshot: dict) -> None:
    for key, value in snapshot.items():
        if isinstance(value, bool):  # pragma: no cover - no bool fields today
            continue
        if isinstance(value, (int, float)):
            bucket[key] = bucket.get(key, 0) + value
        elif value:  # last_fallback_reason: keep the most recent non-empty
            bucket[key] = value
        else:
            bucket.setdefault(key, value)


def _delta_since(stats: "TransportStats", baseline: dict | None) -> dict:
    snapshot = stats.as_dict()
    if baseline:
        for key, value in baseline.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                snapshot[key] = snapshot.get(key, 0) - value
        if snapshot.get("last_fallback_reason") == baseline.get("last_fallback_reason"):
            snapshot["last_fallback_reason"] = ""
    return snapshot


def _retire_transport(uid: str) -> None:
    with _STATS_LOCK:
        entry = _LIVE_STATS.pop(uid, None)
        if entry is None:
            return
        name, stats, baseline = entry
        _fold_stats(_RETIRED_STATS.setdefault(name, {}), _delta_since(stats, baseline))


def _register_transport(transport: "Transport") -> None:
    """Idempotently enroll *transport* in the process-wide aggregate.

    Keyed by ``transport.uid``: registering the same instance twice (the
    re-resolution path) keeps its existing entry, so its counters contribute
    exactly once to :func:`transport_stats`.
    """
    with _STATS_LOCK:
        already = transport.uid in _LIVE_STATS
        if not already:
            _LIVE_STATS[transport.uid] = (transport.name, transport.stats, None)
    if not already:
        weakref.finalize(transport, _retire_transport, transport.uid)


def transport_stats() -> dict:
    """Process-wide per-transport-name counters (live + retired instances)."""
    with _STATS_LOCK:
        merged: dict = {name: dict(bucket) for name, bucket in _RETIRED_STATS.items()}
        for name, stats, baseline in _LIVE_STATS.values():
            _fold_stats(merged.setdefault(name, {}), _delta_since(stats, baseline))
    return {
        name: bucket
        for name, bucket in merged.items()
        if any(isinstance(value, (int, float)) and value for value in bucket.values())
    }


def reset_transport_stats() -> None:
    """Zero the process-wide counters (benchmarks and tests).

    Live instances keep their own ``stats`` untouched; the aggregate
    remembers a baseline snapshot per instance and reports only activity
    after the reset.
    """
    with _STATS_LOCK:
        _RETIRED_STATS.clear()
        for uid, (name, stats, _) in list(_LIVE_STATS.items()):
            _LIVE_STATS[uid] = (name, stats, stats.as_dict())


def _unlink_segment_name(name: str) -> bool:
    """Best-effort unlink of a segment by name; True when one was removed."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        segment.close()
    finally:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - raced with another cleaner
            return False
    return True


class Transport(ABC):
    """How shard payloads and results cross the process boundary.

    The backend calls :meth:`encode_shard` for every shard before submitting,
    ships the (small, picklable) payload to the worker, where
    :meth:`run_in_worker` decodes, runs the shard function, and encodes the
    results; the parent then calls :meth:`decode_results` on what came back
    and :meth:`release` on every payload in a ``finally`` block.
    """

    name: str = "transport"

    def __init__(self) -> None:
        self.stats = TransportStats()
        self._lock = threading.Lock()
        #: Stable per-instance identity; the process-wide aggregate is keyed
        #: by it, which is what makes re-resolving an in-use transport safe.
        self.uid = _next_transport_uid(self.name)
        _register_transport(self)

    # ------------------------------------------------------------- parent side
    @abstractmethod
    def encode_shard(self, items: list) -> tuple:
        """Turn *items* into the payload shipped to a worker."""

    @abstractmethod
    def decode_results(self, payload: tuple) -> list:
        """Turn a worker's result payload back into per-item results."""

    @abstractmethod
    def release(self, payload: tuple) -> None:
        """Free every resource behind *payload* (idempotent, never raises
        for already-freed segments); called in a ``finally`` block."""

    # ------------------------------------------------------------- worker side
    @abstractmethod
    def open_shard(self, payload: tuple):
        """Return ``(items, cleanup)`` for a shard payload, worker side."""

    @abstractmethod
    def encode_results(self, results: list, payload: tuple) -> tuple:
        """Encode *results* for the trip back to the parent, worker side."""

    def run_in_worker(self, fn: Callable, payload: tuple) -> tuple:
        """Decode → run → encode, with the attachment closed on every path.

        Results are encoded *before* the shard attachment is closed: a shard
        function may legitimately return objects that alias the view-backed
        input tables (the identity function, extracted columns, ...), and
        those lazy views must still be readable while the fallback pickles
        them (:meth:`BlockValues.__reduce__` materializes a view into a plain
        list at pickling time, so nothing escaping the worker ever references
        the segment).
        """
        items, cleanup = self.open_shard(payload)
        try:
            results = list(fn(items))
            return self.encode_results(results, payload)
        finally:
            cleanup()

    # -------------------------------------------------------------- accounting
    def _count_shipped(self, payload: tuple) -> None:
        # Size of the payload as the pool will pickle it, computed without
        # re-serializing the (potentially multi-megabyte) data bytes: large
        # ``bytes`` members count by length, the small descriptor fields by
        # their actual pickled size.
        shipped = 0
        descriptor = []
        for part in payload:
            if isinstance(part, (bytes, bytearray)):
                shipped += len(part)
            else:
                descriptor.append(part)
        shipped += len(pickle.dumps(tuple(descriptor), _PICKLE_PROTOCOL))
        with self._lock:
            self.stats.bytes_shipped += shipped

    def describe(self) -> dict:
        return {"transport": self.name, **self.stats.as_dict()}

    # Transports are shipped to spawn-context workers through the pool
    # initializer; runtime handles (locks, counters) stay parent-side.
    # Subclasses with their own handles extend these, not the base.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["stats"] = TransportStats()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        # A clone is a new stats-owning instance (fresh counters), never an
        # alias of the original's registry entry.
        self.uid = _next_transport_uid(self.name)
        _register_transport(self)


class PickleTransport(Transport):
    """The explicit pickle baseline.

    Serializes the shard itself (one ``pickle.dumps`` — the pool then only
    ships a flat ``bytes`` object), which makes ``bytes_shipped`` an exact
    measurement of the serialization the classic multiprocess path performs.
    """

    name = "pickle"

    def encode_shard(self, items: list) -> tuple:
        payload = ("pickle", None, pickle.dumps(items, _PICKLE_PROTOCOL))
        with self._lock:
            self.stats.shards += 1
        self._count_shipped(payload)
        return payload

    def open_shard(self, payload: tuple):
        _, _, data = payload
        return pickle.loads(data), lambda: None

    def encode_results(self, results: list, payload: tuple) -> tuple:
        return ("pickle", pickle.dumps(results, _PICKLE_PROTOCOL))

    def decode_results(self, payload: tuple) -> list:
        self._count_shipped(payload)
        _, data = payload
        return pickle.loads(data)

    def release(self, payload: tuple) -> None:
        pass


class ShmTransport(Transport):
    """Shard transport over ``multiprocessing.shared_memory``.

    Tables go out as one :class:`ColumnBlockCodec` segment per shard and come
    back as one :class:`PredictionBlockCodec` segment per shard; only the
    descriptors (name + length) are pickled.  Shards that are not lists of
    tables, contain unsupported values, or whose encoding exceeds
    ``max_segment_bytes`` fall back to pickle transparently — fallback is an
    accounting event (``pickle_fallbacks``), never an error.
    """

    name = "shm"

    #: Default per-segment ceiling; one shard of typical enterprise tables is
    #: a few MB, so 256 MB only ever trips on pathological inputs.
    DEFAULT_MAX_SEGMENT_BYTES = 256 << 20

    def __init__(self, max_segment_bytes: int | None = None) -> None:
        super().__init__()
        self.max_segment_bytes = (
            int(max_segment_bytes) if max_segment_bytes is not None else self.DEFAULT_MAX_SEGMENT_BYTES
        )
        if self.max_segment_bytes < 1:
            raise ConfigurationError("max_segment_bytes must be positive")
        #: Open shard segments owned by this (parent) process, keyed by uid.
        self._segments: dict = {}
        # repro-lint: disable=RL004 uid prefix only names /dev/shm segments; never reaches results
        self._uid_prefix = f"{os.getpid()}-{os.urandom(3).hex()}"
        self._uid_counter = itertools.count()

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_segments", None)  # open segment handles stay parent-side
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._segments = {}

    # ------------------------------------------------------------- parent side
    def _next_uid(self) -> str:
        with self._lock:
            return f"{self._uid_prefix}-{next(self._uid_counter)}"

    def _fallback(self, reason: str) -> None:
        with self._lock:
            self.stats.pickle_fallbacks += 1
            self.stats.last_fallback_reason = reason

    def encode_shard(self, items: list) -> tuple:
        uid = self._next_uid()
        with self._lock:
            self.stats.shards += 1
        blob = None
        reason = ""
        if all(isinstance(item, Table) for item in items):
            try:
                blob = ColumnBlockCodec.encode_tables(items)
            except UnsupportedPayloadError as exc:
                reason = str(exc)
        else:
            reason = "shard items are not tables"
        if blob is not None and len(blob) > self.max_segment_bytes:
            reason = f"encoded shard ({len(blob)} bytes) exceeds max_segment_bytes"
            blob = None
        if blob is None:
            self._fallback(reason)
            payload = ("pickle", uid, pickle.dumps(items, _PICKLE_PROTOCOL))
        else:
            segment = shared_memory.SharedMemory(
                create=True, name=f"{SHARD_SEGMENT_PREFIX}{uid}", size=max(len(blob), 1)
            )
            segment.buf[: len(blob)] = blob
            with self._lock:
                self._segments[uid] = segment
                self.stats.shm_bytes += len(blob)
                self.stats.segments_created += 1
            payload = ("shm", uid, segment.name, len(blob))
        self._count_shipped(payload)
        return payload

    def decode_results(self, payload: tuple) -> list:
        self._count_shipped(payload)
        kind = payload[0]
        if kind == "pickle":
            # The worker always attempts the record codec, so a pickled
            # result payload means the result leg itself fell back (oversized
            # or non-prediction results; the exact reason stays worker-side —
            # last_fallback_reason is the shard leg's).
            with self._lock:
                self.stats.result_pickle_fallbacks += 1
            return pickle.loads(payload[1])
        if kind != "shm":  # pragma: no cover - worker/parent version skew
            raise ServingError(f"unknown result payload kind {kind!r}")
        _, name, length = payload
        segment = shared_memory.SharedMemory(name=name)
        try:
            predictions = PredictionBlockCodec.decode_predictions(segment.buf[:length])
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - raced with release
                pass
            with self._lock:
                # The worker created this segment, but its counters died with
                # the fork — account for the segment where it is observed, so
                # created/unlinked balance parent-side.
                self.stats.segments_created += 1
                self.stats.segments_unlinked += 1
        return predictions

    def release(self, payload: tuple) -> None:
        uid = payload[1]
        with self._lock:
            segment = self._segments.pop(uid, None)
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - raced cleanup
                pass
            with self._lock:
                self.stats.segments_unlinked += 1
        # The worker's result segment has a deterministic name, so it can be
        # reclaimed even when the worker died before reporting it back.
        if uid is not None and _unlink_segment_name(f"{RESULT_SEGMENT_PREFIX}{uid}"):
            with self._lock:
                self.stats.segments_created += 1
                self.stats.segments_unlinked += 1

    # ------------------------------------------------------------- worker side
    def open_shard(self, payload: tuple):
        kind, _, *rest = payload
        if kind == "pickle":
            return pickle.loads(rest[0]), lambda: None
        name, length = rest
        segment = shared_memory.SharedMemory(name=name)
        block = ColumnBlockCodec.decode(segment.buf[:length])
        tables = [Table.from_block(block, index) for index in range(block.num_tables)]

        def cleanup() -> None:
            block.close()
            segment.close()

        return tables, cleanup

    def encode_results(self, results: list, payload: tuple) -> tuple:
        uid = payload[1]
        try:
            blob = PredictionBlockCodec.encode_predictions(results)
        except UnsupportedPayloadError:
            return ("pickle", pickle.dumps(results, _PICKLE_PROTOCOL))
        if len(blob) > self.max_segment_bytes:
            return ("pickle", pickle.dumps(results, _PICKLE_PROTOCOL))
        segment = shared_memory.SharedMemory(
            create=True, name=f"{RESULT_SEGMENT_PREFIX}{uid}", size=max(len(blob), 1)
        )
        try:
            segment.buf[: len(blob)] = blob
        except BaseException:  # pragma: no cover - never leak a half-written segment
            segment.close()
            segment.unlink()
            raise
        segment.close()
        return ("shm", segment.name, len(blob))


_TRANSPORTS: dict = {
    PickleTransport.name: PickleTransport,
    ShmTransport.name: ShmTransport,
}


def resolve_transport(transport: "Transport | str | None") -> Transport:
    """Normalise a transport argument into a :class:`Transport` instance.

    Accepts an instance (returned unchanged), a name — ``"pickle"``,
    ``"shm"`` or ``"tcp"`` (peers from ``$REPRO_NET_PEERS``) — a peer spec
    like ``"tcp://host:port[,host2:port2]"``, a typed
    :class:`~repro.serving.spec.TransportSpec` (resolved through its
    canonical string), or ``None`` (the pickle baseline).
    """
    if transport is None:
        return PickleTransport()
    if isinstance(transport, Transport):
        # Re-resolution of an in-use instance: re-registering is idempotent
        # by uid, so its counters stay counted exactly once process-wide.
        _register_transport(transport)
        return transport
    from repro.serving.spec import TransportSpec  # local: spec is leaf-level

    if isinstance(transport, TransportSpec):
        transport = str(transport)
    if isinstance(transport, str):
        if transport == "tcp" or transport.startswith("tcp://"):
            from repro.serving import net  # local import: net imports this module

            return net.NetTransport.from_spec(transport)
        transport_class = _TRANSPORTS.get(transport)
        if transport_class is None:
            raise ConfigurationError(
                f"unknown shard transport {transport!r}; "
                f"expected one of {sorted(_TRANSPORTS) + ['tcp', 'tcp://host:port']}"
            )
        return transport_class()
    raise ConfigurationError(
        f"transport must be a Transport, a name, or None, got {type(transport).__name__}"
    )
