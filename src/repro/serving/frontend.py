"""SLO-aware serving front end: the service boundary that manages overload.

:class:`AnnotationFrontend` puts a real network edge — a dependency-free
asyncio HTTP/1.1 server — in front of an
:class:`~repro.serving.service.AnnotationService`, and makes overload a
*managed* state instead of an unbounded queue:

* **Admission control.**  Every request passes a per-tenant token bucket
  (sustained rate + burst) and bounded pending counters (per tenant and
  global) *before* it may enqueue.  Excess load is shed immediately with a
  typed :class:`~repro.core.errors.OverloadedError` carrying a concrete
  ``retry_after`` — over HTTP, a ``429`` with a ``Retry-After`` header —
  so one hot tenant saturates its own budget, never the shared queue.
* **Deadline propagation.**  A request may carry an end-to-end latency
  budget (``deadline_ms`` in the JSON body, the ``X-Latency-Budget-Ms``
  header, or the configured default); it rides into
  ``AnnotationService.annotate(deadline=...)``, where expired requests are
  discarded before their cascade runs and callers get a typed
  :class:`~repro.core.errors.DeadlineExceededError` (HTTP ``504``).
* **Graceful drain.**  :meth:`shutdown` (or SIGTERM via
  :meth:`install_signal_handlers`) stops accepting new work, gives in-flight
  requests a bounded drain deadline, and hard-cancels past it — idle
  keep-alive connections are closed immediately, busy ones finish their
  current response, and the wrapped service's own bounded drain fails any
  survivor with a typed :class:`~repro.core.errors.ShutdownError`.

Pair the front end with an :class:`~repro.serving.slo.SloController` on the
service and the whole edge closes the loop the E10 experiment measured:
shedding keeps the queue bounded, the controller trades cascade depth for
latency while the breach lasts, and stats journal both so operators can see
overload being managed (see docs/SERVING.md, "Front end & SLOs").

The admission path is usable without sockets — :meth:`submit` applies the
same token bucket, pending bounds, and deadline plumbing for in-process
callers and tests; the HTTP layer is a thin codec over it.
"""

from __future__ import annotations

import asyncio
import json
import signal as signal_module
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ServingError,
    ShutdownError,
)
from repro.core.prediction import TablePrediction
from repro.core.table import Table
from repro.serving.service import AnnotationService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.pool import AnnotationPool
    from repro.serving.spec import FrontendSpec

__all__ = ["AnnotationFrontend", "FrontendConfig", "FrontendStats", "TokenBucket"]

#: Admission-state key for requests without a customer id.
_GLOBAL = "<global>"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class TokenBucket:
    """A per-tenant token bucket: sustained ``rate``/s with ``burst`` headroom.

    Refill happens lazily on acquisition from the injected monotonic clock,
    so an idle bucket costs nothing and tests can drive time explicitly.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError("token bucket rate must be positive")
        if burst < 1:
            raise ConfigurationError("token bucket burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated: float | None = None

    def acquire(self, now: float) -> float:
        """Take one token; 0.0 on success, else seconds until one is available."""
        if self.updated is not None:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class FrontendConfig:
    """Network, admission, deadline, and drain knobs of the front end."""

    host: str = "127.0.0.1"
    #: Port to bind (0 = ephemeral; the bound port is in ``frontend.address``).
    port: int = 0
    #: Sustained per-tenant request rate (requests/second); None = unlimited.
    tenant_rate: float | None = None
    #: Per-tenant burst headroom on top of the sustained rate.
    tenant_burst: float = 8.0
    #: Pending (admitted, unfinished) requests allowed per tenant.
    max_pending_per_tenant: int = 64
    #: Pending requests allowed across all tenants — the global queue bound.
    max_pending_total: int = 256
    #: Latency budget (seconds) applied when a request carries none;
    #: None = unbounded requests by default.
    default_deadline: float | None = None
    #: Seconds :meth:`AnnotationFrontend.shutdown` gives the drain before
    #: hard-cancelling in-flight work.
    drain_timeout: float = 5.0
    #: Per-read socket timeout while parsing one request (slow-client guard).
    request_timeout: float = 30.0
    #: Seconds an idle keep-alive connection may wait for its next request.
    keepalive_timeout: float = 30.0
    #: Largest accepted request body.
    max_body_bytes: int = 8 << 20

    def validate(self) -> "FrontendConfig":
        if self.tenant_rate is not None and self.tenant_rate <= 0:
            raise ConfigurationError("tenant_rate must be positive (or None)")
        if self.tenant_burst < 1:
            raise ConfigurationError("tenant_burst must be at least 1")
        if self.max_pending_per_tenant < 1 or self.max_pending_total < 1:
            raise ConfigurationError("pending bounds must be at least 1")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigurationError("default_deadline must be positive (or None)")
        if self.drain_timeout < 0:
            raise ConfigurationError("drain_timeout must be non-negative")
        if self.request_timeout <= 0 or self.keepalive_timeout <= 0:
            raise ConfigurationError("timeouts must be positive")
        if self.max_body_bytes < 1:
            raise ConfigurationError("max_body_bytes must be positive")
        return self


@dataclass
class FrontendStats:
    """Edge-level counters: what was admitted, shed, timed out, or refused."""

    connections: int = 0
    #: Requests that passed admission control.
    admitted: int = 0
    #: Admitted requests that returned a prediction.
    completed: int = 0
    #: Requests shed by a tenant's token bucket.
    shed_rate_limited: int = 0
    #: Requests shed because a pending bound (tenant or global) was full.
    shed_queue_full: int = 0
    #: Requests refused because the front end was draining or stopped.
    rejected_draining: int = 0
    #: Admitted requests whose latency budget expired.
    timed_out: int = 0
    #: Admitted requests that failed for any other reason.
    failed: int = 0
    responses_by_status: dict[int, int] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return self.shed_rate_limited + self.shed_queue_full

    def record_response(self, status: int) -> None:
        self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1

    def to_dict(self) -> dict[str, object]:
        return {
            "connections": self.connections,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed_total": self.shed_total,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_queue_full": self.shed_queue_full,
            "rejected_draining": self.rejected_draining,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "responses_by_status": {
                str(status): count for status, count in sorted(self.responses_by_status.items())
            },
        }


class AnnotationFrontend:
    """Asyncio HTTP front end over an :class:`AnnotationService` (or pool).

    The frontend owns the network edge and the admission state; the wrapped
    service owns batching and execution.  If the service is not yet running,
    :meth:`start` starts it.  :meth:`shutdown` always propagates its bounded
    drain to the service — a drained edge over a still-queueing service
    would recreate exactly the unbounded queue this class exists to remove.

    ``pool=`` swaps the single in-process service for an
    :class:`~repro.serving.pool.AnnotationPool` — the same token-bucket,
    queue-bound, deadline, and drain edge then feeds N worker processes
    with warm routing, and the pool's stats section rides into ``/stats``
    and :meth:`summary`.  *config* also accepts the frozen
    :class:`~repro.serving.spec.FrontendSpec` form.

    Endpoints: ``POST /annotate`` (JSON ``{"table": <Table.to_dict()>,
    "customer_id": ..., "deadline_ms": ...}`` → ``TablePrediction.to_dict()``),
    ``GET /healthz``, ``GET /stats``.
    """

    def __init__(
        self,
        service: "AnnotationService | None" = None,
        config: "FrontendConfig | FrontendSpec | None" = None,
        *,
        pool: "AnnotationPool | None" = None,
    ) -> None:
        if (service is None) == (pool is None):
            raise ConfigurationError(
                "AnnotationFrontend drives exactly one of service= or pool="
            )
        # The pool duck-types the service surface the edge relies on
        # (is_running/start/annotate/shutdown/stats/summary), so the whole
        # admission, deadline, and drain machinery below drives either.
        self._service = service if service is not None else pool
        if config is not None and not isinstance(config, FrontendConfig):
            config = config.to_config()  # a FrontendSpec
        self.config = (config or FrontendConfig()).validate()
        self.stats = FrontendStats()
        self._server: asyncio.base_events.Server | None = None
        self._port: int | None = None
        self._draining = False
        self._buckets: dict[str, TokenBucket] = {}
        self._pending: dict[str, int] = {}
        self._pending_total = 0
        self._handlers: set[asyncio.Task] = set()
        self._idle_writers: set[asyncio.StreamWriter] = set()
        self._installed_signals: list[int] = []
        self._drain_task: asyncio.Task | None = None
        self._drained: asyncio.Event | None = None
        #: Wall-clock seconds the last completed drain took (for benchmarks).
        self.last_drain_seconds: float | None = None

    # ---------------------------------------------------------------- lifecycle
    @property
    def service(self) -> "AnnotationService | AnnotationPool":
        """The wrapped component (the pool, in ``pool=`` mode)."""
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); raises until :meth:`start` has run."""
        if self._port is None:
            raise ServingError("AnnotationFrontend is not running")
        return self.config.host, self._port

    @property
    def is_running(self) -> bool:
        return self._server is not None and not self._draining

    async def start(self) -> "AnnotationFrontend":
        if self._server is not None:
            raise ServingError("AnnotationFrontend is already running")
        if self._draining:
            raise ServingError("AnnotationFrontend cannot restart after draining")
        if not self._service.is_running:
            await self._service.start()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self

    def install_signal_handlers(
        self, signals: tuple[int, ...] = (signal_module.SIGTERM, signal_module.SIGINT)
    ) -> None:
        """Drain on SIGTERM/SIGINT: the Unix stop signal becomes a bounded drain."""
        loop = asyncio.get_running_loop()
        for signum in signals:
            loop.add_signal_handler(signum, self._drain_from_signal)
            self._installed_signals.append(signum)

    def _drain_from_signal(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(self.shutdown())

    async def wait_drained(self, timeout: float | None = None) -> None:
        """Block until a (signal-initiated or direct) shutdown has completed."""
        if self._drained is None:
            raise ServingError("AnnotationFrontend was never started")
        await asyncio.wait_for(self._drained.wait(), timeout)

    async def shutdown(self, drain_timeout: float | None = None) -> None:
        """Stop accepting, drain in-flight work, hard-cancel past the deadline.

        The drain budget (*drain_timeout*, default ``config.drain_timeout``)
        covers the whole sequence: close the listener, let busy connections
        finish their current request, cancel whatever is still running at
        the deadline, and give the wrapped service the remaining budget for
        its own bounded drain.  Idempotent; concurrent calls coalesce.
        """
        if self._draining:
            if self._drained is not None:
                await self._drained.wait()
            return
        self._draining = True
        budget = self.config.drain_timeout if drain_timeout is None else drain_timeout
        loop = asyncio.get_running_loop()
        started = loop.time()
        deadline = started + budget
        try:
            server, self._server = self._server, None
            if server is not None:
                server.close()
                await server.wait_closed()
            # Idle keep-alive connections are parked in readline; closing the
            # transport EOFs them out immediately so an empty frontend drains
            # in milliseconds, not in drain_timeout.
            for writer in list(self._idle_writers):
                writer.close()
            current = asyncio.current_task()
            pending = [t for t in self._handlers if not t.done() and t is not current]
            if pending:
                _, unfinished = await asyncio.wait(
                    pending, timeout=max(0.0, deadline - loop.time())
                )
                for task in unfinished:
                    task.cancel()
                if unfinished:
                    await asyncio.gather(*unfinished, return_exceptions=True)
            await self._service.shutdown(
                drain_timeout=max(0.0, deadline - loop.time())
            )
        finally:
            for signum in self._installed_signals:
                try:
                    loop.remove_signal_handler(signum)
                except (ValueError, RuntimeError):  # pragma: no cover - teardown race
                    pass
            self._installed_signals.clear()
            self.last_drain_seconds = loop.time() - started
            if self._drained is not None:
                self._drained.set()

    async def __aenter__(self) -> "AnnotationFrontend":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    # ---------------------------------------------------------------- admission
    def _retry_hint(self) -> float:
        """Back-off hint for queue-full sheds: about one batch's latency."""
        return max(0.05, self._service.stats.mean_batch_seconds)

    def _admit(self, customer_id: str | None) -> str:
        """Pass admission control or raise; returns the tenant's pending key."""
        if self._draining or not self._service.is_running:
            self.stats.rejected_draining += 1
            raise ServingError("front end is draining")
        key = customer_id if customer_id is not None else _GLOBAL
        if self._pending_total >= self.config.max_pending_total:
            self.stats.shed_queue_full += 1
            self._service.stats.shed_total += 1
            raise OverloadedError(
                "service pending queue is full", retry_after=self._retry_hint()
            )
        if self._pending.get(key, 0) >= self.config.max_pending_per_tenant:
            self.stats.shed_queue_full += 1
            self._service.stats.shed_total += 1
            raise OverloadedError(
                f"tenant {key!r} pending queue is full", retry_after=self._retry_hint()
            )
        if self.config.tenant_rate is not None:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = TokenBucket(
                    self.config.tenant_rate, self.config.tenant_burst
                )
            wait = bucket.acquire(time.monotonic())
            if wait > 0.0:
                self.stats.shed_rate_limited += 1
                self._service.stats.shed_total += 1
                # Floor the hint at 1ms so it survives the header's 3-decimal
                # rendering as a positive backoff.
                raise OverloadedError(
                    f"tenant {key!r} exceeded its request rate",
                    retry_after=max(wait, 0.001),
                )
        return key

    async def submit(
        self,
        table: Table,
        customer_id: str | None = None,
        deadline: float | None = None,
    ) -> TablePrediction:
        """Admission-controlled annotate: the HTTP path without the HTTP.

        Applies the same shedding, pending bounds, and deadline default as
        ``POST /annotate`` and forwards to the wrapped service.  Raises
        :class:`OverloadedError` (shed — retry later),
        :class:`DeadlineExceededError` (accepted but out of time), or
        :class:`ServingError` (draining / failed).
        """
        key = self._admit(customer_id)
        if deadline is None:
            deadline = self.config.default_deadline
        self.stats.admitted += 1
        self._pending_total += 1
        self._pending[key] = self._pending.get(key, 0) + 1
        try:
            prediction = await self._service.annotate(
                table, customer_id=customer_id, deadline=deadline
            )
        except DeadlineExceededError:
            self.stats.timed_out += 1
            raise
        except Exception:
            self.stats.failed += 1
            raise
        else:
            self.stats.completed += 1
            return prediction
        finally:
            self._pending_total -= 1
            remaining = self._pending.get(key, 1) - 1
            if remaining > 0:
                self._pending[key] = remaining
            else:
                self._pending.pop(key, None)

    # -------------------------------------------------------------------- HTTP
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._handlers.add(task)
        self.stats.connections += 1
        try:
            while not self._draining:
                self._idle_writers.add(writer)
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(), self.config.keepalive_timeout
                    )
                except asyncio.TimeoutError:
                    break
                finally:
                    self._idle_writers.discard(writer)
                if not request_line or self._draining:
                    break
                keep_alive = await self._handle_request(request_line, reader, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._idle_writers.discard(writer)
            self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client race
                pass

    async def _handle_request(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Parse and serve one HTTP request; returns keep-alive eligibility."""
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._respond(writer, 400, {"error": "malformed request line"})
            return False
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), self.config.request_timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await self._respond(writer, 400, {"error": "invalid Content-Length"})
            return False
        if content_length > self.config.max_body_bytes:
            await self._respond(writer, 413, {"error": "request body too large"})
            return False
        body = b""
        if content_length:
            body = await asyncio.wait_for(
                reader.readexactly(content_length), self.config.request_timeout
            )
        status, payload, extra = await self._route(method, path, headers, body)
        keep_alive = headers.get("connection", "").lower() != "close" and not self._draining
        await self._respond(writer, status, payload, extra, keep_alive=keep_alive)
        return keep_alive

    async def _route(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            return 200, {
                "status": "draining" if self._draining else "ok",
                "accepting": self.is_running and self._service.is_running,
            }, {}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            return 200, self.summary(), {}
        if path == "/annotate":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {}
            return await self._route_annotate(headers, body)
        return 404, {"error": f"no such endpoint: {path}"}, {}

    async def _route_annotate(
        self, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return 400, {"error": "request body is not valid JSON"}, {}
        if not isinstance(payload, dict) or not isinstance(payload.get("table"), dict):
            return 400, {"error": 'request JSON must carry a "table" object'}, {}
        customer_id = payload.get("customer_id")
        if customer_id is not None and not isinstance(customer_id, str):
            return 400, {"error": "customer_id must be a string"}, {}
        deadline_ms = payload.get("deadline_ms", headers.get("x-latency-budget-ms"))
        deadline: float | None = None
        if deadline_ms is not None:
            try:
                deadline = float(deadline_ms) / 1000.0
            except (TypeError, ValueError):
                return 400, {"error": "deadline_ms must be a number"}, {}
            if deadline <= 0:
                return 400, {"error": "deadline_ms must be positive"}, {}
        try:
            table = Table.from_dict(payload["table"])
        except Exception as exc:  # noqa: BLE001 - malformed client payloads
            return 400, {"error": f"invalid table payload: {exc}"}, {}
        try:
            prediction = await self.submit(table, customer_id=customer_id, deadline=deadline)
        except OverloadedError as exc:
            return 429, {
                "error": "overloaded",
                "detail": str(exc),
                "retry_after_seconds": round(exc.retry_after, 4),
            }, {"Retry-After": f"{exc.retry_after:.3f}"}
        except DeadlineExceededError as exc:
            return 504, {"error": "deadline_exceeded", "detail": str(exc)}, {}
        except ShutdownError as exc:
            return 503, {"error": "shutting_down", "detail": str(exc)}, {}
        except ServingError as exc:
            if self._draining or not self._service.is_running:
                return 503, {"error": "draining", "detail": str(exc)}, {}
            return 500, {"error": "annotation_failed", "detail": str(exc)}, {}
        return 200, prediction.to_dict(), {}

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
        keep_alive: bool = False,
    ) -> None:
        self.stats.record_response(status)
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------- report
    def summary(self) -> dict[str, object]:
        """Edge + service report: admission counters, drain state, SLO, stats.

        ``frontend`` is the edge's canonical :func:`~repro.serving.stats.
        render_stats` section; ``service`` nests the wrapped component's own
        ``summary()`` (a pool's, in ``pool=`` mode — its dispatcher section
        then also appears under ``pool``).
        """
        report: dict[str, object] = {
            "running": self.is_running,
            "draining": self._draining,
            "address": list(self.address) if self._port is not None else None,
            "pending_total": self._pending_total,
            "pending_by_tenant": dict(self._pending),
            "frontend": self.stats.to_dict(),
            "service": self._service.summary(),
        }
        pool_section = report["service"].get("pool") if isinstance(report["service"], dict) else None
        if pool_section is not None:
            report["pool"] = pool_section
        return report
