"""Serving layer: execution backends, shared profile store, async facade.

This package turns the batch-first inference stack into something that can
serve production traffic:

* :mod:`repro.serving.backends` — an :class:`ExecutionBackend` abstraction
  (``serial``, ``threaded``, ``multiprocess``) that shards a corpus by table
  and fans bulk annotation (or pretraining featurization) out across workers,
  with results guaranteed identical to the serial path;
* :mod:`repro.serving.transport` — the multiprocess backend's shard
  :class:`Transport` seam: the ``pickle`` baseline, or zero-copy
  shared-memory column blocks (``"multiprocess:4+shm"``) that ship tables
  out and fixed-width prediction records back without serializing either,
  with transparent pickle fallback and airtight segment lifecycle;
* :mod:`repro.serving.net` — the multi-node arm of the same seam:
  :class:`NetTransport` ships the identical block byte layouts over
  length-prefixed crc-framed TCP (``"multiprocess:4+tcp://host:port"``)
  with per-connection deadlines, bounded reconnect backoff, and per-shard
  local fallback on any network failure; :class:`BlockWorkerServer` is the
  remote peer, running the columnar kernels over received buffers;
* :mod:`repro.serving.profile_store` — a bounded, content-hash-keyed LRU
  :class:`ProfileStore` that lifts the per-``Column`` memoized derived state
  (profiles, value views, feature vectors) off short-lived table objects so a
  long-running service reuses warm entries, and
  :class:`PersistentProfileStore`, which layers an append-only, crash-tolerant
  disk tier underneath so warm state survives process restarts — and, via
  per-writer sidecar index journals, lets concurrently *live* processes serve
  each other's freshly flushed entries (fork-safe by construction:
  :func:`install_fork_handlers`);
* :mod:`repro.serving.service` — an :class:`AnnotationService` wrapping a
  :class:`~repro.core.sigmatyper.SigmaTyper` with an asyncio request queue,
  per-customer routing, micro-batching (fixed, or adaptive via
  :class:`AdaptiveBatchingConfig`), per-request deadlines, and graceful
  (optionally bounded) shutdown;
* :mod:`repro.serving.slo` — an :class:`SloController` that treats the
  cascade confidence threshold c as a control variable, stepping it down
  when the observed tail latency breaches its budget (shallower, faster
  cascade — the E10 trade-off) and recovering it as load drains, with every
  transition journaled;
* :mod:`repro.serving.frontend` — :class:`AnnotationFrontend`, the
  SLO-aware network edge: a dependency-free asyncio HTTP server with
  per-tenant token-bucket admission control, bounded pending queues, load
  shedding with explicit retry-after, deadline propagation, and graceful
  SIGTERM drain.

The parity contract below has one explicit, opt-in exception: an attached
:class:`SloController` *degrades* predictions (shallower cascade) while an
overload lasts, and journals every window in which it did.

The package-wide contract is **parity**: every backend, cache tier, and
batching mode returns predictions bit-identical to the plain serial path
(see ``docs/ARCHITECTURE.md``).
"""

from repro.serving.backends import (
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    ThreadedBackend,
    available_workers,
    resolve_backend,
    shard_items,
)
from repro.serving.frontend import (
    AnnotationFrontend,
    FrontendConfig,
    FrontendStats,
    TokenBucket,
)
from repro.serving.profile_store import (
    PersistentProfileStore,
    ProfileStore,
    install_fork_handlers,
)
from repro.serving.net import (
    BlockWorkerServer,
    FrameError,
    NetConfig,
    NetError,
    NetTimeoutError,
    NetTransport,
    PeerUnavailableError,
)
from repro.serving.service import AdaptiveBatchingConfig, AnnotationService, ServiceStats
from repro.serving.slo import SloConfig, SloController
from repro.serving.transport import (
    ColumnBlockCodec,
    PickleTransport,
    PredictionBlockCodec,
    ShmTransport,
    Transport,
    resolve_transport,
    reset_transport_stats,
    transport_stats,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadedBackend",
    "MultiprocessBackend",
    "available_workers",
    "resolve_backend",
    "shard_items",
    "Transport",
    "PickleTransport",
    "ShmTransport",
    "ColumnBlockCodec",
    "PredictionBlockCodec",
    "resolve_transport",
    "transport_stats",
    "reset_transport_stats",
    "NetTransport",
    "BlockWorkerServer",
    "NetConfig",
    "NetError",
    "FrameError",
    "PeerUnavailableError",
    "NetTimeoutError",
    "ProfileStore",
    "PersistentProfileStore",
    "install_fork_handlers",
    "AdaptiveBatchingConfig",
    "AnnotationService",
    "ServiceStats",
    "SloConfig",
    "SloController",
    "AnnotationFrontend",
    "FrontendConfig",
    "FrontendStats",
    "TokenBucket",
]
