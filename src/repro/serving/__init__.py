"""Serving layer: execution backends, shared profile store, async facade.

This package turns the batch-first inference stack into something that can
serve production traffic:

* :mod:`repro.serving.backends` — an :class:`ExecutionBackend` abstraction
  (``serial``, ``threaded``, ``multiprocess``) that shards a corpus by table
  and fans bulk annotation (or pretraining featurization) out across workers,
  with results guaranteed identical to the serial path;
* :mod:`repro.serving.transport` — the multiprocess backend's shard
  :class:`Transport` seam: the ``pickle`` baseline, or zero-copy
  shared-memory column blocks (``"multiprocess:4+shm"``) that ship tables
  out and fixed-width prediction records back without serializing either,
  with transparent pickle fallback and airtight segment lifecycle;
* :mod:`repro.serving.net` — the multi-node arm of the same seam:
  :class:`NetTransport` ships the identical block byte layouts over
  length-prefixed crc-framed TCP (``"multiprocess:4+tcp://host:port"``)
  with per-connection deadlines, bounded reconnect backoff, and per-shard
  local fallback on any network failure; :class:`BlockWorkerServer` is the
  remote peer, running the columnar kernels over received buffers;
* :mod:`repro.serving.profile_store` — a bounded, content-hash-keyed LRU
  :class:`ProfileStore` that lifts the per-``Column`` memoized derived state
  (profiles, value views, feature vectors) off short-lived table objects so a
  long-running service reuses warm entries, and
  :class:`PersistentProfileStore`, which layers an append-only, crash-tolerant
  disk tier underneath so warm state survives process restarts — and, via
  per-writer sidecar index journals, lets concurrently *live* processes serve
  each other's freshly flushed entries (fork-safe by construction:
  :func:`install_fork_handlers`);
* :mod:`repro.serving.service` — an :class:`AnnotationService` wrapping a
  :class:`~repro.core.sigmatyper.SigmaTyper` with an asyncio request queue,
  per-customer routing, micro-batching (fixed, or adaptive via
  :class:`AdaptiveBatchingConfig`), per-request deadlines, and graceful
  (optionally bounded) shutdown;
* :mod:`repro.serving.slo` — an :class:`SloController` that treats the
  cascade confidence threshold c as a control variable, stepping it down
  when the observed tail latency breaches its budget (shallower, faster
  cascade — the E10 trade-off) and recovering it as load drains, with every
  transition journaled;
* :mod:`repro.serving.frontend` — :class:`AnnotationFrontend`, the
  SLO-aware network edge: a dependency-free asyncio HTTP server with
  per-tenant token-bucket admission control, bounded pending queues, load
  shedding with explicit retry-after, deadline propagation, and graceful
  SIGTERM drain;
* :mod:`repro.serving.pool` — :class:`AnnotationPool`, the multi-process
  deployment shape: N forked worker services over one shared segment
  directory behind a warm-routing dispatcher (:class:`WarmthIndex` content
  affinity with a load-balance escape hatch), with worker pre-warm,
  heartbeat supervision, and in-place restart + re-dispatch on a worker
  death — drivable by the front end via ``pool=``;
* :mod:`repro.serving.spec` — the typed configuration layer
  (:class:`ServingSpec` and its :class:`BackendSpec` / :class:`TransportSpec`
  / :class:`StoreSpec` / :class:`PoolSpec` / :class:`FrontendSpec` parts),
  round-tripping every documented spec string;
* :mod:`repro.serving.stats` — the unified stats vocabulary:
  :func:`render_stats` composes every ``summary()`` in the layer from the
  same canonical sections (deprecated aliases in :data:`DEPRECATED_KEYS`).

The parity contract below has one explicit, opt-in exception: an attached
:class:`SloController` *degrades* predictions (shallower cascade) while an
overload lasts, and journals every window in which it did.

The package-wide contract is **parity**: every backend, cache tier, and
batching mode returns predictions bit-identical to the plain serial path
(see ``docs/ARCHITECTURE.md``).
"""

from repro.core.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ServingError,
    ShutdownError,
)
from repro.serving.backends import (
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    ThreadedBackend,
    available_workers,
    resolve_backend,
    shard_items,
)
from repro.serving.frontend import (
    AnnotationFrontend,
    FrontendConfig,
    FrontendStats,
    TokenBucket,
)
from repro.serving.pool import AnnotationPool, PoolStats, WarmthIndex
from repro.serving.profile_store import (
    JournalEntry,
    PersistentProfileStore,
    ProfileStore,
    install_fork_handlers,
    journal_pid,
    read_index_journal,
)
from repro.serving.spec import (
    BackendSpec,
    FrontendSpec,
    PoolSpec,
    ServingSpec,
    StoreSpec,
    TransportSpec,
)
from repro.serving.stats import DEPRECATED_KEYS, render_stats, resolve_key, shared_sections
from repro.serving.net import (
    BlockWorkerServer,
    FrameError,
    NetConfig,
    NetError,
    NetTimeoutError,
    NetTransport,
    PeerUnavailableError,
)
from repro.serving.service import AdaptiveBatchingConfig, AnnotationService, ServiceStats
from repro.serving.slo import SloConfig, SloController
from repro.serving.transport import (
    ColumnBlock,
    ColumnBlockCodec,
    PickleTransport,
    PredictionBlockCodec,
    ShmTransport,
    Transport,
    TransportStats,
    UnsupportedPayloadError,
    resolve_transport,
    reset_transport_stats,
    transport_stats,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadedBackend",
    "MultiprocessBackend",
    "available_workers",
    "resolve_backend",
    "shard_items",
    "Transport",
    "PickleTransport",
    "ShmTransport",
    "ColumnBlockCodec",
    "PredictionBlockCodec",
    "resolve_transport",
    "transport_stats",
    "reset_transport_stats",
    "NetTransport",
    "BlockWorkerServer",
    "NetConfig",
    "NetError",
    "FrameError",
    "PeerUnavailableError",
    "NetTimeoutError",
    "ProfileStore",
    "PersistentProfileStore",
    "install_fork_handlers",
    "AdaptiveBatchingConfig",
    "AnnotationService",
    "ServiceStats",
    "SloConfig",
    "SloController",
    "AnnotationFrontend",
    "FrontendConfig",
    "FrontendStats",
    "TokenBucket",
    "TransportStats",
    "ColumnBlock",
    "UnsupportedPayloadError",
    "AnnotationPool",
    "PoolStats",
    "WarmthIndex",
    "JournalEntry",
    "journal_pid",
    "read_index_journal",
    "ServingSpec",
    "BackendSpec",
    "TransportSpec",
    "StoreSpec",
    "PoolSpec",
    "FrontendSpec",
    "DEPRECATED_KEYS",
    "render_stats",
    "shared_sections",
    "resolve_key",
    "ServingError",
    "ConfigurationError",
    "OverloadedError",
    "DeadlineExceededError",
    "ShutdownError",
]
