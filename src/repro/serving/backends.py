"""Execution backends: shard bulk work across threads or processes.

Bulk annotation (and pretraining featurization) is embarrassingly parallel at
the table level: every table is annotated independently, and the per-column
caches the cascade relies on are either process-local (the shared embedder and
shape-mask caches, inherited by forked workers) or keyed purely by column
content (the profile store).  An :class:`ExecutionBackend` exploits that by
splitting the work items into contiguous, near-equal shards, running the same
shard function on each, and reassembling the results in input order — which
makes every backend's output *identical* to the serial path by construction
(pinned by ``tests/test_serving.py``).

The ``multiprocess`` backend prefers the ``fork`` start method: workers
inherit the (possibly very large) pretrained model through copy-on-write
memory instead of pickling it, so only the table shards and their predictions
cross process boundaries.  *How* they cross is the backend's
:class:`~repro.serving.transport.Transport` seam — the classic pickle
round-trip, zero-copy shared-memory column blocks
(``"multiprocess:4+shm"``; see :mod:`repro.serving.transport`), or the same
block byte layouts framed over TCP to remote annotation peers
(``"multiprocess:4+tcp://host:port"``; see :mod:`repro.serving.net`).  Without
``fork`` (Windows, macOS ``spawn``) the shard function itself is pickled to
the workers, which requires it to be a picklable callable (bound methods of a
picklable model are fine; closures are not).

Spec strings, selection guidance, and the parity contract all backends obey
are documented operator-side in ``docs/SERVING.md`` and design-side in
``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.core.errors import ConfigurationError, ServingError
from repro.serving.profile_store import install_fork_handlers

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadedBackend",
    "MultiprocessBackend",
    "available_workers",
    "resolve_backend",
    "shard_items",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: ``fn(shard) -> results``, one result per shard item, in shard order.
ShardFn = Callable[[list], Sequence]


def available_workers() -> int:
    """CPUs usable by this process (respects affinity masks / cgroup pinning)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def shard_items(items: Iterable[ItemT], num_shards: int) -> list[list[ItemT]]:
    """Split *items* into at most *num_shards* contiguous, near-equal shards.

    Contiguous slices (rather than round-robin) keep the columns of
    neighbouring tables together, which lets pickle's memo deduplicate shared
    objects inside one shard payload.  No shard is empty; concatenating the
    shards reproduces *items* exactly.
    """
    items = list(items)
    if num_shards < 1:
        raise ConfigurationError("num_shards must be at least 1")
    count = min(num_shards, len(items))
    if count <= 1:
        return [items] if items else []
    base, extra = divmod(len(items), count)
    shards: list[list[ItemT]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


class ExecutionBackend(ABC):
    """Strategy for executing a shard function over a list of work items."""

    #: Stable identifier ("serial", "threaded", "multiprocess").
    name: str = "backend"
    #: Worker count (1 for the serial backend).
    max_workers: int = 1

    @abstractmethod
    def map_shards(self, fn: ShardFn, items: Iterable[ItemT]) -> list:
        """Run *fn* over shards of *items*; return per-item results in order.

        *fn* receives a list of items and must return one result per item,
        preserving order.  Implementations shard, execute, and concatenate —
        they never reorder, drop, or duplicate work.
        """

    def run(self, annotate_many: ShardFn, tables: Iterable[ItemT]) -> list:
        """Alias of :meth:`map_shards` named for the annotation use case."""
        return self.map_shards(annotate_many, tables)

    def describe(self) -> dict[str, object]:
        """Small identification record used in benchmarks and reports."""
        return {"backend": self.name, "workers": self.max_workers}


class SerialBackend(ExecutionBackend):
    """Run everything in the calling thread — the parity reference."""

    name = "serial"
    max_workers = 1

    def __init__(self, max_workers: int | None = None) -> None:
        # Accepts (and ignores) a worker count so "serial" is a drop-in
        # configuration value wherever "threaded:4" style specs are allowed.
        pass

    def map_shards(self, fn: ShardFn, items: Iterable[ItemT]) -> list:
        items = list(items)
        if not items:
            return []
        return list(fn(items))


class ThreadedBackend(ExecutionBackend):
    """Fan shards out over a thread pool.

    Threads share the warm in-process caches (embedder phrases, shape masks,
    an active profile store) for free.  Python-heavy profiling work is
    GIL-bound, so the win over serial comes from the numpy-released sections;
    prefer the multiprocess backend for CPU-saturating bulk jobs.
    """

    name = "threaded"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = int(max_workers) if max_workers is not None else available_workers()
        if self.max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")

    def map_shards(self, fn: ShardFn, items: Iterable[ItemT]) -> list:
        items = list(items)
        if not items:
            return []
        shards = shard_items(items, self.max_workers)
        if len(shards) == 1:
            return list(fn(items))
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            shard_results = list(pool.map(fn, shards))
        return [result for shard in shard_results for result in shard]


#: Shard functions + transports handed to forked workers by inheritance
#: (never pickled).
_INHERITED_FNS: dict[int, tuple] = {}
_FN_TOKENS = itertools.count()

#: Shard function + transport installed per worker by the pickling
#: (non-fork) path.
_PICKLED_FN: tuple | None = None


def _run_inherited_shard(token: int, payload: tuple) -> tuple:
    entry = _INHERITED_FNS.get(token)
    if entry is None:
        raise ServingError(
            "multiprocess worker is missing its inherited shard function; "
            "the fork start method is required for non-picklable callables"
        )
    fn, transport = entry
    return transport.run_in_worker(fn, payload)


def _init_pickled_worker(fn: ShardFn, transport) -> None:
    global _PICKLED_FN
    _PICKLED_FN = (fn, transport)


def _run_pickled_shard(payload: tuple) -> tuple:
    assert _PICKLED_FN is not None, "worker initializer did not run"
    fn, transport = _PICKLED_FN
    return transport.run_in_worker(fn, payload)


class MultiprocessBackend(ExecutionBackend):
    """Fan shards out over worker processes.

    With the ``fork`` start method (Linux default) workers inherit the whole
    pretrained model copy-on-write, so only shards and predictions are
    pickled; per-process caches stay effective because shards are whole
    tables.  State mutated inside workers (caches, feedback) never propagates
    back — use this backend for read-only inference and featurization.

    Each :meth:`map_shards` call forks a fresh pool.  That is deliberate:
    workers always see the caller's *current* model state (a reused pool
    would keep serving the snapshot from its fork, silently ignoring feedback
    applied since), at the cost of pool spin-up per call.  Suit it to large
    bulk jobs; for online micro-batches prefer serial or threaded execution.

    Constructing this backend registers the profile-store at-fork handlers
    (:func:`repro.serving.profile_store.install_fork_handlers`), so workers
    forked while a :class:`~repro.serving.profile_store.PersistentProfileStore`
    is active inherit a *usable* store: a fresh lock (never one left held by
    the parent's write-behind flusher), no dead flusher thread, and a
    per-pid segment writer of their own.
    """

    name = "multiprocess"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
        transport: "object | str | None" = None,
    ) -> None:
        from repro.serving.transport import resolve_transport

        install_fork_handlers()
        self.max_workers = int(max_workers) if max_workers is not None else available_workers()
        if self.max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} not available on this platform"
            )
        self.start_method = start_method
        #: How shard payloads and results cross the process boundary:
        #: ``"pickle"`` (default) or ``"shm"`` — see
        #: :mod:`repro.serving.transport`.  Spec strings select it inline,
        #: e.g. ``"multiprocess:4+shm"``.
        self.transport = resolve_transport(transport)

    def describe(self) -> dict[str, object]:
        return {
            "backend": self.name,
            "workers": self.max_workers,
            "transport": self.transport.name,
        }

    def _resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        if "fork" in multiprocessing.get_all_start_methods():
            return "fork"
        return multiprocessing.get_start_method()

    def map_shards(self, fn: ShardFn, items: Iterable[ItemT]) -> list:
        items = list(items)
        if not items:
            return []
        shards = shard_items(items, self.max_workers)
        if len(shards) == 1:
            return list(fn(items))
        method = self._resolved_start_method()
        context = multiprocessing.get_context(method)
        transport = self.transport
        payloads: list = []
        try:
            # Encoding happens inside the try: if shard N's segment creation
            # fails (e.g. /dev/shm exhaustion), shards 0..N-1 are released.
            for shard in shards:
                payloads.append(transport.encode_shard(shard))
            if method == "fork":
                token = next(_FN_TOKENS)
                _INHERITED_FNS[token] = (fn, transport)
                try:
                    with ProcessPoolExecutor(max_workers=len(shards), mp_context=context) as pool:
                        raw_results = list(
                            pool.map(_run_inherited_shard, itertools.repeat(token), payloads)
                        )
                finally:
                    _INHERITED_FNS.pop(token, None)
            else:
                with ProcessPoolExecutor(
                    max_workers=len(shards),
                    mp_context=context,
                    initializer=_init_pickled_worker,
                    initargs=(fn, transport),
                ) as pool:
                    raw_results = list(pool.map(_run_pickled_shard, payloads))
            shard_results = [transport.decode_results(raw) for raw in raw_results]
        finally:
            # Lifecycle backstop: every shard segment (and any result segment
            # a crashed worker left behind under its deterministic name) is
            # reclaimed whether the round-trip succeeded or not.
            for payload in payloads:
                transport.release(payload)
        return [result for shard in shard_results for result in shard]


_BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadedBackend.name: ThreadedBackend,
    MultiprocessBackend.name: MultiprocessBackend,
}


def resolve_backend(
    backend: "ExecutionBackend | str | None",
    default: ExecutionBackend | None = None,
) -> ExecutionBackend:
    """Normalise a backend argument into an :class:`ExecutionBackend`.

    Accepts an instance (returned unchanged), a spec string — ``"serial"``,
    ``"threaded"``, ``"multiprocess"``, optionally with a worker count as in
    ``"threaded:4"`` and, for the multiprocess backend, a shard transport as
    in ``"multiprocess:4+shm"`` (``+pickle`` | ``+shm`` | ``+tcp`` |
    ``+tcp://host:port[,host2:port2]``, see :mod:`repro.serving.transport`
    and :mod:`repro.serving.net`) — a typed
    :class:`~repro.serving.spec.BackendSpec` / :class:`~repro.serving.spec.
    ServingSpec` (resolved through its canonical string, so the two forms
    can never drift) — or ``None``, which resolves to *default* (falling
    back to a fresh :class:`SerialBackend`).
    """
    if backend is None:
        return default if default is not None else SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    from repro.serving.spec import BackendSpec, ServingSpec  # local: spec is leaf-level

    if isinstance(backend, ServingSpec):
        backend = backend.backend
    if isinstance(backend, BackendSpec):
        backend = str(backend)
    if isinstance(backend, str):
        base_spec, _, transport_name = backend.partition("+")
        name, _, workers = base_spec.partition(":")
        backend_class = _BACKENDS.get(name)
        if backend_class is None:
            raise ConfigurationError(
                f"unknown execution backend {backend!r}; "
                f"expected one of {sorted(_BACKENDS)} "
                f"(optionally 'name:workers' / 'multiprocess:workers+transport')"
            )
        try:
            max_workers = int(workers) if workers else None
        except ValueError as exc:
            raise ConfigurationError(f"invalid worker count in backend spec {backend!r}") from exc
        if transport_name:
            if backend_class is not MultiprocessBackend:
                raise ConfigurationError(
                    f"backend spec {backend!r} names a shard transport, but only the "
                    "multiprocess backend ships shards across a process boundary"
                )
            return MultiprocessBackend(max_workers=max_workers, transport=transport_name)
        return backend_class(max_workers=max_workers)
    raise ConfigurationError(
        f"backend must be an ExecutionBackend, a spec string, or None, got {type(backend).__name__}"
    )
