"""SLO controller: the cascade confidence threshold c as a control variable.

E10 measures the trade-off this module exploits: the confidence-gated
cascade spans roughly 2k columns/s (exhaustive) to 29k columns/s (c = 0.70)
at small accuracy deltas, because a lower c lets cheap steps satisfy more
columns before the expensive learned step runs.  Under overload that
trade-off is exactly what an operator wants made automatically: serve
*slightly shallower* answers fast instead of deep answers late (or not at
all).

:class:`SloController` closes the loop.  The annotation service feeds it one
end-to-end latency observation per served request (queue wait + batch
annotate time); when the observed tail latency breaches the configured
budget the controller steps c down toward a hard floor, and when the tail
recovers well below the budget it steps c back up toward the baseline it
started from.  Every transition is journaled with the evidence that caused
it, so "the service degraded between 14:02 and 14:05" is an auditable fact,
not an inference from throughput graphs.

Degradation deliberately breaks the serving layer's bit-parity contract —
that is the point, and why it lives behind this explicit opt-in controller
(see docs/ARCHITECTURE.md): unloaded traffic never degrades (c sits at the
baseline, predictions bit-identical to the serial path), and the journal
records every window in which results may differ.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Protocol

from repro.core.errors import ConfigurationError

__all__ = ["SloConfig", "SloController"]


class _CascadeControl(Protocol):  # pragma: no cover - typing only
    """What the controller needs from a SigmaTyper: get/set the threshold c."""

    @property
    def confidence_threshold(self) -> float: ...

    def set_confidence_threshold(self, confidence_threshold: float) -> None: ...


@dataclass
class SloConfig:
    """Budget, sensing window, and actuation bounds of the SLO controller."""

    #: End-to-end latency budget (seconds) for one request: queue wait plus
    #: its group's annotate call.  The controller defends this at the tail.
    latency_budget: float = 0.5
    #: Tail percentile the budget applies to (0.99 = p99).
    percentile: float = 0.99
    #: Recent request latencies the percentile is computed over.
    window: int = 128
    #: Observations required since the last adjustment before acting again —
    #: the controller never reacts to a tail it has not re-measured.
    min_samples: int = 16
    #: Seconds between adjustments (with ``min_samples``, damps oscillation).
    cooldown: float = 0.25
    #: c decrement per degrade step / increment per recover step.
    step: float = 0.05
    #: Hard floor for c: the cascade never gets shallower than this.
    min_confidence_threshold: float = 0.60
    #: Recover only when the tail is comfortably under budget (hysteresis):
    #: observed percentile < recover_ratio * latency_budget.
    recover_ratio: float = 0.6
    #: Journal entries kept (oldest dropped first).
    journal_limit: int = 256

    def validate(self) -> "SloConfig":
        if self.latency_budget <= 0:
            raise ConfigurationError("latency_budget must be positive")
        if not 0.0 < self.percentile <= 1.0:
            raise ConfigurationError("percentile must be in (0, 1]")
        if self.window < 2 or self.min_samples < 1:
            raise ConfigurationError("window must be >= 2 and min_samples >= 1")
        if self.min_samples > self.window:
            raise ConfigurationError("min_samples cannot exceed window")
        if self.cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        if self.step <= 0:
            raise ConfigurationError("step must be positive")
        if not 0.0 <= self.min_confidence_threshold <= 1.0:
            raise ConfigurationError("min_confidence_threshold must be in [0, 1]")
        if not 0.0 < self.recover_ratio < 1.0:
            raise ConfigurationError("recover_ratio must be in (0, 1)")
        if self.journal_limit < 1:
            raise ConfigurationError("journal_limit must be at least 1")
        return self


class SloController:
    """Steps the cascade threshold c down under load and back up as it drains.

    The controller is deliberately slow and bounded: it acts at most once per
    ``cooldown`` seconds, only after ``min_samples`` fresh observations, by a
    fixed ``step``, and never outside ``[min_confidence_threshold,
    baseline]``.  The baseline is the typer's threshold at construction time
    — full recovery restores exactly the configuration the operator deployed.
    """

    def __init__(self, typer: _CascadeControl, config: SloConfig | None = None) -> None:
        self.config = (config or SloConfig()).validate()
        self.typer = typer
        #: The operator-deployed c the controller recovers toward.
        self.baseline = float(typer.confidence_threshold)
        if self.baseline < self.config.min_confidence_threshold:
            raise ConfigurationError(
                "the typer's confidence threshold is already below "
                "min_confidence_threshold — nothing to degrade to"
            )
        self._latencies: deque[float] = deque(maxlen=self.config.window)
        self._since_adjust = 0
        self._last_adjust = -math.inf
        self._started = time.monotonic()
        self.degrade_steps = 0
        self.recover_steps = 0
        self.journal: deque[dict] = deque(maxlen=self.config.journal_limit)

    # ------------------------------------------------------------------ state
    @property
    def current(self) -> float:
        """The cascade's current confidence threshold c."""
        return float(self.typer.confidence_threshold)

    @property
    def is_degraded(self) -> bool:
        """Whether c currently sits below the deployed baseline."""
        return self.current < self.baseline - 1e-12

    def observed_percentile(self) -> float | None:
        """The configured percentile over the latency window (None if empty)."""
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        rank = max(0, math.ceil(self.config.percentile * len(ordered)) - 1)
        return ordered[rank]

    # ---------------------------------------------------------------- control
    def observe(self, latency_seconds: float) -> None:
        """Record one served request's end-to-end latency."""
        self._latencies.append(latency_seconds)
        self._since_adjust += 1

    def maybe_adjust(self, now: float | None = None) -> str | None:
        """Apply at most one control step; returns "degrade", "recover", or None.

        *now* (monotonic seconds) is injectable for tests; production callers
        leave it unset.
        """
        config = self.config
        if self._since_adjust < config.min_samples:
            return None
        if now is None:
            now = time.monotonic()
        if now - self._last_adjust < config.cooldown:
            return None
        observed = self.observed_percentile()
        if observed is None:
            return None
        current = self.current
        if observed > config.latency_budget and current > config.min_confidence_threshold:
            target = max(config.min_confidence_threshold, current - config.step)
            self._transition("degrade", current, target, observed, now)
            self.degrade_steps += 1
            return "degrade"
        if observed < config.recover_ratio * config.latency_budget and current < self.baseline:
            target = min(self.baseline, current + config.step)
            self._transition("recover", current, target, observed, now)
            self.recover_steps += 1
            return "recover"
        return None

    def _transition(
        self, action: str, from_c: float, to_c: float, observed: float, now: float
    ) -> None:
        self.typer.set_confidence_threshold(to_c)
        self._last_adjust = now
        self._since_adjust = 0
        self.journal.append(
            {
                "action": action,
                "from": round(from_c, 4),
                "to": round(to_c, 4),
                "observed_percentile_seconds": round(observed, 4),
                "latency_budget_seconds": self.config.latency_budget,
                "at_seconds": round(now - self._started, 3),
            }
        )

    # ----------------------------------------------------------------- report
    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable controller state for stats and benchmarks."""
        observed = self.observed_percentile()
        return {
            "confidence_threshold": round(self.current, 4),
            "baseline": round(self.baseline, 4),
            "degraded": self.is_degraded,
            "latency_budget_seconds": self.config.latency_budget,
            "observed_percentile_seconds": (
                round(observed, 4) if observed is not None else None
            ),
            "degrade_steps": self.degrade_steps,
            "recover_steps": self.recover_steps,
            "transitions": [dict(entry) for entry in self.journal],
        }
