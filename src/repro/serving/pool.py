"""Store-aware worker pool: N annotation processes behind one warm dispatcher.

:class:`AnnotationPool` is the multi-process sibling of
:class:`~repro.serving.service.AnnotationService` — same request surface
(``start`` / ``annotate`` / ``shutdown`` / ``summary``), so
:class:`~repro.serving.frontend.AnnotationFrontend` drives either one
unchanged (its ``pool=`` mode).  Underneath, the pool forks N worker
processes, each hosting its own :class:`AnnotationService` over a
:class:`~repro.serving.profile_store.PersistentProfileStore` that shares one
segment directory, and routes every request with **cache affinity**:

* **Warm routing.**  A :class:`WarmthIndex` maps ``Column.content_hash()``
  hex *prefixes* to the worker whose store last persisted (or last served)
  them — built by tailing the PR 4 sidecar index journals through
  :func:`~repro.serving.profile_store.read_index_journal`, plus a
  dispatch-time overlay (a worker's in-memory LRU is warm from the moment a
  request lands, well before its write-behind flush reaches the journal).
  A table whose prefixes vote for a live worker goes there (an *affinity
  hit*); a cold table is placed by rendezvous hashing, so the same content
  always elects the same worker without any coordination.
* **Load-balance escape hatch.**  When the warm worker's queue depth
  exceeds ``queue_depth_bound`` the request escapes to the least-loaded
  worker — affinity is a preference, not a hostage situation.
* **Pre-warm.**  Workers load their LRU from the shared on-disk segments at
  startup (:meth:`~repro.serving.profile_store.PersistentProfileStore.
  prewarm`), so a restarted worker serves its first request warm.
* **Supervision.**  A heartbeat task pings every worker and watches process
  liveness; a dead worker (crash, SIGKILL) is detected, its exit code
  collected, a replacement forked into the same slot, and every request
  that was in flight on it re-dispatched — callers never observe the death,
  and results stay bit-identical to a single-process run (derived state is
  deterministic; the store only ever gains entries).

Workers speak the SGN1 frame protocol of :mod:`repro.serving.net`
(``MSG_POOL_*`` messages, pickled payloads) over inherited socketpairs; the
``fork`` start method ships the typer by inheritance, so nothing is pickled
at spawn time.  Deadlines travel as absolute ``time.monotonic()`` values —
``CLOCK_MONOTONIC`` is system-wide on Linux, so parent and workers compare
against the same clock.

Configuration is the typed :class:`~repro.serving.spec.PoolSpec` /
:class:`~repro.serving.spec.ServingSpec` (or their string forms,
``"pool:4"`` / ``"pool:4@serial"``).  See docs/SERVING.md#worker-pool for
the operator guide and restart runbook.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import pickle
import shutil
import socket
import struct
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from hashlib import blake2b
from itertools import count
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServingError,
    ShutdownError,
)
from repro.serving.net import (
    FRAME_HEADER,
    FRAME_MAGIC,
    MSG_POOL_ERROR,
    MSG_POOL_PING,
    MSG_POOL_PONG,
    MSG_POOL_REQUEST,
    MSG_POOL_RESULT,
    FrameError,
)
from repro.serving.profile_store import journal_pid, read_index_journal
from repro.serving.spec import PoolSpec, ServingSpec, StoreSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sigmatyper import SigmaTyper
    from repro.core.table import Table, TablePrediction
    from repro.serving.slo import SloConfig

__all__ = ["AnnotationPool", "PoolStats", "WarmthIndex"]

#: Upper bound on one dispatcher<->worker frame (tables and predictions are
#: small; this is a corruption guard, not a quota).
_MAX_POOL_MESSAGE_BYTES = 64 << 20

#: Seconds a clean shutdown waits for one worker process to exit after its
#: socket EOF before escalating to terminate().
_JOIN_TIMEOUT = 5.0


# ---------------------------------------------------------------- warmth index
class WarmthIndex:
    """``content_hash`` prefix → worker slot, learned from two layers.

    The **journal layer** tails every sidecar index journal in the shared
    segment directory (:func:`read_index_journal`): a record appended by a
    registered worker pid marks that worker warm for the record's key
    prefix.  The **dispatch overlay** marks a prefix warm for a worker the
    moment the dispatcher routes it there — the worker's in-memory LRU holds
    the derived state immediately, long before the write-behind flush makes
    it durable, so repeat traffic sticks from the second request on.

    Journal pids map to slots through :meth:`register_pid`; historical pids
    are retained so a dead worker's flushed warmth still attributes to the
    slot its replacement inherits (the replacement pre-warms from the same
    segments).  A journal whose framing is lost is retired permanently
    (append-only streams cannot be resynced); journals from unregistered
    pids (a sibling store outside this pool) are skipped for warmth but
    their offsets still advance.
    """

    def __init__(self, directory: str | os.PathLike, prefix_len: int = 8) -> None:
        self.directory = Path(directory)
        self.prefix_len = prefix_len
        #: prefix → slot of the worker last known warm for it.
        self._prefix_slots: dict[str, int] = {}
        self._pid_slots: dict[int, int] = {}
        self._offsets: dict[Path, int] = {}
        self._dead_journals: set[Path] = set()

    def register_pid(self, pid: int, slot: int) -> None:
        """Attribute journal ``index-<pid>-*.idx`` appends to *slot*."""
        self._pid_slots[pid] = slot

    def note_dispatch(self, slot: int, prefixes: tuple[str, ...]) -> None:
        """Overlay: *slot* is warm for *prefixes* from this dispatch on."""
        for prefix in prefixes:
            self._prefix_slots[prefix] = slot

    def tail(self) -> int:
        """Ingest journal records appended since the last tail; returns count."""
        ingested = 0
        try:
            paths = sorted(self.directory.glob("index-*.idx"))
        except OSError:
            return 0
        for path in paths:
            if path in self._dead_journals:
                continue
            slot = self._pid_slots.get(journal_pid(path) or -1)
            try:
                entries, new_offset = read_index_journal(path, self._offsets.get(path, 0))
            except ValueError:
                self._dead_journals.add(path)
                continue
            except OSError:
                continue
            self._offsets[path] = new_offset
            if slot is None:
                continue
            for entry in entries:
                prefix = entry.key[: self.prefix_len]
                if entry.tombstone:
                    if self._prefix_slots.get(prefix) == slot:
                        self._prefix_slots.pop(prefix, None)
                else:
                    self._prefix_slots[prefix] = slot
                ingested += 1
        return ingested

    def warmth(self, prefixes: tuple[str, ...]) -> dict[int, int]:
        """Votes per slot: how many of *prefixes* each worker is warm for."""
        votes: dict[int, int] = {}
        for prefix in prefixes:
            slot = self._prefix_slots.get(prefix)
            if slot is not None:
                votes[slot] = votes.get(slot, 0) + 1
        return votes

    def per_worker_counts(self) -> dict[int, int]:
        """Warm-prefix count per slot (the per-worker warmth statistic)."""
        counts: dict[int, int] = {}
        for slot in self._prefix_slots.values():
            counts[slot] = counts.get(slot, 0) + 1
        return counts

    @property
    def warm_prefixes(self) -> int:
        return len(self._prefix_slots)


def _rendezvous_slot(key: str, slots: list[int]) -> int:
    """Highest-random-weight choice: same key → same slot, no coordination."""
    best_slot = slots[0]
    best_score = -1
    for slot in slots:
        digest = blake2b(f"{key}|{slot}".encode("utf-8"), digest_size=8).digest()
        score = int.from_bytes(digest, "big")
        if score > best_score:
            best_slot, best_score = slot, score
    return best_slot


# ----------------------------------------------------------------- pool stats
@dataclass
class PoolStats:
    """Aggregate dispatcher counters (the ``pool`` section of every report)."""

    requests_total: int = 0
    completed_total: int = 0
    errors_total: int = 0
    rejected_total: int = 0
    #: Requests refused up front by the front end's admission control; the
    #: front end mirrors its shed counters here (same contract as
    #: :class:`~repro.serving.service.ServiceStats`).
    shed_total: int = 0
    timed_out_total: int = 0
    #: Requests routed to a worker already warm for their content prefixes.
    affinity_hits: int = 0
    affinity_misses: int = 0
    #: Warm routings overridden by the load-balance hatch (queue too deep).
    escapes: int = 0
    #: In-flight requests re-sent to a replacement after a worker died.
    redispatches: int = 0
    #: Replacement workers forked into a dead worker's slot.
    restarts: int = 0
    worker_deaths: int = 0
    #: Wall-clock seconds from dispatch to completion, summed over requests.
    request_seconds_total: float = 0.0
    #: Per-slot snapshot (pid, liveness, queue depth, warm prefixes, last
    #: heartbeat report) refreshed by the heartbeat loop and ``summary()``.
    per_worker: dict[int, dict] = field(default_factory=dict)

    @property
    def affinity_hit_rate(self) -> float:
        """Fraction of routed requests that landed on a warm worker."""
        routed = self.affinity_hits + self.affinity_misses
        return self.affinity_hits / routed if routed else 0.0

    @property
    def mean_request_seconds(self) -> float:
        return (
            self.request_seconds_total / self.completed_total if self.completed_total else 0.0
        )

    @property
    def mean_batch_seconds(self) -> float:
        """Alias the front end's retry hint reads (per-request latency here)."""
        return self.mean_request_seconds

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation for logs and benchmarks."""
        return {
            "requests_total": self.requests_total,
            "completed_total": self.completed_total,
            "errors_total": self.errors_total,
            "rejected_total": self.rejected_total,
            "shed_total": self.shed_total,
            "timed_out_total": self.timed_out_total,
            "affinity_hits": self.affinity_hits,
            "affinity_misses": self.affinity_misses,
            "affinity_hit_rate": round(self.affinity_hit_rate, 4),
            "escapes": self.escapes,
            "redispatches": self.redispatches,
            "restarts": self.restarts,
            "worker_deaths": self.worker_deaths,
            "request_seconds_total": round(self.request_seconds_total, 4),
            "mean_request_seconds": round(self.mean_request_seconds, 4),
            "per_worker": {slot: dict(info) for slot, info in sorted(self.per_worker.items())},
        }


# -------------------------------------------------------------- frame helpers
async def _read_frame_async(
    reader: asyncio.StreamReader, max_message_bytes: int = _MAX_POOL_MESSAGE_BYTES
):
    """One SGN1 frame from a stream; ``None`` on clean EOF between frames."""
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("torn frame header") from exc
    try:
        magic, msg_type, length, crc = FRAME_HEADER.unpack(header)
    except struct.error as exc:  # pragma: no cover - size is exact
        raise FrameError("unreadable frame header") from exc
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > max_message_bytes:
        raise FrameError(f"frame of {length} bytes exceeds max_message_bytes")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("torn frame payload") from exc
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("frame crc mismatch (corrupt payload)")
    return msg_type, payload


async def _write_message(
    writer: asyncio.StreamWriter, lock: asyncio.Lock, msg_type: int, message: dict
) -> None:
    """Frame and send one pickled message (writes serialized per stream)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    header = FRAME_HEADER.pack(
        FRAME_MAGIC, msg_type, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    )
    async with lock:
        writer.write(header + payload)
        await writer.drain()


# ----------------------------------------------------------------- child side
def _pool_worker_main(
    child_sock: socket.socket,
    slot: int,
    typer: "SigmaTyper",
    service_kwargs: dict,
    store_spec: StoreSpec,
    prewarm: bool,
    close_fds: list[int],
) -> None:
    """Forked worker entry point: drop inherited fds, serve until EOF."""
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    try:
        asyncio.run(_worker_serve(child_sock, slot, typer, service_kwargs, store_spec, prewarm))
    finally:
        try:
            child_sock.close()
        except OSError:
            pass


async def _worker_serve(
    child_sock: socket.socket,
    slot: int,
    typer: "SigmaTyper",
    service_kwargs: dict,
    store_spec: StoreSpec,
    prewarm: bool,
) -> None:
    """Host one :class:`AnnotationService` behind the pool frame protocol."""
    from repro.core.table import set_active_profile_store
    from repro.serving.profile_store import PersistentProfileStore
    from repro.serving.service import AnnotationService

    store = store_spec.build()
    if prewarm and isinstance(store, PersistentProfileStore):
        store.prewarm()
    set_active_profile_store(store)
    service = AnnotationService(typer, **service_kwargs)
    await service.start()
    reader, writer = await asyncio.open_connection(sock=child_sock)
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()
    try:
        while True:
            try:
                frame = await _read_frame_async(reader)
            except (FrameError, ConnectionError, OSError):
                break
            if frame is None:
                break
            msg_type, payload = frame
            if msg_type == MSG_POOL_PING:
                pong = {
                    "slot": slot,
                    "pid": os.getpid(),
                    "service": service.stats.to_dict(),
                    "store": store.stats(),
                }
                await _write_message(writer, write_lock, MSG_POOL_PONG, pong)
            elif msg_type == MSG_POOL_REQUEST:
                request = pickle.loads(payload)
                task = asyncio.get_running_loop().create_task(
                    _serve_one(service, request, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
    finally:
        # EOF from the dispatcher is the drain signal: the parent only closes
        # its end once every in-flight request is settled, so normally there
        # is nothing left to await here — the gather is crash-path defence.
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        try:
            writer.close()
        except OSError:
            pass
        await service.shutdown()
        store.close()


async def _serve_one(
    service, request: dict, writer: asyncio.StreamWriter, lock: asyncio.Lock
) -> None:
    """Run one dispatched request and ship its result (or typed error) back."""
    request_id = request["id"]
    deadline_at = request.get("deadline_at")
    deadline = None
    if deadline_at is not None:
        deadline = max(0.0, deadline_at - time.monotonic())
    try:
        prediction = await service.annotate(
            request["table"], customer_id=request.get("customer_id"), deadline=deadline
        )
    except DeadlineExceededError as exc:
        reply = (MSG_POOL_ERROR, {"id": request_id, "kind": "deadline", "message": str(exc)})
    except ShutdownError as exc:
        reply = (MSG_POOL_ERROR, {"id": request_id, "kind": "shutdown", "message": str(exc)})
    except Exception as exc:  # noqa: BLE001 - surfaced to the dispatcher per request
        reply = (MSG_POOL_ERROR, {"id": request_id, "kind": "serving", "message": str(exc)})
    else:
        reply = (MSG_POOL_RESULT, {"id": request_id, "prediction": prediction})
    try:
        await _write_message(writer, lock, *reply)
    except (ConnectionError, OSError):
        pass  # dispatcher gone; its death handling owns the request now


# ---------------------------------------------------------------- parent side
class _PoolRequest:
    """One dispatched request and the future its caller awaits."""

    __slots__ = ("id", "table", "customer_id", "deadline_at", "future", "prefixes", "enqueued_at")

    def __init__(self, request_id, table, customer_id, deadline_at, future, prefixes, enqueued_at):
        self.id = request_id
        self.table = table
        self.customer_id = customer_id
        self.deadline_at = deadline_at
        self.future = future
        self.prefixes = prefixes
        self.enqueued_at = enqueued_at

    def payload(self) -> dict:
        return {
            "id": self.id,
            "table": self.table,
            "customer_id": self.customer_id,
            "deadline_at": self.deadline_at,
        }


class _Worker:
    """Parent-side handle for one worker process."""

    def __init__(self, slot, process, parent_sock, reader, writer, write_lock):
        self.slot = slot
        self.process = process
        self.parent_sock = parent_sock
        self.reader = reader
        self.writer = writer
        self.write_lock = write_lock
        self.reader_task: asyncio.Task | None = None
        #: request id → in-flight :class:`_PoolRequest` (the queue depth).
        self.inflight: dict[int, _PoolRequest] = {}
        #: Set once the worker is being retired (clean shutdown or death);
        #: makes the EOF path and the heartbeat path race-free.
        self.retired = False
        self.last_pong: dict | None = None
        self.exitcode: int | None = None


class AnnotationPool:
    """N forked :class:`AnnotationService` workers behind one warm dispatcher.

    Same request surface as the service it multiplies —
    :attr:`is_running` / :meth:`start` / :meth:`annotate` / :meth:`shutdown`
    / :meth:`summary` — so :class:`~repro.serving.frontend.AnnotationFrontend`
    accepts one via its ``pool=`` keyword.  See the module docstring for the
    routing and supervision design.

    Parameters
    ----------
    typer:
        The (pretrained) system every worker serves, shipped by fork
        inheritance — workers produce bit-identical predictions to calling
        ``typer.annotate`` directly.
    workers:
        Worker count, or the typed/string spec forms: a
        :class:`~repro.serving.spec.PoolSpec` (routing knobs), a
        :class:`~repro.serving.spec.ServingSpec` or string (``"pool:4"``,
        ``"pool:4@serial"`` — the backend part becomes each worker's
        in-process execution backend).
    directory:
        Shared segment directory for the workers' persistent stores.  By
        default the pool creates (and removes at shutdown) a temporary one;
        point it at a durable path to keep warmth across pool restarts.
    store:
        Optional :class:`~repro.serving.spec.StoreSpec` tuning the workers'
        stores (flush cadence, LRU size...); its directory is overridden by
        the pool's shared directory.
    max_batch_size / max_batch_delay / backend:
        Forwarded to each worker's :class:`AnnotationService`.
    slo:
        Optional :class:`~repro.serving.slo.SloConfig` — each worker builds
        its own controller from it (a live controller cannot span
        processes).
    """

    def __init__(
        self,
        typer: "SigmaTyper",
        workers: "int | str | PoolSpec | ServingSpec" = 2,
        *,
        directory: str | os.PathLike | None = None,
        store: StoreSpec | None = None,
        max_batch_size: int = 32,
        max_batch_delay: float = 0.005,
        backend=None,
        slo: "SloConfig | None" = None,
    ) -> None:
        spec = self._normalise(workers)
        if backend is not None:
            from dataclasses import replace

            from repro.serving.spec import BackendSpec

            if isinstance(backend, str):
                backend = BackendSpec.parse(backend)
            if isinstance(backend, BackendSpec):
                spec = replace(spec, backend=backend)
            else:
                raise ConfigurationError(
                    "pool backend must be a spec string or BackendSpec (worker "
                    "processes cannot inherit a live backend instance)"
                )
        if slo is not None:
            from repro.serving.slo import SloConfig

            if not isinstance(slo, SloConfig):
                raise ConfigurationError(
                    "pool slo must be an SloConfig (each worker builds its own "
                    "controller; a live SloController cannot span processes)"
                )
        self.typer = typer
        self.spec = spec
        self.pool_spec: PoolSpec = spec.pool  # type: ignore[assignment]
        self.stats = PoolStats()
        self._store_spec = store if store is not None else StoreSpec()
        self._directory = Path(directory) if directory is not None else None
        self._owns_directory = False
        self._service_kwargs = {
            "max_batch_size": max_batch_size,
            "max_batch_delay": max_batch_delay,
            "backend": str(spec.backend) if spec.backend.name != "serial" else None,
            "slo": slo,
        }
        self._workers: list[_Worker] = []
        self._warmth: WarmthIndex | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._accepting = False
        self._started = False
        self._draining = False
        self._ids = count(1)
        self._rr_next = 0

    @staticmethod
    def _normalise(workers) -> ServingSpec:
        if isinstance(workers, int):
            return ServingSpec(pool=PoolSpec(workers=workers))
        if isinstance(workers, PoolSpec):
            return ServingSpec(pool=workers)
        if isinstance(workers, str):
            workers = ServingSpec.parse(workers)
        if isinstance(workers, ServingSpec):
            if workers.pool is None:
                raise ConfigurationError(
                    f"serving spec {str(workers)!r} names no pool section; "
                    "use 'pool:N' or 'pool:N@<backend>'"
                )
            return workers
        raise ConfigurationError(
            "workers must be an int, a PoolSpec, a ServingSpec, or a spec string"
        )

    # ---------------------------------------------------------------- lifecycle
    @property
    def is_running(self) -> bool:
        """Whether the dispatcher is up and accepting requests."""
        return self._accepting

    @property
    def directory(self) -> Path | None:
        """The shared segment directory (set at :meth:`start` when owned)."""
        return self._directory

    async def start(self) -> "AnnotationPool":
        """Fork the workers, seed the warmth index, start supervision."""
        if self._started:
            raise ServingError("AnnotationPool is already running")
        self._started = True
        loop = asyncio.get_running_loop()
        if self._directory is None:
            path = await loop.run_in_executor(None, tempfile.mkdtemp, "", "repro-pool-")
            self._directory = Path(path)
            self._owns_directory = True
        self._warmth = WarmthIndex(self._directory, prefix_len=self.pool_spec.prefix_len)
        for slot in range(self.pool_spec.workers):
            self._workers.append(await self._spawn(slot))
        await loop.run_in_executor(None, self._warmth.tail)
        self._accepting = True
        self._heartbeat_task = loop.create_task(self._heartbeat_loop())
        return self

    async def shutdown(self, drain_timeout: float | None = None) -> None:
        """Drain in-flight requests, EOF every worker, reap the processes.

        Same drain contract as the service: ``None`` waits out everything in
        flight; a bounded drain fails whatever remains past the budget with
        a typed :class:`ShutdownError`.  Idempotent.
        """
        if not self._started or self._draining:
            return
        if drain_timeout is not None and drain_timeout < 0:
            raise ConfigurationError("drain_timeout must be non-negative")
        self._accepting = False
        self._draining = True
        loop = asyncio.get_running_loop()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        futures = [
            pending.future
            for worker in self._workers
            for pending in worker.inflight.values()
            if not pending.future.done()
        ]
        if futures:
            await asyncio.wait(futures, timeout=drain_timeout)
        for worker in self._workers:
            worker.retired = True
            for pending in list(worker.inflight.values()):
                if not pending.future.done():
                    pending.future.set_exception(
                        ShutdownError("AnnotationPool shut down before serving this request")
                    )
                    self.stats.rejected_total += 1
            worker.inflight.clear()
            try:
                worker.writer.close()
            except OSError:
                pass
        for worker in self._workers:
            await loop.run_in_executor(None, self._reap, worker)
            worker.exitcode = worker.process.exitcode
            if worker.reader_task is not None:
                worker.reader_task.cancel()
                try:
                    await worker.reader_task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
        if self._owns_directory and self._directory is not None:
            await loop.run_in_executor(
                None, lambda: shutil.rmtree(self._directory, ignore_errors=True)
            )

    @staticmethod
    def _reap(worker: _Worker) -> None:
        """Join one worker process, escalating to terminate if it lingers."""
        worker.process.join(_JOIN_TIMEOUT)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(_JOIN_TIMEOUT)

    async def __aenter__(self) -> "AnnotationPool":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    # ----------------------------------------------------------------- spawning
    def _fork_worker(self, slot: int, sibling_fds: list[int]):
        """Fork one worker (runs on an executor thread — the child's main
        thread must not hold a running event loop)."""
        parent_sock, child_sock = socket.socketpair()
        try:
            context = multiprocessing.get_context("fork")
            process = context.Process(
                target=_pool_worker_main,
                args=(
                    child_sock,
                    slot,
                    self.typer,
                    self._service_kwargs,
                    self._worker_store_spec(),
                    self.pool_spec.prewarm,
                    sibling_fds + [parent_sock.fileno()],
                ),
                daemon=True,
            )
            process.start()
        except BaseException:
            parent_sock.close()
            child_sock.close()
            raise
        child_sock.close()
        return process, parent_sock

    def _worker_store_spec(self) -> StoreSpec:
        from dataclasses import replace

        return replace(
            self._store_spec, directory=str(self._directory), share_across_processes=True
        )

    def _sibling_fds(self) -> list[int]:
        """Parent-side socket fds a new child must close after fork — its
        copies would otherwise keep dead siblings' EOFs from ever firing."""
        fds = []
        for worker in self._workers:
            if worker is None or worker.retired:
                continue
            try:
                fd = worker.parent_sock.fileno()
            except OSError:
                continue
            if fd >= 0:
                fds.append(fd)
        return fds

    async def _spawn(self, slot: int) -> _Worker:
        loop = asyncio.get_running_loop()
        process, parent_sock = await loop.run_in_executor(
            None, self._fork_worker, slot, self._sibling_fds()
        )
        assert self._warmth is not None
        self._warmth.register_pid(process.pid, slot)
        reader, writer = await asyncio.open_connection(sock=parent_sock)
        worker = _Worker(slot, process, parent_sock, reader, writer, asyncio.Lock())
        worker.reader_task = loop.create_task(self._reader_loop(worker))
        return worker

    # ------------------------------------------------------------------ routing
    def _prefixes(self, table: "Table") -> tuple[str, ...]:
        plen = self.pool_spec.prefix_len
        return tuple(dict.fromkeys(column.content_hash()[:plen] for column in table.columns))

    def _alive_workers(self) -> list[_Worker]:
        return [worker for worker in self._workers if not worker.retired]

    def _route(self, prefixes: tuple[str, ...]) -> tuple[_Worker, bool]:
        """Pick the worker for one request; returns ``(worker, warm_hit)``."""
        assert self._warmth is not None
        alive = self._alive_workers()
        if not alive:
            raise ServingError("AnnotationPool has no live workers")
        if self.pool_spec.routing == "round-robin":
            worker = alive[self._rr_next % len(alive)]
            self._rr_next += 1
            return worker, self._warmth.warmth(prefixes).get(worker.slot, 0) > 0
        votes = self._warmth.warmth(prefixes)
        by_slot = {worker.slot: worker for worker in alive}
        preferred: _Worker | None = None
        live_votes = {slot: n for slot, n in votes.items() if slot in by_slot}
        if live_votes:
            # Most votes wins; ties break to the lowest slot (deterministic).
            best_slot = min(live_votes, key=lambda slot: (-live_votes[slot], slot))
            preferred = by_slot[best_slot]
        if preferred is None:
            key = prefixes[0] if prefixes else ""
            preferred = by_slot[_rendezvous_slot(key, sorted(by_slot))]
        worker = preferred
        if len(worker.inflight) >= self.pool_spec.queue_depth_bound:
            least = min(alive, key=lambda w: (len(w.inflight), w.slot))
            if least is not worker:
                worker = least
                self.stats.escapes += 1
        return worker, votes.get(worker.slot, 0) > 0

    # ----------------------------------------------------------------- requests
    async def annotate(
        self,
        table: "Table",
        customer_id: str | None = None,
        deadline: float | None = None,
    ) -> "TablePrediction":
        """Annotate one table on a (preferably warm) worker.

        Identical results to ``SigmaTyper.annotate`` per request — same
        typer, same deterministic pipeline, whichever worker runs it.  The
        deadline contract matches the service's: the budget covers dispatch,
        the worker's queue, and its cascade.
        """
        if not self._accepting:
            self.stats.rejected_total += 1
            raise ServingError("AnnotationPool is not accepting requests")
        if deadline is not None and deadline < 0:
            raise ConfigurationError("deadline must be non-negative")
        now = time.monotonic()
        deadline_at = now + deadline if deadline is not None else None
        prefixes = self._prefixes(table)
        worker, warm_hit = self._route(prefixes)
        if warm_hit:
            self.stats.affinity_hits += 1
        else:
            self.stats.affinity_misses += 1
        assert self._warmth is not None
        self._warmth.note_dispatch(worker.slot, prefixes)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        pending = _PoolRequest(
            next(self._ids), table, customer_id, deadline_at, future, prefixes, now
        )
        worker.inflight[pending.id] = pending
        self.stats.requests_total += 1
        await self._send(worker, MSG_POOL_REQUEST, pending.payload())
        try:
            if deadline_at is None:
                return await future
            try:
                return await asyncio.wait_for(future, max(0.0, deadline_at - time.monotonic()))
            except asyncio.TimeoutError:
                self.stats.timed_out_total += 1
                raise DeadlineExceededError(
                    f"request exceeded its {deadline:.3f}s latency budget"
                ) from None
        finally:
            self._forget(pending)

    def _forget(self, pending: _PoolRequest) -> None:
        """Drop a settled request from whichever worker currently holds it."""
        for worker in self._workers:
            if worker.inflight.get(pending.id) is pending:
                del worker.inflight[pending.id]
                return

    async def _send(self, worker: _Worker, msg_type: int, message: dict) -> None:
        try:
            await _write_message(worker.writer, worker.write_lock, msg_type, message)
        except (ConnectionError, OSError):
            # The worker just died mid-write: its reader loop observes the
            # EOF and the death path re-dispatches everything in flight.
            pass

    # -------------------------------------------------------------- supervision
    async def _reader_loop(self, worker: _Worker) -> None:
        try:
            while True:
                try:
                    frame = await _read_frame_async(worker.reader)
                except (FrameError, ConnectionError, OSError):
                    break
                if frame is None:
                    break
                msg_type, payload = frame
                message = pickle.loads(payload)
                if msg_type == MSG_POOL_RESULT:
                    pending = worker.inflight.pop(message["id"], None)
                    if pending is not None and not pending.future.done():
                        pending.future.set_result(message["prediction"])
                        self.stats.completed_total += 1
                        self.stats.request_seconds_total += (
                            time.monotonic() - pending.enqueued_at
                        )
                elif msg_type == MSG_POOL_ERROR:
                    pending = worker.inflight.pop(message["id"], None)
                    if pending is not None and not pending.future.done():
                        pending.future.set_exception(self._error_for(message))
                elif msg_type == MSG_POOL_PONG:
                    worker.last_pong = message
        finally:
            await self._on_worker_exit(worker)

    def _error_for(self, message: dict) -> ServingError:
        kind = message.get("kind", "serving")
        text = message.get("message", "annotation failed")
        if kind == "deadline":
            return DeadlineExceededError(text)
        if kind == "shutdown":
            return ShutdownError(text)
        self.stats.errors_total += 1
        return ServingError(text)

    async def _heartbeat_loop(self) -> None:
        interval = self.pool_spec.heartbeat_interval
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            assert self._warmth is not None
            await loop.run_in_executor(None, self._warmth.tail)
            for worker in list(self._workers):
                if worker.retired:
                    continue
                if not worker.process.is_alive():
                    await self._on_worker_exit(worker)
                    continue
                await self._send(worker, MSG_POOL_PING, {})
            self._refresh_per_worker()

    async def _on_worker_exit(self, worker: _Worker) -> None:
        """Death path: reap, optionally restart in place, re-dispatch."""
        if worker.retired:
            return
        worker.retired = True
        loop = asyncio.get_running_loop()
        try:
            worker.writer.close()
        except OSError:
            pass
        if worker.reader_task is not None and worker.reader_task is not asyncio.current_task():
            worker.reader_task.cancel()
        await loop.run_in_executor(None, self._reap, worker)
        worker.exitcode = worker.process.exitcode
        captured = [
            pending for pending in worker.inflight.values() if not pending.future.done()
        ]
        worker.inflight.clear()
        if self._draining or not self._started:
            self._fail_all(captured)
            return
        self.stats.worker_deaths += 1
        if not self.pool_spec.restart:
            self._fail_all(captured)
            return
        replacement = await self._spawn(worker.slot)
        self._workers[worker.slot] = replacement
        self.stats.restarts += 1
        for pending in captured:
            replacement.inflight[pending.id] = pending
            self.stats.redispatches += 1
            await self._send(replacement, MSG_POOL_REQUEST, pending.payload())

    def _fail_all(self, captured: list[_PoolRequest]) -> None:
        for pending in captured:
            if not pending.future.done():
                pending.future.set_exception(
                    ShutdownError("worker died and the pool is not restarting it")
                )
                self.stats.errors_total += 1

    # ------------------------------------------------------------------- report
    def _refresh_per_worker(self) -> None:
        warm_counts = self._warmth.per_worker_counts() if self._warmth is not None else {}
        snapshot: dict[int, dict] = {}
        for worker in self._workers:
            info: dict[str, object] = {
                "pid": worker.process.pid,
                "alive": not worker.retired,
                "inflight": len(worker.inflight),
                "warm_prefixes": warm_counts.get(worker.slot, 0),
                "exitcode": worker.exitcode,
            }
            if worker.last_pong is not None:
                info["store"] = worker.last_pong.get("store")
                info["service"] = worker.last_pong.get("service")
            snapshot[worker.slot] = info
        self.stats.per_worker = snapshot

    def summary(self) -> dict[str, object]:
        """Pool-level report in the unified :func:`render_stats` shape.

        ``pool`` is the canonical section; ``stats`` aliases it for one
        release (see docs/SERVING.md#stats-vocabulary).
        """
        from repro.serving.stats import render_stats

        self._refresh_per_worker()
        report: dict[str, object] = {
            "running": self.is_running,
            "workers": self.pool_spec.workers,
            "routing": self.pool_spec.routing,
            "spec": str(self.spec),
            "directory": str(self._directory) if self._directory is not None else None,
        }
        report.update(render_stats(pool=self))
        report["stats"] = report["pool"]
        return report
