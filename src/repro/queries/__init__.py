"""Semantics from queries (Section 5 future work): SQL usage signals as a
prior over semantic column types."""

from repro.queries.parser import ColumnUsage, QueryLog, analyze_queries
from repro.queries.reranker import QueryAwareReranker, QueryRerankerConfig

__all__ = [
    "ColumnUsage",
    "QueryLog",
    "analyze_queries",
    "QueryAwareReranker",
    "QueryRerankerConfig",
]
