"""Lightweight SQL query-log analysis (Section 5, "Semantics from queries").

The paper's future-work section argues that an important and so-far ignored
source of table semantics is *what users do with a table*: the SQL queries
they run.  A column that is summed is a measure; a column used as a join key
or in ``COUNT(DISTINCT ...)`` behaves like an identifier; a column in
``GROUP BY`` is a dimension; a column compared against date literals is
temporal.

This module extracts those *usage signals* from a log of SQL query strings
with a deliberately small, dependency-free parser: regular expressions over
normalised SQL, sufficient for the analytical SELECT statements a BI tool like
Sigma issues.  The output is a :class:`ColumnUsage` profile per column name,
which :mod:`repro.queries.reranker` turns into a prior over semantic types.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["ColumnUsage", "QueryLog", "analyze_queries"]

_AGGREGATES_NUMERIC = ("sum", "avg", "stddev", "variance")
_IDENTIFIER_RE = r"[A-Za-z_][A-Za-z0-9_]*"
_COLUMN_REF_RE = rf"(?:{_IDENTIFIER_RE}\.)?({_IDENTIFIER_RE})"

_NUMERIC_AGG_PATTERN = re.compile(
    rf"\b({'|'.join(_AGGREGATES_NUMERIC)})\s*\(\s*{_COLUMN_REF_RE}\s*\)", re.IGNORECASE
)
_MIN_MAX_PATTERN = re.compile(rf"\b(min|max)\s*\(\s*{_COLUMN_REF_RE}\s*\)", re.IGNORECASE)
_COUNT_DISTINCT_PATTERN = re.compile(
    rf"\bcount\s*\(\s*distinct\s+{_COLUMN_REF_RE}\s*\)", re.IGNORECASE
)
_GROUP_BY_PATTERN = re.compile(r"\bgroup\s+by\s+(.+?)(?:\border\s+by\b|\bhaving\b|\blimit\b|;|$)",
                               re.IGNORECASE | re.DOTALL)
_ORDER_BY_PATTERN = re.compile(r"\border\s+by\s+(.+?)(?:\blimit\b|;|$)", re.IGNORECASE | re.DOTALL)
_JOIN_ON_PATTERN = re.compile(
    rf"\bon\s+{_COLUMN_REF_RE}\s*=\s*{_COLUMN_REF_RE}", re.IGNORECASE
)
_WHERE_DATE_PATTERN = re.compile(
    rf"{_COLUMN_REF_RE}\s*(?:[<>=]+|between)\s*(?:date\s*)?'(\d{{4}}-\d{{2}}-\d{{2}})",
    re.IGNORECASE,
)
_WHERE_EQUALITY_PATTERN = re.compile(rf"{_COLUMN_REF_RE}\s*=\s*'[^']*'", re.IGNORECASE)
_LIKE_PATTERN = re.compile(rf"{_COLUMN_REF_RE}\s+like\s+'([^']*)'", re.IGNORECASE)


@dataclass
class ColumnUsage:
    """How one column (by name) is used across a query log."""

    column_name: str
    #: Number of queries mentioning the column at all.
    mentions: int = 0
    #: SUM/AVG/STDDEV aggregations — strong "numeric measure" signal.
    numeric_aggregations: int = 0
    #: MIN/MAX aggregations (weaker: also common on dates and strings).
    extremal_aggregations: int = 0
    #: COUNT(DISTINCT col) usages — identifier-ish.
    distinct_counts: int = 0
    #: Appearances in GROUP BY — dimension / categorical signal.
    group_by_uses: int = 0
    #: Appearances in ORDER BY.
    order_by_uses: int = 0
    #: Usages as a join key (either side of an ON equality).
    join_key_uses: int = 0
    #: Comparisons against date literals — temporal signal.
    date_comparisons: int = 0
    #: Equality filters against string literals — categorical signal.
    equality_filters: int = 0
    #: LIKE patterns applied to the column.
    like_patterns: list[str] = field(default_factory=list)

    @property
    def is_measure_like(self) -> bool:
        """Summed/averaged at least as often as it is grouped by."""
        return self.numeric_aggregations > 0 and self.numeric_aggregations >= self.group_by_uses

    @property
    def is_dimension_like(self) -> bool:
        """Grouped or equality-filtered more than it is aggregated."""
        return (self.group_by_uses + self.equality_filters) > self.numeric_aggregations

    @property
    def is_identifier_like(self) -> bool:
        """Used as a join key or counted distinctly."""
        return self.join_key_uses > 0 or self.distinct_counts > 0

    @property
    def is_temporal_like(self) -> bool:
        """Compared against date literals at least once."""
        return self.date_comparisons > 0


class QueryLog:
    """An append-only log of SQL query strings issued against the user's tables."""

    def __init__(self, queries: Iterable[str] = ()) -> None:
        self._queries: list[str] = [q for q in queries if q and q.strip()]

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._queries)

    def add(self, query: str) -> None:
        """Record one query (blank strings are ignored)."""
        if query and query.strip():
            self._queries.append(query)

    def extend(self, queries: Iterable[str]) -> None:
        """Record several queries."""
        for query in queries:
            self.add(query)

    def analyze(self, column_names: Iterable[str] | None = None) -> dict[str, ColumnUsage]:
        """Extract per-column usage profiles; see :func:`analyze_queries`."""
        return analyze_queries(self._queries, column_names=column_names)


def _normalise(query: str) -> str:
    return re.sub(r"\s+", " ", query.strip())


def _split_column_list(fragment: str) -> list[str]:
    columns = []
    for part in fragment.split(","):
        cleaned = part.strip().strip("`\"[]")
        if not cleaned:
            continue
        cleaned = re.sub(r"\s+(asc|desc)$", "", cleaned, flags=re.IGNORECASE)
        if re.fullmatch(r"\d+", cleaned):
            continue
        match = re.fullmatch(_COLUMN_REF_RE, cleaned)
        if match:
            columns.append(match.group(1))
    return columns


def analyze_queries(
    queries: Iterable[str],
    column_names: Iterable[str] | None = None,
) -> dict[str, ColumnUsage]:
    """Build :class:`ColumnUsage` profiles from raw SQL strings.

    Parameters
    ----------
    column_names:
        When given, only these columns are profiled (matched
        case-insensitively); otherwise every referenced identifier gets a
        profile.  Passing the table's actual headers avoids attributing usage
        of unrelated tables' columns.
    """
    restrict = None
    if column_names is not None:
        restrict = {name.lower(): name for name in column_names}
    usages: dict[str, ColumnUsage] = {}

    def bucket(raw_name: str) -> ColumnUsage | None:
        key = raw_name.lower()
        if restrict is not None:
            if key not in restrict:
                return None
            canonical = restrict[key]
        else:
            canonical = raw_name
        if canonical not in usages:
            usages[canonical] = ColumnUsage(column_name=canonical)
        return usages[canonical]

    for raw_query in queries:
        query = _normalise(raw_query)
        lowered = query.lower()
        mentioned: set[str] = set()

        for pattern, attribute in (
            (_NUMERIC_AGG_PATTERN, "numeric_aggregations"),
            (_MIN_MAX_PATTERN, "extremal_aggregations"),
        ):
            for match in pattern.finditer(query):
                usage = bucket(match.group(2))
                if usage:
                    setattr(usage, attribute, getattr(usage, attribute) + 1)
                    mentioned.add(usage.column_name)
        for match in _COUNT_DISTINCT_PATTERN.finditer(query):
            usage = bucket(match.group(1))
            if usage:
                usage.distinct_counts += 1
                mentioned.add(usage.column_name)
        for clause_pattern, attribute in ((_GROUP_BY_PATTERN, "group_by_uses"), (_ORDER_BY_PATTERN, "order_by_uses")):
            clause = clause_pattern.search(query)
            if clause:
                for name in _split_column_list(clause.group(1)):
                    usage = bucket(name)
                    if usage:
                        setattr(usage, attribute, getattr(usage, attribute) + 1)
                        mentioned.add(usage.column_name)
        for match in _JOIN_ON_PATTERN.finditer(query):
            for name in (match.group(1), match.group(2)):
                usage = bucket(name)
                if usage:
                    usage.join_key_uses += 1
                    mentioned.add(usage.column_name)
        for match in _WHERE_DATE_PATTERN.finditer(query):
            usage = bucket(match.group(1))
            if usage:
                usage.date_comparisons += 1
                mentioned.add(usage.column_name)
        for match in _WHERE_EQUALITY_PATTERN.finditer(query):
            usage = bucket(match.group(1))
            if usage:
                usage.equality_filters += 1
                mentioned.add(usage.column_name)
        for match in _LIKE_PATTERN.finditer(query):
            usage = bucket(match.group(1))
            if usage:
                usage.like_patterns.append(match.group(2))
                mentioned.add(usage.column_name)

        # Generic mention counting for restricted columns (word-boundary match).
        if restrict is not None:
            for key, canonical in restrict.items():
                if re.search(rf"\b{re.escape(key)}\b", lowered):
                    usage = bucket(canonical)
                    if usage:
                        mentioned.add(canonical)
        for name in mentioned:
            usages[name].mentions += 1
    return usages
