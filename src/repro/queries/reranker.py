"""Query-aware re-ranking of column type predictions.

Turns the usage profiles extracted by :mod:`repro.queries.parser` into a
prior over semantic types and applies it to a column's candidate ranking:
candidates whose expected data kind contradicts how users query the column
are damped, candidates it supports are boosted.  The signal is deliberately a
*prior*, not a step of its own — query logs are sparse and biased toward the
tables analysts already understand — so it can only shift, never create,
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ontology import DataKind, TypeOntology
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.queries.parser import ColumnUsage

__all__ = ["QueryRerankerConfig", "QueryAwareReranker"]


@dataclass
class QueryRerankerConfig:
    """Strength of the query prior."""

    #: Multiplicative boost for candidates the usage profile supports.
    boost: float = 1.15
    #: Multiplicative damping for candidates the usage profile contradicts.
    damp: float = 0.7
    #: Ignore profiles with fewer than this many query mentions.
    min_mentions: int = 1


class QueryAwareReranker:
    """Adjusts candidate confidences using SQL usage signals."""

    #: Identifier-flavoured types boosted for join keys / COUNT(DISTINCT).
    _IDENTIFIER_TYPES = frozenset(
        {"id", "order_id", "customer_id", "product_id", "patient_id", "uuid",
         "transaction_id", "invoice_number", "sku", "code", "account_number"}
    )

    def __init__(self, ontology: TypeOntology, config: QueryRerankerConfig | None = None) -> None:
        self.ontology = ontology
        self.config = config or QueryRerankerConfig()

    # --------------------------------------------------------------- reranking
    def rerank_scores(self, scores: list[TypeScore], usage: ColumnUsage | None) -> list[TypeScore]:
        """Return a new ranking with the query prior applied."""
        if not scores or usage is None or usage.mentions < self.config.min_mentions:
            return list(scores)
        adjusted = []
        for score in scores:
            factor = self._factor_for(score.type_name, usage)
            adjusted.append(TypeScore(confidence=min(score.confidence * factor, 1.0), type_name=score.type_name))
        adjusted.sort(key=lambda s: (-s.confidence, s.type_name))
        return adjusted

    def rerank_prediction(
        self, prediction: TablePrediction, usages: dict[str, ColumnUsage]
    ) -> TablePrediction:
        """Apply the prior to every column of a table prediction."""
        columns = []
        for column_prediction in prediction.columns:
            usage = usages.get(column_prediction.column_name)
            columns.append(
                ColumnPrediction(
                    column_index=column_prediction.column_index,
                    column_name=column_prediction.column_name,
                    scores=self.rerank_scores(column_prediction.scores, usage),
                    source_step=column_prediction.source_step + "+queries" if usage else column_prediction.source_step,
                    abstained=column_prediction.abstained,
                    step_scores=column_prediction.step_scores,
                )
            )
        return TablePrediction(
            table_name=prediction.table_name,
            columns=columns,
            step_trace=dict(prediction.step_trace),
            step_seconds=dict(prediction.step_seconds),
        )

    # ------------------------------------------------------------------ priors
    def _factor_for(self, type_name: str, usage: ColumnUsage) -> float:
        if type_name not in self.ontology:
            return 1.0
        kind = self.ontology.get(type_name).kind
        config = self.config
        factor = 1.0
        if usage.is_measure_like:
            factor *= config.boost if kind is DataKind.NUMERIC else config.damp
        if usage.is_temporal_like:
            factor *= config.boost if kind is DataKind.TEMPORAL else config.damp
        if usage.is_identifier_like:
            factor *= config.boost if type_name in self._IDENTIFIER_TYPES else 1.0
        if usage.is_dimension_like and kind is DataKind.NUMERIC and not usage.is_measure_like:
            # Grouped/filtered but never aggregated: numeric measures are unlikely.
            factor *= config.damp
        return factor
