"""Value-lookup pipeline step (step 2 of Fig. 4).

Triggered for the columns whose header-matching confidence did not reach the
cascade threshold, this step matches a sample of the column values against

1. the labeling functions of the global and local models (obtained through
   DPBD, Section 4.2),
2. the knowledge base (the offline DBpedia substitute), and
3. the regular-expression rule set (expandable on user input).

Per the paper, "the fraction of values that matched a type is returned as the
confidence for that type."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.pipeline import PipelineStep
from repro.core.prediction import TypeScore
from repro.core.table import Column, Table
from repro.core.timings import stage
from repro.lookup.knowledge_base import KnowledgeBase
from repro.lookup.labeling_functions import LabelingFunctionStore, LFContext
from repro.lookup.regex_library import RegexLibrary

__all__ = ["ValueLookupConfig", "ValueLookupStep"]


@dataclass
class ValueLookupConfig:
    """Tuning knobs of the value-lookup step."""

    #: Number of values sampled per column before matching.
    sample_size: int = 50
    #: Candidates reported per column.
    top_k: int = 5
    #: Minimum fraction for a type to be reported at all.
    min_confidence: float = 0.3
    #: Sampling seed (kept fixed so predictions are reproducible).
    seed: int = 17

    def validate(self) -> None:
        if self.sample_size < 1:
            raise ConfigurationError("sample_size must be at least 1")
        if self.top_k < 1:
            raise ConfigurationError("top_k must be at least 1")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigurationError("min_confidence must be in [0, 1]")


class ValueLookupStep(PipelineStep):
    """Labeling functions + knowledge base + regular expressions."""

    name = "value_lookup"
    cost_rank = 1

    def __init__(
        self,
        knowledge_base: KnowledgeBase | None = None,
        regex_library: RegexLibrary | None = None,
        labeling_functions: LabelingFunctionStore | None = None,
        config: ValueLookupConfig | None = None,
    ) -> None:
        self.knowledge_base = knowledge_base if knowledge_base is not None else KnowledgeBase.default()
        self.regex_library = regex_library if regex_library is not None else RegexLibrary()
        self.labeling_functions = labeling_functions if labeling_functions is not None else LabelingFunctionStore()
        self.config = config or ValueLookupConfig()
        self.config.validate()

    # ------------------------------------------------------------- prediction
    def predict_column(
        self, column: Column, table: Table | None = None, column_index: int | None = None
    ) -> list[TypeScore]:
        """Rank candidate types for one column from its sampled values."""
        with stage("lookup"):
            return self._predict_column(column, table, column_index)

    def _predict_column(
        self, column: Column, table: Table | None, column_index: int | None
    ) -> list[TypeScore]:
        config = self.config
        candidates: dict[str, float] = {}

        kb_scores = self.knowledge_base.lookup_column(
            column, sample_size=config.sample_size, seed=config.seed
        )
        regex_scores = self.regex_library.match_column(
            column, sample_size=config.sample_size, seed=config.seed
        )
        context = LFContext(table=table, column_index=column_index)
        lf_scores = self.labeling_functions.score_column(column, context)

        for source in (kb_scores, regex_scores, lf_scores):
            for type_name, confidence in source.items():
                if confidence > candidates.get(type_name, 0.0):
                    candidates[type_name] = confidence

        scores = [
            TypeScore(confidence=confidence, type_name=type_name)
            for type_name, confidence in candidates.items()
            if confidence >= config.min_confidence
        ]
        scores.sort(key=lambda s: (-s.confidence, s.type_name))
        return scores[: config.top_k]

    def predict_columns(
        self, table: Table, column_indices: Sequence[int] | None = None
    ) -> dict[int, list[TypeScore]]:
        """Predict candidates for the addressed columns of *table*."""
        indices = range(table.num_columns) if column_indices is None else column_indices
        return {
            index: self.predict_column(table.columns[index], table, column_index=index)
            for index in indices
        }
