"""Value lookup: labeling functions, knowledge base, regular expressions, and
the value-lookup pipeline step (step 2 of Fig. 4)."""

from repro.lookup.knowledge_base import KnowledgeBase
from repro.lookup.labeling_functions import (
    CoOccurrenceLF,
    ExpectationSuiteLF,
    HeaderMatchLF,
    LabelingFunction,
    LabelingFunctionStore,
    LFContext,
    MeanRangeLF,
    RegexLF,
    ValueRangeLF,
    ValueSetLF,
    labeling_function_from_dict,
)
from repro.lookup.regex_library import DEFAULT_REGEX_RULES, RegexLibrary, RegexRule
from repro.lookup.value_matcher import ValueLookupConfig, ValueLookupStep

__all__ = [
    "KnowledgeBase",
    "LabelingFunction",
    "LabelingFunctionStore",
    "LFContext",
    "ValueRangeLF",
    "MeanRangeLF",
    "HeaderMatchLF",
    "CoOccurrenceLF",
    "RegexLF",
    "ValueSetLF",
    "ExpectationSuiteLF",
    "labeling_function_from_dict",
    "RegexRule",
    "RegexLibrary",
    "DEFAULT_REGEX_RULES",
    "ValueLookupConfig",
    "ValueLookupStep",
]
