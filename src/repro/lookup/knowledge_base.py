"""Offline entity knowledge base — the DBpedia Knowledge Base substitute.

The value-lookup step of the pipeline matches "a sample of column values to
semantic types from the ontology" using, among other rules, the DBpedia
Knowledge Base.  In this offline reproduction the knowledge base is an
inverted index from entity strings to semantic types, seeded from the same
closed vocabularies the corpus generators use (country names, cities, first
names, currencies, ...).  Users can extend it with their own dictionaries,
which is exactly how a deployment would plug in a corporate glossary.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.errors import ConfigurationError
from repro.core.table import Column

__all__ = ["KnowledgeBase"]


class KnowledgeBase:
    """An inverted index of entity values to semantic types."""

    def __init__(self, case_sensitive: bool = False) -> None:
        self.case_sensitive = case_sensitive
        self._index: dict[str, set[str]] = {}
        self._type_sizes: dict[str, int] = {}

    # ------------------------------------------------------------ construction
    @classmethod
    def default(cls) -> "KnowledgeBase":
        """Build the built-in knowledge base from the generator vocabularies."""
        from repro.corpus.generators import TYPE_PROFILES

        knowledge_base = cls()
        for profile in TYPE_PROFILES.values():
            if profile.kb_values:
                knowledge_base.add_entities(profile.type_name, profile.kb_values)
        return knowledge_base

    def add_entities(self, type_name: str, values: Iterable[str]) -> int:
        """Register *values* as entities of *type_name*; returns how many were added."""
        if not type_name:
            raise ConfigurationError("type_name must be non-empty")
        added = 0
        for value in values:
            key = self._normalise(str(value))
            if not key:
                continue
            types = self._index.setdefault(key, set())
            if type_name not in types:
                types.add(type_name)
                added += 1
        self._type_sizes[type_name] = self._type_sizes.get(type_name, 0) + added
        return added

    def _normalise(self, value: str) -> str:
        value = value.strip()
        return value if self.case_sensitive else value.lower()

    # ----------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, value: str) -> bool:
        return self._normalise(value) in self._index

    @property
    def known_types(self) -> list[str]:
        """Types that have at least one entity, sorted."""
        return sorted(name for name, size in self._type_sizes.items() if size > 0)

    def entity_count(self, type_name: str) -> int:
        """Number of registered entities for *type_name*."""
        return self._type_sizes.get(type_name, 0)

    def types_for_value(self, value: str) -> set[str]:
        """Semantic types associated with one entity string (possibly empty)."""
        return set(self._index.get(self._normalise(value), set()))

    def lookup_column(
        self,
        column: Column,
        sample_size: int = 50,
        seed: int = 0,
    ) -> dict[str, float]:
        """Match a sample of the column's values against the knowledge base.

        Returns, per semantic type, the fraction of sampled non-null values
        that are known entities of that type — the confidence semantics the
        paper prescribes for the lookup step.
        """
        sample = [str(value).strip() for value in column.sample(sample_size, seed=seed)]
        if not sample:
            return {}
        counts: dict[str, int] = {}
        for value in sample:
            for type_name in self._index.get(self._normalise(value), ()):
                counts[type_name] = counts.get(type_name, 0) + 1
        return {type_name: count / len(sample) for type_name, count in counts.items()}

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict[str, list[str]]:
        """``{type: sorted entity list}`` representation."""
        by_type: dict[str, list[str]] = {}
        for value, types in self._index.items():
            for type_name in types:
                by_type.setdefault(type_name, []).append(value)
        return {type_name: sorted(values) for type_name, values in sorted(by_type.items())}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Iterable[str]], case_sensitive: bool = False) -> "KnowledgeBase":
        """Inverse of :meth:`to_dict`."""
        knowledge_base = cls(case_sensitive=case_sensitive)
        for type_name, values in payload.items():
            knowledge_base.add_entities(type_name, values)
        return knowledge_base
