"""Regular-expression rules for common semantic types.

Commercial systems (Trifacta, Talend, Google Data Studio) detect a limited
set of semantic types with regular expressions; SigmaTyper's lookup step
includes "a set of regular expressions which might be expanded on user
input".  This module provides that rule set plus the :class:`RegexLibrary`
used both by the value-lookup pipeline step and, on its own, as the
commercial-style baseline (E9 in DESIGN.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConfigurationError
from repro.core.table import Column

__all__ = ["RegexRule", "DEFAULT_REGEX_RULES", "RegexLibrary"]


@dataclass(frozen=True)
class RegexRule:
    """One regular-expression detector for one semantic type."""

    type_name: str
    pattern: str
    name: str = ""
    #: Rules below this specificity only count when most values match.
    min_fraction: float = 0.6

    def compiled(self) -> re.Pattern[str]:
        """The compiled pattern (full-match semantics are applied by callers)."""
        return re.compile(self.pattern)


DEFAULT_REGEX_RULES: tuple[RegexRule, ...] = (
    RegexRule("email", r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}", "email"),
    RegexRule("url", r"https?://[^\s]+", "url"),
    RegexRule("website", r"https?://(www\.)?[A-Za-z0-9-]+\.[A-Za-z]{2,}/?", "website", min_fraction=0.8),
    RegexRule("ip_address", r"(\d{1,3}\.){3}\d{1,3}", "ipv4"),
    RegexRule("uuid", r"[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}", "uuid"),
    RegexRule("phone_number", r"(\+?\d{1,3}[ .-]?)?(\(\d{2,4}\)[ .-]?)?\d{2,4}[ .-]\d{3,4}([ .-]\d{3,4})?", "phone"),
    RegexRule("ssn", r"\d{3}-\d{2}-\d{4}", "ssn"),
    RegexRule("zip_code", r"\d{5}(-\d{4})?", "zip-us", min_fraction=0.85),
    RegexRule("date", r"\d{4}-\d{2}-\d{2}", "date-iso"),
    RegexRule("date", r"\d{1,2}/\d{1,2}/\d{2,4}", "date-us"),
    RegexRule("timestamp", r"\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}(:\d{2})?(\.\d+)?(Z|[+-]\d{2}:?\d{2})?", "timestamp-iso"),
    RegexRule("time", r"\d{1,2}:\d{2}(:\d{2})?( ?[APap][Mm])?", "time"),
    RegexRule("credit_card_number", r"\d{4}[ -]\d{4}[ -]\d{4}[ -]\d{4}", "credit-card"),
    RegexRule("iban", r"[A-Z]{2}\d{2}[A-Z0-9]{10,30}", "iban"),
    RegexRule("isbn", r"97[89][- ]?\d{1,5}[- ]?\d{1,7}[- ]?\d{1,7}[- ]?\d", "isbn13"),
    RegexRule("currency", r"[A-Z]{3}", "currency-code", min_fraction=0.9),
    RegexRule("country_code", r"[A-Z]{2,3}", "country-code", min_fraction=0.95),
    RegexRule("percentage", r"-?\d+(\.\d+)?%", "percentage"),
    RegexRule("price", r"[\$€£¥]\s?\d[\d,]*(\.\d+)?", "currency-amount"),
    RegexRule("color", r"#[0-9a-fA-F]{6}", "hex-color"),
    RegexRule("version", r"v?\d+\.\d+(\.\d+)?", "semver", min_fraction=0.8),
    RegexRule("blood_pressure", r"\d{2,3}/\d{2,3}", "blood-pressure", min_fraction=0.9),
    RegexRule("blood_type", r"(A|B|AB|O)[+-]", "blood-type", min_fraction=0.9),
    RegexRule("year", r"(19|20)\d{2}", "year", min_fraction=0.95),
    RegexRule("latitude", r"-?([0-8]?\d|90)\.\d{3,}", "latitude", min_fraction=0.95),
    RegexRule("domain", r"[a-z0-9-]+\.[a-z]{2,}", "domain", min_fraction=0.9),
    RegexRule("file_name", r"[\w .-]+\.(csv|txt|pdf|xlsx?|json|xml|png|jpe?g|docx?|pptx?|zip|log)", "file-name"),
    RegexRule("mime_type", r"[a-z]+/[a-z0-9.+-]+", "mime-type", min_fraction=0.9),
    RegexRule("sku", r"[A-Z]{2,4}-\d{2,4}-?\d{0,4}", "sku", min_fraction=0.8),
    RegexRule("invoice_number", r"INV-\d{4}-\d{3,6}", "invoice"),
    RegexRule("patient_id", r"MRN\d{5,8}", "mrn"),
    RegexRule("transaction_id", r"TXN[0-9A-F]{6,12}", "txn"),
    RegexRule("dosage", r"\d+(\.\d+)?\s?(mg|mcg|ml|g|units|mg/ml|tablets)", "dosage"),
)


class RegexLibrary:
    """A set of regex detectors applied to sampled column values."""

    def __init__(self, rules: Iterable[RegexRule] | None = None) -> None:
        self._rules: list[RegexRule] = []
        self._compiled: list[re.Pattern[str]] = []
        for rule in (DEFAULT_REGEX_RULES if rules is None else rules):
            self.add_rule(rule)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    @property
    def covered_types(self) -> list[str]:
        """Semantic types at least one rule can detect, sorted."""
        return sorted({rule.type_name for rule in self._rules})

    def add_rule(self, rule: RegexRule) -> None:
        """Register a rule (user-supplied rules extend the library at runtime)."""
        try:
            compiled = rule.compiled()
        except re.error as exc:
            raise ConfigurationError(f"invalid regex for {rule.type_name!r}: {exc}") from exc
        self._rules.append(rule)
        self._compiled.append(compiled)

    def rules_for_type(self, type_name: str) -> list[RegexRule]:
        """Rules targeting *type_name*."""
        return [rule for rule in self._rules if rule.type_name == type_name]

    def match_value(self, value: str) -> set[str]:
        """Types whose patterns fully match one value."""
        text = str(value).strip()
        matched = set()
        for rule, compiled in zip(self._rules, self._compiled):
            if compiled.fullmatch(text):
                matched.add(rule.type_name)
        return matched

    def match_column(self, column: Column, sample_size: int = 50, seed: int = 0) -> dict[str, float]:
        """Fraction of sampled values matching each type's rules.

        Types whose best rule demands a higher ``min_fraction`` (weak,
        unspecific patterns such as bare three-letter codes) are only
        reported when that fraction is reached.
        """
        sample = [str(value).strip() for value in column.sample(sample_size, seed=seed)]
        if not sample:
            return {}
        counts: dict[str, int] = {}
        for value in sample:
            for type_name in self.match_value(value):
                counts[type_name] = counts.get(type_name, 0) + 1
        fractions = {type_name: count / len(sample) for type_name, count in counts.items()}
        results: dict[str, float] = {}
        for type_name, fraction in fractions.items():
            thresholds = [rule.min_fraction for rule in self.rules_for_type(type_name)]
            if fraction >= min(thresholds):
                results[type_name] = fraction
        return results
