"""Labeling functions — the unit of customisation in SigmaTyper.

Figure 3 of the paper shows the kinds of labeling functions (LFs) inferred
when a user relabels a column: value-range rules, mean-range rules,
co-occurring-column rules, and header rules.  LFs serve two purposes in the
system: they *generate weakly labeled training data* from the source corpus
(data programming) and they act as *weak predictors* inside the value-lookup
step of the pipeline.

Every LF targets one semantic type and, when applied to a column, returns a
confidence in ``[0, 1]`` — typically the fraction of values that match, per
the paper's description of the lookup step.  LFs are serialisable so local
(per-customer) models can be persisted.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.errors import LabelingFunctionError
from repro.core.table import Column, Table
from repro.matching.fuzzy import combined_similarity, normalize_header
from repro.profiler.expectations import ExpectationSuite

__all__ = [
    "LFContext",
    "LabelingFunction",
    "ValueRangeLF",
    "MeanRangeLF",
    "HeaderMatchLF",
    "CoOccurrenceLF",
    "RegexLF",
    "ValueSetLF",
    "ExpectationSuiteLF",
    "LabelingFunctionStore",
    "labeling_function_from_dict",
]


@dataclass(frozen=True)
class LFContext:
    """Table context available to a labeling function.

    ``neighbor_types`` carries the semantic types of the *other* columns when
    the caller knows them (e.g. during weak-label generation on an annotated
    corpus); when empty, co-occurrence LFs fall back to fuzzy-matching the
    other columns' headers.
    """

    table: Table | None = None
    column_index: int | None = None
    neighbor_types: frozenset[str] = frozenset()


class LabelingFunction(ABC):
    """Base class: a weak predictor for one semantic type."""

    #: Registry key used by :func:`labeling_function_from_dict`.
    kind: str = "abstract"

    def __init__(self, target_type: str, name: str = "", source: str = "global", weight: float = 1.0):
        if not target_type:
            raise LabelingFunctionError("a labeling function needs a target semantic type")
        if weight <= 0:
            raise LabelingFunctionError("labeling function weight must be positive")
        self.target_type = target_type
        self.name = name or f"{self.kind}:{target_type}"
        self.source = source
        self.weight = float(weight)

    @abstractmethod
    def apply(self, column: Column, context: LFContext | None = None) -> float:
        """Confidence in ``[0, 1]`` that *column* has :attr:`target_type`."""

    # ----------------------------------------------------------- serialization
    def _base_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "target_type": self.target_type,
            "name": self.name,
            "source": self.source,
            "weight": self.weight,
        }

    @abstractmethod
    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(target={self.target_type!r}, name={self.name!r})"


class ValueRangeLF(LabelingFunction):
    """LF1 in Fig. 3: the fraction of numeric values inside ``[low, high]``."""

    kind = "value_range"

    def __init__(self, target_type: str, low: float, high: float, **kwargs):
        super().__init__(target_type, **kwargs)
        if high < low:
            raise LabelingFunctionError(f"invalid range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def apply(self, column: Column, context: LFContext | None = None) -> float:
        values = column.numeric_values()
        if not values:
            return 0.0
        hits = sum(1 for value in values if self.low <= value <= self.high)
        return hits / len(values)

    def to_dict(self) -> dict[str, object]:
        return {**self._base_dict(), "low": self.low, "high": self.high}


class MeanRangeLF(LabelingFunction):
    """LF2 in Fig. 3: fires when the column mean falls inside ``[low, high]``."""

    kind = "mean_range"

    def __init__(self, target_type: str, low: float, high: float, **kwargs):
        super().__init__(target_type, **kwargs)
        if high < low:
            raise LabelingFunctionError(f"invalid range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def apply(self, column: Column, context: LFContext | None = None) -> float:
        values = column.numeric_values()
        if not values:
            return 0.0
        mean = sum(values) / len(values)
        return 1.0 if self.low <= mean <= self.high else 0.0

    def to_dict(self) -> dict[str, object]:
        return {**self._base_dict(), "low": self.low, "high": self.high}


class HeaderMatchLF(LabelingFunction):
    """LF4 in Fig. 3: fires when the column header matches a remembered header."""

    kind = "header_match"

    def __init__(self, target_type: str, headers: Sequence[str], threshold: float = 0.85, **kwargs):
        super().__init__(target_type, **kwargs)
        cleaned = [normalize_header(header) for header in headers if normalize_header(header)]
        if not cleaned:
            raise LabelingFunctionError("HeaderMatchLF needs at least one non-empty header")
        self.headers = list(dict.fromkeys(cleaned))
        self.threshold = float(threshold)

    def apply(self, column: Column, context: LFContext | None = None) -> float:
        header = normalize_header(column.name)
        if not header:
            return 0.0
        best = max(combined_similarity(header, candidate) for candidate in self.headers)
        return best if best >= self.threshold else 0.0

    def to_dict(self) -> dict[str, object]:
        return {**self._base_dict(), "headers": list(self.headers), "threshold": self.threshold}


class CoOccurrenceLF(LabelingFunction):
    """LF3 in Fig. 3: fires when specific other column types appear in the table.

    When the context provides ground-truth/predicted neighbour types they are
    used directly; otherwise the other columns' headers are fuzzy-matched
    against the required type names.
    """

    kind = "co_occurrence"

    def __init__(self, target_type: str, required_types: Sequence[str], header_threshold: float = 0.8, **kwargs):
        super().__init__(target_type, **kwargs)
        if not required_types:
            raise LabelingFunctionError("CoOccurrenceLF needs at least one required type")
        self.required_types = sorted(set(required_types))
        self.header_threshold = float(header_threshold)

    def apply(self, column: Column, context: LFContext | None = None) -> float:
        if context is None or context.table is None:
            return 0.0
        neighbor_types = {t for t in context.neighbor_types if t}
        satisfied = 0
        for required in self.required_types:
            if required in neighbor_types:
                satisfied += 1
                continue
            if self._header_present(required, column, context):
                satisfied += 1
        return 1.0 if satisfied == len(self.required_types) else 0.0

    def _header_present(self, required_type: str, column: Column, context: LFContext) -> bool:
        assert context.table is not None
        required_text = required_type.replace("_", " ")
        for index, other in enumerate(context.table.columns):
            if context.column_index is not None and index == context.column_index:
                continue
            if other is column:
                continue
            if combined_similarity(other.name, required_text) >= self.header_threshold:
                return True
        return False

    def to_dict(self) -> dict[str, object]:
        return {
            **self._base_dict(),
            "required_types": list(self.required_types),
            "header_threshold": self.header_threshold,
        }


class RegexLF(LabelingFunction):
    """Fraction of values fully matching a regular expression."""

    kind = "regex"

    def __init__(self, target_type: str, pattern: str, **kwargs):
        super().__init__(target_type, **kwargs)
        try:
            self.pattern = re.compile(pattern)
        except re.error as exc:
            raise LabelingFunctionError(f"invalid regex {pattern!r}: {exc}") from exc

    def apply(self, column: Column, context: LFContext | None = None) -> float:
        values = column.text_values()
        if not values:
            return 0.0
        hits = sum(1 for value in values if self.pattern.fullmatch(value))
        return hits / len(values)

    def to_dict(self) -> dict[str, object]:
        return {**self._base_dict(), "pattern": self.pattern.pattern}


class ValueSetLF(LabelingFunction):
    """Fraction of values found in a closed vocabulary (dictionary lookup)."""

    kind = "value_set"

    def __init__(self, target_type: str, values: Sequence[str], case_sensitive: bool = False, **kwargs):
        super().__init__(target_type, **kwargs)
        if not values:
            raise LabelingFunctionError("ValueSetLF needs a non-empty value set")
        self.case_sensitive = bool(case_sensitive)
        if self.case_sensitive:
            self.values = frozenset(str(value) for value in values)
        else:
            self.values = frozenset(str(value).lower() for value in values)

    def apply(self, column: Column, context: LFContext | None = None) -> float:
        values = column.text_values()
        if not values:
            return 0.0
        if self.case_sensitive:
            hits = sum(1 for value in values if value in self.values)
        else:
            hits = sum(1 for value in values if value.lower() in self.values)
        return hits / len(values)

    def to_dict(self) -> dict[str, object]:
        return {
            **self._base_dict(),
            "values": sorted(self.values),
            "case_sensitive": self.case_sensitive,
        }


class ExpectationSuiteLF(LabelingFunction):
    """Wraps a profiler expectation suite: confidence = fraction of satisfied expectations."""

    kind = "expectation_suite"

    def __init__(self, target_type: str, suite: ExpectationSuite, **kwargs):
        super().__init__(target_type, **kwargs)
        if not len(suite):
            raise LabelingFunctionError("ExpectationSuiteLF needs a non-empty suite")
        self.suite = suite

    def apply(self, column: Column, context: LFContext | None = None) -> float:
        return self.suite.success_fraction(column)

    def to_dict(self) -> dict[str, object]:
        return {
            **self._base_dict(),
            "suite_name": self.suite.name,
            "expectations": [
                {"kind": e.kind, "params": e.params, "mostly": e.mostly} for e in self.suite
            ],
        }


_KINDS: dict[str, type[LabelingFunction]] = {
    ValueRangeLF.kind: ValueRangeLF,
    MeanRangeLF.kind: MeanRangeLF,
    HeaderMatchLF.kind: HeaderMatchLF,
    CoOccurrenceLF.kind: CoOccurrenceLF,
    RegexLF.kind: RegexLF,
    ValueSetLF.kind: ValueSetLF,
    ExpectationSuiteLF.kind: ExpectationSuiteLF,
}


def labeling_function_from_dict(payload: Mapping[str, object]) -> LabelingFunction:
    """Reconstruct a labeling function serialised with ``to_dict``."""
    kind = str(payload.get("kind", ""))
    if kind not in _KINDS:
        raise LabelingFunctionError(f"unknown labeling function kind {kind!r}")
    common = {
        "name": payload.get("name", ""),
        "source": payload.get("source", "global"),
        "weight": payload.get("weight", 1.0),
    }
    target = str(payload["target_type"])
    if kind == ValueRangeLF.kind:
        return ValueRangeLF(target, payload["low"], payload["high"], **common)
    if kind == MeanRangeLF.kind:
        return MeanRangeLF(target, payload["low"], payload["high"], **common)
    if kind == HeaderMatchLF.kind:
        return HeaderMatchLF(target, payload["headers"], payload.get("threshold", 0.85), **common)
    if kind == CoOccurrenceLF.kind:
        return CoOccurrenceLF(target, payload["required_types"], payload.get("header_threshold", 0.8), **common)
    if kind == RegexLF.kind:
        return RegexLF(target, payload["pattern"], **common)
    if kind == ValueSetLF.kind:
        return ValueSetLF(target, payload["values"], payload.get("case_sensitive", False), **common)
    if kind == ExpectationSuiteLF.kind:
        from repro.profiler.expectations import Expectation

        suite = ExpectationSuite(
            name=str(payload.get("suite_name", f"suite:{target}")),
            expectations=[
                Expectation(entry["kind"], dict(entry["params"]), mostly=entry.get("mostly", 0.9))
                for entry in payload.get("expectations", [])
            ],
        )
        return ExpectationSuiteLF(target, suite, **common)
    raise LabelingFunctionError(f"unhandled labeling function kind {kind!r}")  # pragma: no cover


class LabelingFunctionStore:
    """A queryable collection of labeling functions, grouped by target type."""

    def __init__(self, functions: Sequence[LabelingFunction] = ()) -> None:
        self._functions: list[LabelingFunction] = []
        for function in functions:
            self.add(function)

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self):
        return iter(self._functions)

    def add(self, function: LabelingFunction) -> None:
        """Register a labeling function."""
        if not isinstance(function, LabelingFunction):
            raise LabelingFunctionError("only LabelingFunction instances can be stored")
        self._functions.append(function)

    def extend(self, functions: Sequence[LabelingFunction]) -> None:
        """Register several labeling functions."""
        for function in functions:
            self.add(function)

    def for_type(self, target_type: str) -> list[LabelingFunction]:
        """All functions targeting *target_type*."""
        return [f for f in self._functions if f.target_type == target_type]

    def target_types(self) -> list[str]:
        """Distinct target types, sorted."""
        return sorted({f.target_type for f in self._functions})

    def from_source(self, source: str) -> list[LabelingFunction]:
        """All functions from one source ("global", "local", "user")."""
        return [f for f in self._functions if f.source == source]

    def score_column(
        self, column: Column, context: LFContext | None = None
    ) -> dict[str, float]:
        """Apply every stored LF to *column*; return the best score per type.

        Per type, the confidence is the weighted maximum over that type's
        LFs, which keeps a single strong rule decisive while letting several
        weaker rules coexist.
        """
        best: dict[str, float] = {}
        for function in self._functions:
            score = function.apply(column, context) * min(function.weight, 1.0)
            if score <= 0.0:
                continue
            if score > best.get(function.target_type, 0.0):
                best[function.target_type] = min(score, 1.0)
        return best

    def to_dicts(self) -> list[dict[str, object]]:
        """Serialise every stored LF."""
        return [function.to_dict() for function in self._functions]

    @classmethod
    def from_dicts(cls, payloads: Sequence[Mapping[str, object]]) -> "LabelingFunctionStore":
        """Inverse of :meth:`to_dicts`."""
        return cls([labeling_function_from_dict(payload) for payload in payloads])
