"""Plain-text report rendering for benchmarks and examples.

The benchmark harness prints the rows/series each experiment produces (the
"tables" of EXPERIMENTS.md).  These helpers render lists of dictionaries as
aligned fixed-width tables without any third-party dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_kv", "print_table"]


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render dictionaries as an aligned text table.

    Column order follows *columns* when given, otherwise the key order of the
    first row.  Missing cells render as empty strings.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_render_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(column).ljust(width) for column, width in zip(columns, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_kv(values: Mapping[str, object], title: str = "") -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines = [title] if title else []
    width = max((len(str(key)) for key in values), default=0)
    for key, value in values.items():
        lines.append(f"{str(key).ljust(width)} : {_render_cell(value)}")
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> None:
    """Print :func:`format_table` output (convenience for benchmarks)."""
    print(format_table(rows, columns=columns, title=title))
