"""Evaluation: precision/coverage metrics, the experiment harness, and
plain-text report rendering."""

from repro.evaluation.harness import (
    EvaluationResult,
    evaluate_annotator,
    precision_coverage_curve,
)
from repro.evaluation.metrics import (
    EvaluationMetrics,
    PredictionRecord,
    TypeMetrics,
    evaluate_records,
)
from repro.evaluation.reports import format_kv, format_table, print_table

__all__ = [
    "PredictionRecord",
    "TypeMetrics",
    "EvaluationMetrics",
    "evaluate_records",
    "EvaluationResult",
    "evaluate_annotator",
    "precision_coverage_curve",
    "format_table",
    "format_kv",
    "print_table",
]
