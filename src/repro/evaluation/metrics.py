"""Evaluation metrics for semantic column type detection.

The paper frames the practical objective as balancing **precision** with
**coverage** (Section 2.3): a deployed system should only emit labels it is
confident in, abstain otherwise, and never pay for extra coverage with
user-visible mistakes.  The metrics here therefore distinguish

* classification quality *on the columns the system labelled* (precision,
  recall, F1 — micro/macro/weighted), and
* **coverage**: the fraction of labelled ground-truth columns the system was
  willing to label at all.

All metrics operate on plain ``(gold, predicted, abstained)`` triples so the
same code evaluates SigmaTyper, the baselines, and any ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.ontology import UNKNOWN_TYPE

__all__ = ["PredictionRecord", "TypeMetrics", "EvaluationMetrics", "evaluate_records"]


@dataclass(frozen=True)
class PredictionRecord:
    """One evaluated column."""

    gold_type: str
    predicted_type: str
    confidence: float = 0.0
    abstained: bool = False
    table_name: str = ""
    column_name: str = ""

    @property
    def attempted(self) -> bool:
        """Whether the system actually emitted a label for this column."""
        return not self.abstained and self.predicted_type != UNKNOWN_TYPE

    @property
    def correct(self) -> bool:
        """Whether an emitted label matches the gold annotation."""
        return self.attempted and self.predicted_type == self.gold_type


@dataclass
class TypeMetrics:
    """Per-type precision/recall/F1 with supporting counts."""

    type_name: str
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def support(self) -> int:
        """Number of gold columns of this type."""
        return self.true_positives + self.false_negatives

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


@dataclass
class EvaluationMetrics:
    """Aggregate metrics over a set of evaluated columns."""

    records: list[PredictionRecord] = field(default_factory=list)
    per_type: dict[str, TypeMetrics] = field(default_factory=dict)

    # ------------------------------------------------------------------ counts
    @property
    def total(self) -> int:
        """Number of evaluated (gold-labelled) columns."""
        return len(self.records)

    @property
    def attempted(self) -> int:
        """Columns for which a label was emitted."""
        return sum(1 for record in self.records if record.attempted)

    @property
    def correct(self) -> int:
        """Columns whose emitted label was correct."""
        return sum(1 for record in self.records if record.correct)

    # --------------------------------------------------------------- headline
    @property
    def coverage(self) -> float:
        """Fraction of gold columns the system labelled (did not abstain on)."""
        return self.attempted / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """Micro precision over the emitted labels."""
        return self.correct / self.attempted if self.attempted else 0.0

    @property
    def accuracy(self) -> float:
        """Correct labels over *all* gold columns (abstentions count as wrong)."""
        return self.correct / self.total if self.total else 0.0

    @property
    def macro_f1(self) -> float:
        """Unweighted mean of per-type F1 (rare types count as much as common ones)."""
        if not self.per_type:
            return 0.0
        return sum(metrics.f1 for metrics in self.per_type.values()) / len(self.per_type)

    @property
    def weighted_f1(self) -> float:
        """Support-weighted mean of per-type F1."""
        total_support = sum(metrics.support for metrics in self.per_type.values())
        if total_support == 0:
            return 0.0
        return sum(metrics.f1 * metrics.support for metrics in self.per_type.values()) / total_support

    @property
    def macro_precision(self) -> float:
        """Unweighted mean of per-type precision."""
        if not self.per_type:
            return 0.0
        return sum(metrics.precision for metrics in self.per_type.values()) / len(self.per_type)

    @property
    def macro_recall(self) -> float:
        """Unweighted mean of per-type recall."""
        if not self.per_type:
            return 0.0
        return sum(metrics.recall for metrics in self.per_type.values()) / len(self.per_type)

    # ------------------------------------------------------------------ report
    def worst_types(self, k: int = 5) -> list[TypeMetrics]:
        """The *k* types with the lowest F1 (among types with any support)."""
        supported = [metrics for metrics in self.per_type.values() if metrics.support > 0]
        supported.sort(key=lambda metrics: (metrics.f1, -metrics.support, metrics.type_name))
        return supported[:k]

    def summary(self) -> dict[str, float]:
        """The headline numbers as a plain dict (used by reports and benches)."""
        return {
            "columns": float(self.total),
            "coverage": round(self.coverage, 4),
            "precision": round(self.precision, 4),
            "accuracy": round(self.accuracy, 4),
            "macro_f1": round(self.macro_f1, 4),
            "weighted_f1": round(self.weighted_f1, 4),
            "macro_precision": round(self.macro_precision, 4),
            "macro_recall": round(self.macro_recall, 4),
        }


def evaluate_records(records: Iterable[PredictionRecord]) -> EvaluationMetrics:
    """Compute aggregate and per-type metrics from prediction records.

    Per-type bookkeeping: a correct emitted label is a true positive for its
    type; an incorrect emitted label is a false positive for the predicted
    type and a false negative for the gold type; an abstention is a false
    negative for the gold type (the system failed to label it), which makes
    coverage losses visible in recall.
    """
    materialised = list(records)
    per_type: dict[str, TypeMetrics] = {}

    def bucket(type_name: str) -> TypeMetrics:
        if type_name not in per_type:
            per_type[type_name] = TypeMetrics(type_name=type_name)
        return per_type[type_name]

    for record in materialised:
        gold = bucket(record.gold_type)
        if record.correct:
            gold.true_positives += 1
        elif record.attempted:
            gold.false_negatives += 1
            bucket(record.predicted_type).false_positives += 1
        else:
            gold.false_negatives += 1
    return EvaluationMetrics(records=materialised, per_type=per_type)
