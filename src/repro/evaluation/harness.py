"""Experiment harness: run any annotator over a corpus and score it.

An *annotator* is anything that turns a :class:`~repro.core.table.Table` into
a :class:`~repro.core.prediction.TablePrediction`: the SigmaTyper facade, the
raw global pipeline, a baseline detector, or a plain callable.  The harness
collects :class:`~repro.evaluation.metrics.PredictionRecord` objects for every
gold-labelled column and returns aggregate metrics, keeping all experiment
code (benchmarks, examples, tests) free of bookkeeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.core.ontology import UNKNOWN_TYPE
from repro.core.prediction import TablePrediction
from repro.core.table import Table
from repro.corpus.collection import TableCorpus
from repro.evaluation.metrics import EvaluationMetrics, PredictionRecord, evaluate_records

__all__ = ["Annotator", "EvaluationResult", "evaluate_annotator", "precision_coverage_curve"]


class Annotator(Protocol):
    """Anything that can annotate a table."""

    def annotate(self, table: Table) -> TablePrediction:  # pragma: no cover - protocol
        ...


@dataclass
class EvaluationResult:
    """Metrics plus run metadata for one (annotator, corpus) evaluation."""

    name: str
    metrics: EvaluationMetrics
    wall_seconds: float
    tables: int
    #: Per-pipeline-step column counts accumulated over the run (cascade trace).
    step_trace: dict[str, int] = field(default_factory=dict)
    #: Per-pipeline-step seconds accumulated over the run.
    step_seconds: dict[str, float] = field(default_factory=dict)

    def summary(self) -> dict[str, object]:
        """Headline metrics plus throughput."""
        columns_per_second = (
            self.metrics.total / self.wall_seconds if self.wall_seconds > 0 else 0.0
        )
        return {
            "system": self.name,
            **self.metrics.summary(),
            "wall_seconds": round(self.wall_seconds, 3),
            "columns_per_second": round(columns_per_second, 1),
        }


def _resolve_annotate(annotator: Annotator | Callable[[Table], TablePrediction]):
    if callable(annotator) and not hasattr(annotator, "annotate"):
        return annotator
    return annotator.annotate  # type: ignore[union-attr]


def evaluate_annotator(
    annotator: Annotator | Callable[[Table], TablePrediction],
    corpus: TableCorpus,
    name: str = "system",
    skip_ood_gold: bool = False,
) -> EvaluationResult:
    """Annotate every table of *corpus* and score against its gold labels.

    Parameters
    ----------
    skip_ood_gold:
        When true, columns whose gold label is prefixed ``ood:`` (produced by
        the OOD corpus builder) are excluded — used by experiments that only
        measure in-distribution accuracy.  When false, such columns count as
        correctly handled only if the system abstained (predicting any
        concrete type for them is a false positive), which is how the OOD
        benchmark scores abstention behaviour.
    """
    annotate = _resolve_annotate(annotator)
    records: list[PredictionRecord] = []
    step_trace: dict[str, int] = {}
    step_seconds: dict[str, float] = {}
    started = time.perf_counter()
    for table in corpus:
        prediction = annotate(table)
        for step, count in prediction.step_trace.items():
            step_trace[step] = step_trace.get(step, 0) + count
        for step, seconds in prediction.step_seconds.items():
            step_seconds[step] = step_seconds.get(step, 0.0) + seconds
        for column, column_prediction in zip(table.columns, prediction.columns):
            gold = column.semantic_type
            if gold is None:
                continue
            if gold.startswith("ood:"):
                if skip_ood_gold:
                    continue
                # For OOD gold columns the desired behaviour is abstention.
                gold = UNKNOWN_TYPE
            records.append(
                PredictionRecord(
                    gold_type=gold,
                    predicted_type=(
                        UNKNOWN_TYPE if column_prediction.abstained else column_prediction.predicted_type
                    ),
                    confidence=column_prediction.confidence,
                    abstained=column_prediction.abstained,
                    table_name=table.name,
                    column_name=column.name,
                )
            )
    elapsed = time.perf_counter() - started
    metrics = evaluate_records(
        [record for record in records if record.gold_type != UNKNOWN_TYPE]
        if skip_ood_gold
        else records
    )
    return EvaluationResult(
        name=name,
        metrics=metrics,
        wall_seconds=elapsed,
        tables=len(corpus),
        step_trace=step_trace,
        step_seconds=step_seconds,
    )


def precision_coverage_curve(
    records: Sequence[PredictionRecord],
    taus: Sequence[float] | None = None,
) -> list[dict[str, float]]:
    """Sweep the precision threshold τ over already-scored predictions.

    Each row reports, for one τ, the coverage (fraction of columns whose
    confidence cleared τ) and the precision among those retained — the
    precision/coverage trade-off of Section 2.3 (experiment E6).
    """
    if taus is None:
        taus = [round(0.05 * i, 2) for i in range(20)] + [0.99]
    usable = [record for record in records if record.gold_type != UNKNOWN_TYPE]
    curve = []
    for tau in taus:
        retained = [
            record for record in usable
            if record.attempted and record.confidence >= tau
        ]
        correct = sum(1 for record in retained if record.predicted_type == record.gold_type)
        coverage = len(retained) / len(usable) if usable else 0.0
        precision = correct / len(retained) if retained else 0.0
        curve.append({"tau": float(tau), "coverage": round(coverage, 4), "precision": round(precision, 4)})
    return curve
