"""repro — a reproduction of "Making Table Understanding Work in Practice" (CIDR 2022).

The package implements SigmaTyper, a practical semantic column type detection
system: a hybrid cascading pipeline (header matching, value lookup, learned
table-embedding model), a global/local model architecture customised per
customer, and data programming by demonstration (DPBD) for lightweight
adaptation from user feedback — plus every substrate it depends on (synthetic
GitTables-like corpora, a data profiler, a numpy neural-network stack,
baselines, and an evaluation harness).

Quickstart
----------
>>> from repro import SigmaTyper, Table
>>> typer = SigmaTyper.pretrained()
>>> table = Table.from_columns_dict({"Income": ["$ 50K", "$ 60K", "$ 70K"]})
>>> prediction = typer.annotate(table)
>>> prediction.columns[0].predicted_type
"""

from repro.core.aggregation import Aggregator, calibrate_tau
from repro.core.datatypes import DataType
from repro.core.errors import ReproError
from repro.core.ontology import (
    UNKNOWN_TYPE,
    DataKind,
    SemanticType,
    TypeOntology,
    build_default_ontology,
)
from repro.core.pipeline import CascadeConfig, PipelineStep, TypeDetectionPipeline
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.sigmatyper import SigmaTyper, SigmaTyperConfig
from repro.core.table import Column, Table
from repro.corpus.collection import TableCorpus
from repro.corpus.gittables import GitTablesConfig, GitTablesGenerator
from repro.corpus.webtables import WebTablesConfig, WebTablesGenerator
from repro.serving import (
    AdaptiveBatchingConfig,
    AnnotationFrontend,
    AnnotationPool,
    AnnotationService,
    ExecutionBackend,
    FrontendConfig,
    MultiprocessBackend,
    PersistentProfileStore,
    PoolSpec,
    ProfileStore,
    SerialBackend,
    ServingSpec,
    SloConfig,
    SloController,
    ThreadedBackend,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # tables and types
    "Table",
    "Column",
    "DataType",
    "SemanticType",
    "DataKind",
    "TypeOntology",
    "build_default_ontology",
    "UNKNOWN_TYPE",
    # predictions and pipeline
    "TypeScore",
    "ColumnPrediction",
    "TablePrediction",
    "PipelineStep",
    "TypeDetectionPipeline",
    "CascadeConfig",
    "Aggregator",
    "calibrate_tau",
    # the system
    "SigmaTyper",
    "SigmaTyperConfig",
    # serving
    "AnnotationService",
    "AdaptiveBatchingConfig",
    "AnnotationFrontend",
    "AnnotationPool",
    "PoolSpec",
    "ServingSpec",
    "FrontendConfig",
    "SloConfig",
    "SloController",
    "ProfileStore",
    "PersistentProfileStore",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadedBackend",
    "MultiprocessBackend",
    # corpora
    "TableCorpus",
    "GitTablesGenerator",
    "GitTablesConfig",
    "WebTablesGenerator",
    "WebTablesConfig",
    # errors
    "ReproError",
]
