"""Entity vocabularies backing the synthetic corpus generators.

GitTables and the DBpedia Knowledge Base are not available offline, so the
corpus generators and the lookup knowledge base both draw from the entity
dictionaries in this module.  The lists are intentionally sized like small
reference dictionaries (tens of entries each): large enough that generated
tables have realistic value diversity and that held-out splits contain values
never seen during training, small enough to keep the repository self-contained.

Everything here is plain data; no randomness and no I/O.
"""

from __future__ import annotations

__all__ = [name for name in dir() if name.isupper()]

FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda",
    "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy",
    "Matthew", "Betty", "Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley",
    "Steven", "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle",
    "Kenneth", "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
    "Timothy", "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary", "Amy",
    "Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Anna", "Stephen", "Brenda",
    "Larry", "Pamela", "Justin", "Emma", "Scott", "Nicole", "Brandon", "Helen",
    "Wei", "Ana", "Mohammed", "Yuki", "Priya", "Lars", "Sofia", "Mateo",
    "Fatima", "Hiroshi", "Ingrid", "Omar", "Chen", "Amara", "Dmitri", "Lucia",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
    "Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson",
    "White", "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker",
    "Young", "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill",
    "Flores", "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell",
    "Mitchell", "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales",
    "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper", "Peterson",
    "Kim", "Chen", "Wang", "Singh", "Patel", "Kumar", "Ali", "Khan",
    "Tanaka", "Sato", "Mueller", "Schmidt", "Rossi", "Ferrari", "Silva", "Santos",
]

COMPANIES = [
    "Acme Corp", "Globex", "Initech", "Umbrella Holdings", "Stark Industries",
    "Wayne Enterprises", "Wonka Industries", "Cyberdyne Systems", "Tyrell Corp",
    "Soylent Foods", "Vandelay Industries", "Pied Piper", "Hooli", "Aviato",
    "Dunder Mifflin", "Prestige Worldwide", "Bluth Company", "Sterling Cooper",
    "Massive Dynamic", "Oscorp", "LexCorp", "Weyland-Yutani", "Aperture Science",
    "Black Mesa", "Virtucon", "Gringotts Bank", "Monsters Inc", "Gekko & Co",
    "Nakatomi Trading", "Oceanic Airlines", "Sirius Cybernetics", "InGen",
    "Buy n Large", "Zorg Industries", "Duff Brewing", "Krusty Krab Holdings",
    "Paper Street Soap", "Delos Destinations", "Abstergo Industries", "Rekall",
    "Northwind Traders", "Contoso", "Fabrikam", "Adventure Works", "Tailwind Traders",
    "Sigma Analytics", "Adyen Payments", "Lumon Industries", "Vehement Capital",
    "Central Perk Coffee", "Genco Olive Oil", "Stay Puft Foods", "Cheers Hospitality",
]

COMPANY_SUFFIXES = ["Inc", "LLC", "Ltd", "GmbH", "Corp", "SA", "BV", "AG", "PLC", "Co"]

DEPARTMENTS = [
    "Engineering", "Sales", "Marketing", "Finance", "Human Resources", "Operations",
    "Legal", "Customer Support", "Research", "Product", "Design", "IT",
    "Procurement", "Quality Assurance", "Logistics", "Business Development",
    "Data Science", "Security", "Facilities", "Accounting", "Compliance", "Training",
]

JOB_TITLES = [
    "Software Engineer", "Data Analyst", "Product Manager", "Account Executive",
    "Sales Representative", "Marketing Manager", "Financial Analyst", "HR Specialist",
    "Operations Manager", "Customer Success Manager", "Research Scientist",
    "UX Designer", "DevOps Engineer", "QA Engineer", "Business Analyst",
    "Project Manager", "Technical Writer", "Support Specialist", "Data Engineer",
    "Chief Executive Officer", "Chief Financial Officer", "VP of Sales",
    "Director of Engineering", "Office Manager", "Recruiter", "Legal Counsel",
    "Solutions Architect", "Machine Learning Engineer", "Controller", "Treasurer",
]

INDUSTRIES = [
    "Technology", "Healthcare", "Finance", "Retail", "Manufacturing", "Education",
    "Energy", "Transportation", "Hospitality", "Telecommunications", "Insurance",
    "Real Estate", "Agriculture", "Construction", "Media", "Pharmaceuticals",
    "Automotive", "Aerospace", "Logistics", "Consumer Goods", "Biotechnology",
]

CITIES = [
    "New York", "San Francisco", "Amsterdam", "London", "Paris", "Berlin", "Tokyo",
    "Sydney", "Toronto", "Chicago", "Boston", "Seattle", "Austin", "Denver",
    "Los Angeles", "San Diego", "Miami", "Atlanta", "Dallas", "Houston",
    "Madrid", "Barcelona", "Rome", "Milan", "Vienna", "Zurich", "Geneva",
    "Stockholm", "Oslo", "Copenhagen", "Helsinki", "Dublin", "Lisbon", "Prague",
    "Warsaw", "Budapest", "Athens", "Istanbul", "Dubai", "Singapore", "Hong Kong",
    "Seoul", "Shanghai", "Beijing", "Mumbai", "Delhi", "Bangalore", "São Paulo",
    "Buenos Aires", "Mexico City", "Bogotá", "Lima", "Santiago", "Cape Town",
    "Nairobi", "Lagos", "Cairo", "Tel Aviv", "Bangkok", "Jakarta", "Manila",
    "Kuala Lumpur", "Auckland", "Melbourne", "Vancouver", "Montreal", "Utrecht",
    "Rotterdam", "Eindhoven", "Brussels", "Antwerp", "Lyon", "Marseille", "Munich",
    "Hamburg", "Frankfurt", "Cologne", "Portland", "Phoenix", "Philadelphia",
]

COUNTRIES = [
    ("United States", "US", "USA"), ("Netherlands", "NL", "NLD"),
    ("United Kingdom", "GB", "GBR"), ("Germany", "DE", "DEU"), ("France", "FR", "FRA"),
    ("Spain", "ES", "ESP"), ("Italy", "IT", "ITA"), ("Canada", "CA", "CAN"),
    ("Australia", "AU", "AUS"), ("Japan", "JP", "JPN"), ("China", "CN", "CHN"),
    ("India", "IN", "IND"), ("Brazil", "BR", "BRA"), ("Mexico", "MX", "MEX"),
    ("Argentina", "AR", "ARG"), ("South Korea", "KR", "KOR"), ("Sweden", "SE", "SWE"),
    ("Norway", "NO", "NOR"), ("Denmark", "DK", "DNK"), ("Finland", "FI", "FIN"),
    ("Switzerland", "CH", "CHE"), ("Austria", "AT", "AUT"), ("Belgium", "BE", "BEL"),
    ("Ireland", "IE", "IRL"), ("Portugal", "PT", "PRT"), ("Poland", "PL", "POL"),
    ("Czech Republic", "CZ", "CZE"), ("Greece", "GR", "GRC"), ("Turkey", "TR", "TUR"),
    ("United Arab Emirates", "AE", "ARE"), ("Singapore", "SG", "SGP"),
    ("South Africa", "ZA", "ZAF"), ("Kenya", "KE", "KEN"), ("Nigeria", "NG", "NGA"),
    ("Egypt", "EG", "EGY"), ("Israel", "IL", "ISR"), ("Thailand", "TH", "THA"),
    ("Indonesia", "ID", "IDN"), ("Philippines", "PH", "PHL"), ("Malaysia", "MY", "MYS"),
    ("New Zealand", "NZ", "NZL"), ("Chile", "CL", "CHL"), ("Colombia", "CO", "COL"),
    ("Peru", "PE", "PER"), ("Russia", "RU", "RUS"), ("Ukraine", "UA", "UKR"),
    ("Vietnam", "VN", "VNM"), ("Pakistan", "PK", "PAK"), ("Bangladesh", "BD", "BGD"),
    ("Morocco", "MA", "MAR"),
]

COUNTRY_NAMES = [entry[0] for entry in COUNTRIES]
COUNTRY_CODES_2 = [entry[1] for entry in COUNTRIES]
COUNTRY_CODES_3 = [entry[2] for entry in COUNTRIES]

NATIONALITIES = [
    "American", "Dutch", "British", "German", "French", "Spanish", "Italian",
    "Canadian", "Australian", "Japanese", "Chinese", "Indian", "Brazilian",
    "Mexican", "Argentine", "Korean", "Swedish", "Norwegian", "Danish", "Finnish",
    "Swiss", "Austrian", "Belgian", "Irish", "Portuguese", "Polish", "Czech",
    "Greek", "Turkish", "Emirati", "Singaporean", "South African", "Kenyan",
    "Nigerian", "Egyptian", "Israeli", "Thai", "Indonesian", "Filipino", "Malaysian",
]

US_STATES = [
    ("Alabama", "AL"), ("Alaska", "AK"), ("Arizona", "AZ"), ("Arkansas", "AR"),
    ("California", "CA"), ("Colorado", "CO"), ("Connecticut", "CT"), ("Delaware", "DE"),
    ("Florida", "FL"), ("Georgia", "GA"), ("Hawaii", "HI"), ("Idaho", "ID"),
    ("Illinois", "IL"), ("Indiana", "IN"), ("Iowa", "IA"), ("Kansas", "KS"),
    ("Kentucky", "KY"), ("Louisiana", "LA"), ("Maine", "ME"), ("Maryland", "MD"),
    ("Massachusetts", "MA"), ("Michigan", "MI"), ("Minnesota", "MN"), ("Mississippi", "MS"),
    ("Missouri", "MO"), ("Montana", "MT"), ("Nebraska", "NE"), ("Nevada", "NV"),
    ("New Hampshire", "NH"), ("New Jersey", "NJ"), ("New Mexico", "NM"), ("New York", "NY"),
    ("North Carolina", "NC"), ("North Dakota", "ND"), ("Ohio", "OH"), ("Oklahoma", "OK"),
    ("Oregon", "OR"), ("Pennsylvania", "PA"), ("Rhode Island", "RI"), ("South Carolina", "SC"),
    ("South Dakota", "SD"), ("Tennessee", "TN"), ("Texas", "TX"), ("Utah", "UT"),
    ("Vermont", "VT"), ("Virginia", "VA"), ("Washington", "WA"), ("West Virginia", "WV"),
    ("Wisconsin", "WI"), ("Wyoming", "WY"),
]

STATE_NAMES = [entry[0] for entry in US_STATES]
STATE_CODES = [entry[1] for entry in US_STATES]

STREET_NAMES = [
    "Main St", "Oak Ave", "Maple Dr", "Cedar Ln", "Park Blvd", "Elm St", "Pine Rd",
    "Washington Ave", "Lake View Dr", "Hillcrest Rd", "Sunset Blvd", "River Rd",
    "Church St", "High St", "Broadway", "2nd Ave", "5th Ave", "Market St",
    "King St", "Queen St", "Station Rd", "Victoria Rd", "Mill Ln", "Bridge St",
    "Spring St", "Franklin Ave", "Jefferson Blvd", "Lincoln Way", "Madison Ct",
]

CONTINENTS = ["Africa", "Antarctica", "Asia", "Europe", "North America", "Oceania", "South America"]

REGIONS = [
    "North", "South", "East", "West", "Northeast", "Northwest", "Southeast", "Southwest",
    "Central", "EMEA", "APAC", "LATAM", "NA", "Midwest", "Benelux", "Nordics", "DACH",
]

PRODUCTS = [
    "Wireless Mouse", "Mechanical Keyboard", "USB-C Hub", "Laptop Stand", "Monitor 27in",
    "Noise Cancelling Headphones", "Webcam HD", "External SSD 1TB", "Desk Lamp",
    "Office Chair", "Standing Desk", "Phone Case", "Screen Protector", "Power Bank",
    "Bluetooth Speaker", "Smart Watch", "Fitness Tracker", "Tablet 10in", "E-Reader",
    "Coffee Maker", "Espresso Machine", "Electric Kettle", "Blender", "Air Fryer",
    "Vacuum Cleaner", "Robot Vacuum", "Air Purifier", "Humidifier", "Space Heater",
    "Running Shoes", "Yoga Mat", "Dumbbell Set", "Resistance Bands", "Water Bottle",
    "Backpack", "Travel Mug", "Notebook A5", "Ballpoint Pens", "Sticky Notes",
    "Printer Paper", "Ink Cartridge", "HDMI Cable", "Ethernet Cable", "Surge Protector",
    "Graphics Card", "RAM 16GB", "CPU Cooler", "Motherboard", "Power Supply 650W",
]

PRODUCT_CATEGORIES = [
    "Electronics", "Office Supplies", "Furniture", "Home Appliances", "Sports & Outdoors",
    "Clothing", "Footwear", "Kitchen", "Health & Beauty", "Toys & Games", "Books",
    "Groceries", "Automotive", "Garden", "Pet Supplies", "Software", "Hardware",
    "Accessories", "Stationery", "Lighting",
]

BRANDS = [
    "Norvex", "Altura", "Zenwell", "Kitero", "Bravona", "Luxar", "Omnitech", "Pinefield",
    "Quantex", "Solaria", "Tervo", "Ultrix", "Vantage", "Westmark", "Xylon", "Yonder",
    "Zephyr", "Arclight", "Boreal", "Cascade", "Dynamo", "Everest", "Fulcrum", "Glacier",
]

CURRENCY_CODES = [
    "USD", "EUR", "GBP", "JPY", "CHF", "CAD", "AUD", "CNY", "INR", "BRL",
    "MXN", "KRW", "SEK", "NOK", "DKK", "PLN", "TRY", "ZAR", "SGD", "HKD",
]

CURRENCY_SYMBOLS = ["$", "€", "£", "¥"]

PAYMENT_METHODS = [
    "Credit Card", "Debit Card", "PayPal", "Bank Transfer", "Wire Transfer", "Cash",
    "Check", "Apple Pay", "Google Pay", "Invoice", "Direct Debit", "Gift Card",
]

SHIPPING_METHODS = [
    "Standard", "Express", "Overnight", "Two-Day", "Ground", "Same Day",
    "Economy", "Freight", "Pickup", "International Priority",
]

STATUSES = [
    "Active", "Inactive", "Pending", "Completed", "Cancelled", "Shipped", "Delivered",
    "Processing", "On Hold", "Returned", "Approved", "Rejected", "Open", "Closed",
    "In Progress", "Failed", "Refunded", "Draft", "Archived", "New",
]

PRIORITIES = ["Low", "Medium", "High", "Critical", "Urgent", "P1", "P2", "P3", "P4"]

GENDERS = ["Male", "Female", "Non-binary", "M", "F", "Other", "Prefer not to say"]

MARITAL_STATUSES = ["Single", "Married", "Divorced", "Widowed", "Separated", "Domestic Partnership"]

BLOOD_TYPES = ["A+", "A-", "B+", "B-", "AB+", "AB-", "O+", "O-"]

DIAGNOSES = [
    "Hypertension", "Type 2 Diabetes", "Asthma", "Migraine", "Influenza", "Bronchitis",
    "Pneumonia", "Anemia", "Hypothyroidism", "Arthritis", "Allergic Rhinitis",
    "Gastritis", "Anxiety Disorder", "Depression", "Eczema", "Sinusitis",
    "Hyperlipidemia", "Osteoporosis", "Chronic Kidney Disease", "Atrial Fibrillation",
]

MEDICATIONS = [
    "Lisinopril", "Metformin", "Albuterol", "Sumatriptan", "Oseltamivir", "Amoxicillin",
    "Azithromycin", "Ferrous Sulfate", "Levothyroxine", "Ibuprofen", "Loratadine",
    "Omeprazole", "Sertraline", "Fluoxetine", "Hydrocortisone", "Atorvastatin",
    "Simvastatin", "Alendronate", "Losartan", "Warfarin", "Aspirin", "Paracetamol",
]

DOSAGE_UNITS = ["mg", "mcg", "ml", "g", "units", "mg/ml", "tablets"]

STOCK_SYMBOLS = [
    "AAPL", "MSFT", "GOOG", "AMZN", "TSLA", "META", "NVDA", "JPM", "V", "JNJ",
    "WMT", "PG", "UNH", "HD", "MA", "DIS", "BAC", "XOM", "PFE", "KO",
    "CSCO", "ORCL", "INTC", "IBM", "CRM", "ADBE", "NFLX", "PYPL", "ABNB", "UBER",
]

LANGUAGES = [
    ("English", "en"), ("Dutch", "nl"), ("German", "de"), ("French", "fr"),
    ("Spanish", "es"), ("Italian", "it"), ("Portuguese", "pt"), ("Japanese", "ja"),
    ("Chinese", "zh"), ("Korean", "ko"), ("Russian", "ru"), ("Arabic", "ar"),
    ("Hindi", "hi"), ("Turkish", "tr"), ("Polish", "pl"), ("Swedish", "sv"),
    ("Norwegian", "no"), ("Danish", "da"), ("Finnish", "fi"), ("Greek", "el"),
]

LANGUAGE_NAMES = [entry[0] for entry in LANGUAGES]
LANGUAGE_CODES = [entry[1] for entry in LANGUAGES]

COLORS = [
    "Red", "Blue", "Green", "Yellow", "Orange", "Purple", "Black", "White", "Gray",
    "Pink", "Brown", "Cyan", "Magenta", "Teal", "Navy", "Maroon", "Olive", "Silver",
    "Gold", "Beige", "Turquoise", "Lavender", "Crimson", "Indigo",
]

MONTH_NAMES = [
    "January", "February", "March", "April", "May", "June", "July", "August",
    "September", "October", "November", "December",
]

MONTH_ABBREVIATIONS = [name[:3] for name in MONTH_NAMES]

WEEKDAYS = ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"]

WEEKDAY_ABBREVIATIONS = [name[:3] for name in WEEKDAYS]

QUARTERS = ["Q1", "Q2", "Q3", "Q4", "Q1 2023", "Q2 2023", "Q3 2023", "Q4 2023", "FY24 Q1", "FY24 Q2"]

EMAIL_DOMAINS = [
    "gmail.com", "yahoo.com", "outlook.com", "hotmail.com", "icloud.com",
    "protonmail.com", "example.com", "company.com", "acme.org", "mail.net",
]

TOP_LEVEL_DOMAINS = ["com", "org", "net", "io", "co", "ai", "dev", "app", "eu", "nl"]

DOMAIN_WORDS = [
    "data", "cloud", "tech", "soft", "micro", "meta", "alpha", "delta", "nova", "prime",
    "apex", "core", "flux", "grid", "hub", "lab", "link", "loop", "node", "edge",
    "pulse", "shift", "spark", "stack", "stream", "sync", "wave", "zen", "bolt", "forge",
]

MIME_TYPES = [
    "text/csv", "text/plain", "text/html", "application/json", "application/pdf",
    "application/xml", "application/zip", "image/png", "image/jpeg", "image/gif",
    "video/mp4", "audio/mpeg", "application/vnd.ms-excel",
    "application/vnd.openxmlformats-officedocument.spreadsheetml.sheet",
]

FILE_EXTENSIONS = ["csv", "txt", "pdf", "xlsx", "json", "xml", "png", "jpg", "docx", "pptx", "zip", "log"]

FILE_WORDS = [
    "report", "invoice", "summary", "data", "export", "backup", "notes", "draft",
    "final", "budget", "forecast", "analysis", "presentation", "contract", "readme",
]

USER_AGENTS = [
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 Chrome/120.0 Safari/537.36",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 13_2) AppleWebKit/605.1.15 Version/16.3 Safari/605.1.15",
    "Mozilla/5.0 (X11; Linux x86_64) Gecko/20100101 Firefox/121.0",
    "Mozilla/5.0 (iPhone; CPU iPhone OS 17_1 like Mac OS X) AppleWebKit/605.1.15 Mobile/15E148",
    "Mozilla/5.0 (Linux; Android 14; Pixel 8) AppleWebKit/537.36 Chrome/120.0 Mobile Safari/537.36",
    "curl/8.4.0",
    "python-requests/2.31.0",
    "PostmanRuntime/7.36.0",
]

URL_PATHS = [
    "index.html", "products", "about", "contact", "pricing", "blog/post-1", "docs/api",
    "login", "signup", "dashboard", "settings", "search?q=table", "category/electronics",
    "item/1234", "cart", "checkout", "faq", "terms", "privacy", "careers",
]

GRADE_LETTERS = ["A", "A-", "B+", "B", "B-", "C+", "C", "D", "F", "Pass", "Fail"]

BOOLEAN_PAIRS = [
    ("true", "false"), ("True", "False"), ("TRUE", "FALSE"), ("yes", "no"),
    ("Yes", "No"), ("Y", "N"), ("1", "0"), ("t", "f"),
]

UNITS_WEIGHT = ["kg", "lbs", "g", "t"]
UNITS_HEIGHT = ["cm", "m", "in", "ft"]
UNITS_DISTANCE = ["km", "mi", "m", "miles"]
UNITS_TEMPERATURE = ["°C", "°F", "C", "F"]

VERSION_PREFIXES = ["v", "", "release-", "build "]

STREET_TYPES = ["St", "Ave", "Blvd", "Dr", "Ln", "Rd", "Way", "Ct", "Pl"]
