"""Synthetic table corpora: GitTables-like, WebTables-like, and shift scenarios.

This subpackage substitutes for the external data resources the paper trains
and evaluates on (GitTables, WebTables, the DBpedia knowledge base) with
offline generators that preserve the statistical contrasts the paper relies
on.  See DESIGN.md ("Substitutions") for the full rationale.
"""

from repro.corpus.collection import LabeledColumn, TableCorpus
from repro.corpus.generators import (
    OOD_PROFILES,
    TYPE_PROFILES,
    TypeProfile,
    generatable_types,
    generate_values,
    ood_types,
    profile_for,
)
from repro.corpus.gittables import GITTABLES_THEMES, DomainTheme, GitTablesConfig, GitTablesGenerator
from repro.corpus.shift import (
    DEFAULT_LABEL_SHIFTS,
    LabelShiftSpec,
    ShiftScenario,
    build_covariate_shift_corpus,
    build_label_shift_corpus,
    build_ood_corpus,
    build_scenario,
)
from repro.corpus.webtables import WEBTABLES_TOPICS, WebTablesConfig, WebTablesGenerator, WebTableTopic

__all__ = [
    "LabeledColumn",
    "TableCorpus",
    "TypeProfile",
    "TYPE_PROFILES",
    "OOD_PROFILES",
    "generate_values",
    "generatable_types",
    "ood_types",
    "profile_for",
    "DomainTheme",
    "GITTABLES_THEMES",
    "GitTablesConfig",
    "GitTablesGenerator",
    "WebTableTopic",
    "WEBTABLES_TOPICS",
    "WebTablesConfig",
    "WebTablesGenerator",
    "ShiftScenario",
    "LabelShiftSpec",
    "DEFAULT_LABEL_SHIFTS",
    "build_covariate_shift_corpus",
    "build_label_shift_corpus",
    "build_ood_corpus",
    "build_scenario",
]
