"""Synthetic GitTables-like corpus generator.

The paper pretrains SigmaTyper on GitTables because it contains tables that
resemble what one finds in enterprise databases: relatively wide, heterogeneous
tables with terse or abbreviated headers, mixed formatting, null values, and
semantic types drawn from enterprise, science, and medical domains.  The real
corpus cannot be downloaded in this environment, so this module generates an
offline equivalent with those statistical properties:

* tables are organised around *domain themes* (HR, sales, CRM, finance,
  logistics, medical, web analytics, ...), each theme mixing required and
  optional semantic types, so column co-occurrence patterns are realistic —
  which is what the Sato-style context features and co-occurrence labeling
  functions rely on;
* headers are drawn from the clean or the abbreviated ("dirty") header pools
  of each type, occasionally upper-cased or suffixed, and a small fraction of
  columns get entirely uninformative headers (``col_3``, ``field2``,
  ``Unnamed: 0``) so the header-matching step cannot solve everything;
* a configurable fraction of cells is nulled out, and a small fraction of
  columns is left unlabeled.

Every table records its theme and header style in ``Table.metadata`` so the
experiments can stratify results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import CorpusError
from repro.core.table import Column, Table
from repro.corpus.collection import TableCorpus
from repro.corpus.generators import TYPE_PROFILES, generate_values, profile_for

__all__ = ["DomainTheme", "GITTABLES_THEMES", "GitTablesConfig", "GitTablesGenerator"]


@dataclass(frozen=True)
class DomainTheme:
    """A family of tables about one enterprise domain."""

    name: str
    #: Types that (almost) always appear in a table of this theme.
    core_types: tuple[str, ...]
    #: Types that may additionally appear.
    optional_types: tuple[str, ...]
    #: Candidate table-name stems.
    table_stems: tuple[str, ...]


GITTABLES_THEMES: tuple[DomainTheme, ...] = (
    DomainTheme(
        name="human_resources",
        core_types=("id", "name", "job_title", "department", "salary"),
        optional_types=(
            "first_name", "last_name", "email", "phone_number", "age", "gender",
            "birth_date", "date", "boolean_flag", "city", "country", "status",
            "marital_status", "ssn",
        ),
        table_stems=("employees", "staff", "hr_roster", "payroll", "personnel"),
    ),
    DomainTheme(
        name="sales_orders",
        core_types=("order_id", "customer_id", "date", "price", "quantity"),
        optional_types=(
            "product", "product_id", "sku", "category", "discount", "tax_rate",
            "status", "payment_method", "shipping_method", "currency", "region",
            "city", "country", "profit", "invoice_number",
        ),
        table_stems=("orders", "sales", "order_lines", "transactions", "invoices"),
    ),
    DomainTheme(
        name="crm_customers",
        core_types=("customer_id", "name", "email", "country"),
        optional_types=(
            "phone_number", "company", "industry", "city", "state", "address",
            "zip_code", "date", "status", "region", "website", "revenue",
            "employee_count", "boolean_flag",
        ),
        table_stems=("customers", "accounts", "leads", "contacts", "prospects"),
    ),
    DomainTheme(
        name="product_inventory",
        core_types=("product_id", "product", "category", "price"),
        optional_types=(
            "sku", "brand", "quantity", "status", "weight", "color", "description",
            "rating", "count", "currency", "date", "boolean_flag",
        ),
        table_stems=("products", "inventory", "catalog", "stock", "items"),
    ),
    DomainTheme(
        name="finance_transactions",
        core_types=("transaction_id", "date", "price", "currency"),
        optional_types=(
            "account_number", "iban", "credit_card_number", "status", "category",
            "description", "profit", "budget", "interest_rate", "exchange_rate",
            "payment_method", "customer_id", "country",
        ),
        table_stems=("transactions", "ledger", "payments", "bank_statements", "journal"),
    ),
    DomainTheme(
        name="equities",
        core_types=("stock_symbol", "company", "price", "date"),
        optional_types=(
            "market_cap", "revenue", "profit", "percentage", "currency", "industry",
            "country", "employee_count", "year", "score",
        ),
        table_stems=("stocks", "equities", "holdings", "portfolio", "tickers"),
    ),
    DomainTheme(
        name="medical_records",
        core_types=("patient_id", "name", "birth_date", "diagnosis"),
        optional_types=(
            "age", "gender", "blood_type", "medication", "dosage", "heart_rate",
            "blood_pressure", "weight", "height", "date", "temperature", "status",
        ),
        table_stems=("patients", "admissions", "encounters", "lab_results", "prescriptions"),
    ),
    DomainTheme(
        name="web_analytics",
        core_types=("timestamp", "url", "ip_address"),
        optional_types=(
            "user_agent", "domain", "duration", "count", "status", "country",
            "city", "uuid", "username", "percentage", "file_size", "mime_type",
        ),
        table_stems=("page_views", "web_logs", "sessions", "clickstream", "events"),
    ),
    DomainTheme(
        name="logistics_shipments",
        core_types=("order_id", "date", "shipping_method", "status"),
        optional_types=(
            "address", "city", "state", "zip_code", "country", "weight", "distance",
            "quantity", "price", "customer_id", "region", "duration",
        ),
        table_stems=("shipments", "deliveries", "freight", "tracking", "routes"),
    ),
    DomainTheme(
        name="company_directory",
        core_types=("company", "industry", "country", "revenue"),
        optional_types=(
            "employee_count", "website", "city", "state", "market_cap", "year",
            "stock_symbol", "region", "description", "status",
        ),
        table_stems=("companies", "vendors", "suppliers", "partners", "firms"),
    ),
    DomainTheme(
        name="support_tickets",
        core_types=("id", "date", "status", "priority"),
        optional_types=(
            "customer_id", "description", "email", "category", "duration", "score",
            "username", "count", "boolean_flag", "department",
        ),
        table_stems=("tickets", "cases", "incidents", "requests", "issues"),
    ),
    DomainTheme(
        name="facilities_iot",
        core_types=("timestamp", "temperature", "id"),
        optional_types=(
            "percentage", "speed", "area", "status", "city", "latitude", "longitude",
            "count", "duration", "code", "boolean_flag",
        ),
        table_stems=("sensor_readings", "telemetry", "measurements", "device_logs", "metrics"),
    ),
    DomainTheme(
        name="education",
        core_types=("id", "name", "score", "grade"),
        optional_types=(
            "age", "gender", "date", "year", "email", "percentage", "status",
            "language", "country", "city",
        ),
        table_stems=("students", "enrollments", "grades", "exam_results", "courses"),
    ),
    DomainTheme(
        name="geography",
        core_types=("city", "country", "population"),
        optional_types=(
            "latitude", "longitude", "area", "region", "continent", "country_code",
            "year", "percentage", "language",
        ),
        table_stems=("cities", "locations", "sites", "branches", "offices"),
    ),
)

#: Headers that carry no semantic signal; used for a small fraction of columns.
_UNINFORMATIVE_HEADERS = ("col", "field", "column", "attr", "var", "Unnamed: 0", "value", "data")


@dataclass
class GitTablesConfig:
    """Parameters controlling the synthetic GitTables-like corpus."""

    num_tables: int = 200
    min_columns: int = 4
    max_columns: int = 14
    min_rows: int = 20
    max_rows: int = 120
    #: Probability that a table uses abbreviated/dirty headers.
    dirty_header_probability: float = 0.45
    #: Probability that an individual header gets an uninformative name.
    uninformative_header_probability: float = 0.08
    #: Probability that an individual column loses its ground-truth label.
    unlabeled_column_probability: float = 0.03
    #: Per-cell probability of a null value.
    null_cell_probability: float = 0.04
    #: Value-formatting style handed to the generators.
    value_style: str = "default"
    #: Restrict themes by name (``None`` means all themes).
    themes: tuple[str, ...] | None = None
    seed: int = 13

    def selected_themes(self) -> tuple[DomainTheme, ...]:
        """The theme objects this configuration draws from."""
        if self.themes is None:
            return GITTABLES_THEMES
        by_name = {theme.name: theme for theme in GITTABLES_THEMES}
        missing = [name for name in self.themes if name not in by_name]
        if missing:
            raise CorpusError(f"unknown GitTables themes: {missing}")
        return tuple(by_name[name] for name in self.themes)


class GitTablesGenerator:
    """Generates database-like annotated tables, one theme at a time."""

    def __init__(self, config: GitTablesConfig | None = None) -> None:
        self.config = config or GitTablesConfig()
        if self.config.min_columns < 1 or self.config.max_columns < self.config.min_columns:
            raise CorpusError("invalid column-count range in GitTablesConfig")
        if self.config.min_rows < 1 or self.config.max_rows < self.config.min_rows:
            raise CorpusError("invalid row-count range in GitTablesConfig")
        self._themes = self.config.selected_themes()

    # ------------------------------------------------------------------ tables
    def generate_table(self, rng: random.Random, table_index: int = 0) -> Table:
        """Generate one annotated table."""
        config = self.config
        theme = rng.choice(self._themes)
        num_rows = rng.randint(config.min_rows, config.max_rows)
        num_columns = rng.randint(config.min_columns, config.max_columns)
        header_style = "dirty" if rng.random() < config.dirty_header_probability else "clean"

        type_sequence = self._choose_types(rng, theme, num_columns)
        columns = [
            self._build_column(rng, type_name, num_rows, header_style)
            for type_name in type_sequence
        ]
        table_name = f"{rng.choice(theme.table_stems)}_{table_index:04d}"
        return Table(
            columns,
            name=table_name,
            metadata={"theme": theme.name, "header_style": header_style, "source": "gittables-like"},
        )

    def generate_corpus(self, num_tables: int | None = None, seed: int | None = None) -> TableCorpus:
        """Generate a full corpus of annotated tables."""
        count = self.config.num_tables if num_tables is None else num_tables
        rng = random.Random(self.config.seed if seed is None else seed)
        corpus = TableCorpus(name="gittables-like")
        for index in range(count):
            corpus.add(self.generate_table(rng, table_index=index))
        return corpus

    # ----------------------------------------------------------------- helpers
    def _choose_types(self, rng: random.Random, theme: DomainTheme, num_columns: int) -> list[str]:
        """Pick the semantic types of a table's columns for *theme*."""
        chosen: list[str] = []
        core = [t for t in theme.core_types if t in TYPE_PROFILES]
        optional = [t for t in theme.optional_types if t in TYPE_PROFILES]
        rng.shuffle(core)
        for type_name in core:
            if len(chosen) >= num_columns:
                break
            chosen.append(type_name)
        remaining = [t for t in optional if t not in chosen]
        rng.shuffle(remaining)
        while len(chosen) < num_columns and remaining:
            chosen.append(remaining.pop())
        # Wide tables may exhaust the theme pool; repeat optional types with
        # distinct headers rather than importing unrelated domains.
        while len(chosen) < num_columns:
            chosen.append(rng.choice(optional or core))
        rng.shuffle(chosen)
        return chosen

    def _build_column(
        self,
        rng: random.Random,
        type_name: str,
        num_rows: int,
        header_style: str,
    ) -> Column:
        """Generate one annotated column of *type_name*."""
        config = self.config
        profile = profile_for(type_name)
        header = rng.choice(profile.header_pool(header_style if header_style == "dirty" else "default"))
        header = self._decorate_header(rng, header)
        if rng.random() < config.uninformative_header_probability:
            header = f"{rng.choice(_UNINFORMATIVE_HEADERS)}_{rng.randint(0, 20)}"
        values: list[object] = generate_values(type_name, rng, num_rows, style=config.value_style)
        if config.null_cell_probability > 0:
            values = [
                None if rng.random() < config.null_cell_probability else value
                for value in values
            ]
        label: str | None = type_name
        if rng.random() < config.unlabeled_column_probability:
            label = None
        return Column(name=header, values=values, semantic_type=label,
                      metadata={"generator_type": type_name})

    @staticmethod
    def _decorate_header(rng: random.Random, header: str) -> str:
        """Apply the casing/prefix noise seen in real database exports."""
        roll = rng.random()
        if roll < 0.15:
            return header.upper()
        if roll < 0.25:
            return header.replace("_", " ").title()
        if roll < 0.30:
            return f"{header}_{rng.randint(1, 9)}"
        return header
