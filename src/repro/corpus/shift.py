"""Data-shift scenario builders (Figure 1 of the paper).

The paper distinguishes three flavours of shift between the training data and
the data encountered at inference time:

* **covariate shift** (Fig. 1a): the same semantic types, but differently
  distributed or differently formatted values — e.g. a ``salary`` column that
  was trained on ``62000`` style values and now arrives as ``"$ 62K"``;
* **label shift** (Fig. 1b): values that the training data associates with
  one label correspond to a different label in the user's context — e.g. a
  column headed ``"ID"`` that actually holds phone numbers;
* **out-of-distribution data** (Fig. 1c): tables and labels far from the
  training distribution — types the ontology does not even contain.

Each builder returns ordinary :class:`~repro.corpus.collection.TableCorpus`
objects so the same evaluation harness can be pointed at any scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import CorpusError
from repro.core.table import Column, Table
from repro.corpus.collection import TableCorpus
from repro.corpus.generators import (
    OOD_PROFILES,
    TYPE_PROFILES,
    generate_values,
    profile_for,
)
from repro.corpus.gittables import GitTablesConfig, GitTablesGenerator

__all__ = [
    "ShiftScenario",
    "build_covariate_shift_corpus",
    "LabelShiftSpec",
    "DEFAULT_LABEL_SHIFTS",
    "build_label_shift_corpus",
    "build_ood_corpus",
    "build_scenario",
]


@dataclass(frozen=True)
class ShiftScenario:
    """A named shift scenario with its target corpus and description."""

    kind: str
    corpus: TableCorpus
    description: str


# ------------------------------------------------------------------ covariate shift
def build_covariate_shift_corpus(
    num_tables: int = 60,
    seed: int = 101,
    themes: tuple[str, ...] | None = None,
) -> TableCorpus:
    """Tables whose labels are familiar but whose value formatting is not.

    The generators' ``"shifted"`` style renders the same semantic types with
    alternative formatting (currency-abbreviated salaries, US-format dates,
    country codes instead of names, ...), which is precisely the covariate
    shift of Fig. 1a.
    """
    config = GitTablesConfig(
        num_tables=num_tables,
        value_style="shifted",
        dirty_header_probability=0.6,
        themes=themes,
        seed=seed,
    )
    corpus = GitTablesGenerator(config).generate_corpus()
    corpus.name = "covariate-shift"
    return corpus


# ---------------------------------------------------------------------- label shift
@dataclass(frozen=True)
class LabelShiftSpec:
    """One label-shift rule: a column *looks like* ``header_type`` but *is* ``true_type``."""

    header_type: str
    true_type: str

    def validate(self) -> None:
        if self.header_type not in TYPE_PROFILES:
            raise CorpusError(f"unknown header_type {self.header_type!r} in label shift spec")
        if self.true_type not in TYPE_PROFILES:
            raise CorpusError(f"unknown true_type {self.true_type!r} in label shift spec")


#: The paper's running example is a column named "ID" that actually holds
#: phone numbers; these defaults extend that pattern to a handful of
#: plausible enterprise relabelings (revenue→salary mirrors Fig. 3).
DEFAULT_LABEL_SHIFTS: tuple[LabelShiftSpec, ...] = (
    LabelShiftSpec(header_type="id", true_type="phone_number"),
    LabelShiftSpec(header_type="revenue", true_type="salary"),
    LabelShiftSpec(header_type="code", true_type="country_code"),
    LabelShiftSpec(header_type="count", true_type="age"),
    LabelShiftSpec(header_type="score", true_type="percentage"),
)


def build_label_shift_corpus(
    specs: tuple[LabelShiftSpec, ...] = DEFAULT_LABEL_SHIFTS,
    num_tables: int = 60,
    columns_per_table: int = 6,
    rows_per_table: int = 60,
    seed: int = 211,
) -> TableCorpus:
    """Tables containing columns whose header suggests one type but whose
    values (and ground truth) belong to another.

    Every generated table contains exactly one shifted column plus a handful
    of ordinary context columns, so the scenario measures whether the system
    can be talked out of a misleading header by feedback and value evidence.
    """
    for spec in specs:
        spec.validate()
    rng = random.Random(seed)
    context_pool = [
        t for t in ("name", "email", "city", "country", "date", "company", "status", "quantity")
        if t in TYPE_PROFILES
    ]
    corpus = TableCorpus(name="label-shift")
    for index in range(num_tables):
        spec = specs[index % len(specs)]
        shifted_header = rng.choice(profile_for(spec.header_type).headers)
        shifted_values = generate_values(spec.true_type, rng, rows_per_table)
        shifted_column = Column(
            name=shifted_header,
            values=shifted_values,
            semantic_type=spec.true_type,
            metadata={"label_shift": f"{spec.header_type}->{spec.true_type}"},
        )
        context_types = rng.sample(context_pool, min(columns_per_table - 1, len(context_pool)))
        columns = [shifted_column]
        for type_name in context_types:
            header = rng.choice(profile_for(type_name).headers)
            columns.append(
                Column(
                    name=header,
                    values=generate_values(type_name, rng, rows_per_table),
                    semantic_type=type_name,
                )
            )
        rng.shuffle(columns)
        corpus.add(
            Table(
                columns,
                name=f"label_shift_{index:04d}",
                metadata={"source": "label-shift", "spec": f"{spec.header_type}->{spec.true_type}"},
            )
        )
    return corpus


# --------------------------------------------------------------------------- OOD
def build_ood_corpus(
    num_tables: int = 50,
    ood_columns_per_table: int = 2,
    in_distribution_columns_per_table: int = 3,
    rows_per_table: int = 50,
    seed: int = 307,
) -> TableCorpus:
    """Tables mixing ordinary columns with columns of types outside the ontology.

    The OOD columns are annotated with their true (unknown-to-the-system)
    type name prefixed with ``ood:`` so the evaluation harness can check the
    system abstains or predicts ``unknown`` for them without ever teaching the
    system those types.
    """
    rng = random.Random(seed)
    ood_pool = list(OOD_PROFILES)
    in_pool = [
        t for t in ("name", "date", "city", "price", "status", "email", "quantity", "country")
        if t in TYPE_PROFILES
    ]
    corpus = TableCorpus(name="out-of-distribution")
    for index in range(num_tables):
        columns: list[Column] = []
        for type_name in rng.sample(ood_pool, min(ood_columns_per_table, len(ood_pool))):
            profile = OOD_PROFILES[type_name]
            columns.append(
                Column(
                    name=rng.choice(profile.headers),
                    values=profile.generate(rng, rows_per_table, "default"),
                    semantic_type=f"ood:{type_name}",
                    metadata={"ood": True, "generator_type": type_name},
                )
            )
        for type_name in rng.sample(in_pool, min(in_distribution_columns_per_table, len(in_pool))):
            columns.append(
                Column(
                    name=rng.choice(profile_for(type_name).headers),
                    values=generate_values(type_name, rng, rows_per_table),
                    semantic_type=type_name,
                )
            )
        rng.shuffle(columns)
        corpus.add(
            Table(columns, name=f"ood_{index:04d}", metadata={"source": "out-of-distribution"})
        )
    return corpus


def build_scenario(kind: str, seed: int = 7, num_tables: int = 50) -> ShiftScenario:
    """Build one of the three Fig. 1 scenarios by name.

    Parameters
    ----------
    kind:
        ``"covariate"``, ``"label"``, or ``"ood"``.
    """
    if kind == "covariate":
        return ShiftScenario(
            kind="covariate",
            corpus=build_covariate_shift_corpus(num_tables=num_tables, seed=seed),
            description="Same labels, differently formatted/distributed values (Fig. 1a).",
        )
    if kind == "label":
        return ShiftScenario(
            kind="label",
            corpus=build_label_shift_corpus(num_tables=num_tables, seed=seed),
            description="Values associated with a different label in the user context (Fig. 1b).",
        )
    if kind == "ood":
        return ShiftScenario(
            kind="ood",
            corpus=build_ood_corpus(num_tables=num_tables, seed=seed),
            description="Tables and labels far from the training distribution (Fig. 1c).",
        )
    raise CorpusError(f"unknown shift scenario kind {kind!r}; expected covariate, label, or ood")
