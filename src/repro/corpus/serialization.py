"""Reading and writing tables and corpora (CSV and JSON).

Enterprise tables arrive as CSV exports; the pipeline's own artifacts (ground
truth, generated corpora) round-trip through JSON.  All functions here work
with :class:`pathlib.Path` or plain strings and never touch global state.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.core.errors import SerializationError
from repro.core.table import Table
from repro.corpus.collection import TableCorpus

__all__ = [
    "table_to_csv",
    "table_from_csv",
    "table_to_json",
    "table_from_json",
    "corpus_to_json",
    "corpus_from_json",
    "corpus_to_directory",
    "corpus_from_directory",
]


def table_to_csv(table: Table, path: str | Path) -> Path:
    """Write *table* to a CSV file (header row first); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header, rows = table.to_rows()
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            writer.writerow(["" if cell is None else cell for cell in row])
    return path


def table_from_csv(
    path: str | Path,
    name: str | None = None,
    semantic_types: dict[str, str] | None = None,
) -> Table:
    """Read a CSV file into a :class:`Table`.

    Parameters
    ----------
    semantic_types:
        Optional ``{header: type}`` ground-truth annotations to attach.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"CSV file not found: {path}")
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise SerializationError(f"CSV file is empty: {path}")
    header, data_rows = rows[0], rows[1:]
    table = Table.from_rows(header, data_rows, name=name or path.stem)
    if semantic_types:
        for column in table.columns:
            if column.name in semantic_types:
                column.semantic_type = semantic_types[column.name]
    return table


def table_to_json(table: Table, path: str | Path) -> Path:
    """Write *table* (including annotations and metadata) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(table.to_dict(), indent=2, default=str), encoding="utf-8")
    return path


def table_from_json(path: str | Path) -> Table:
    """Read a table previously written with :func:`table_to_json`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"JSON file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return Table.from_dict(payload)


def corpus_to_json(corpus: TableCorpus, path: str | Path) -> Path:
    """Write a whole corpus to one JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(corpus.to_dict(), indent=2, default=str), encoding="utf-8")
    return path


def corpus_from_json(path: str | Path) -> TableCorpus:
    """Read a corpus previously written with :func:`corpus_to_json`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"JSON file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return TableCorpus.from_dict(payload)


def corpus_to_directory(corpus: TableCorpus, directory: str | Path) -> list[Path]:
    """Write each table to ``<directory>/<table-name>.json``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    used_names: set[str] = set()
    for index, table in enumerate(corpus.tables):
        safe_name = "".join(c if c.isalnum() or c in "-_" else "_" for c in table.name) or f"table_{index}"
        if safe_name in used_names:
            safe_name = f"{safe_name}_{index}"
        used_names.add(safe_name)
        paths.append(table_to_json(table, directory / f"{safe_name}.json"))
    return paths


def corpus_from_directory(directory: str | Path, name: str = "") -> TableCorpus:
    """Read every ``*.json`` table in *directory* into a corpus."""
    directory = Path(directory)
    if not directory.is_dir():
        raise SerializationError(f"not a directory: {directory}")
    tables = [table_from_json(path) for path in sorted(directory.glob("*.json"))]
    return TableCorpus(tables, name=name or directory.name)
