"""Synthetic WebTables/WikiTables-like corpus generator.

Section 2.2 of the paper argues that models pretrained on web tables do not
transfer well to enterprise databases: web tables are small, homogeneous,
entity-centric, and carry verbose natural-language headers, whereas database
tables are wide, heterogeneous, and cryptically named.  This generator
produces the *web* side of that contrast so the training-data-relevance
experiment (E8 in DESIGN.md) can train one model per corpus and measure the
gap.

The generator intentionally covers only a narrow slice of the ontology — the
entity-statistic types typical of Wikipedia-style tables — which is itself
part of the phenomenon being reproduced (web corpora under-represent
enterprise types such as invoice numbers, SKUs, or IBANs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import CorpusError
from repro.core.table import Column, Table
from repro.corpus.collection import TableCorpus
from repro.corpus.generators import TYPE_PROFILES, generate_values, profile_for

__all__ = ["WebTableTopic", "WEBTABLES_TOPICS", "WebTablesConfig", "WebTablesGenerator"]


@dataclass(frozen=True)
class WebTableTopic:
    """An entity-centric topic typical of tables found on the Web."""

    name: str
    types: tuple[str, ...]
    table_stems: tuple[str, ...]


WEBTABLES_TOPICS: tuple[WebTableTopic, ...] = (
    WebTableTopic(
        name="countries",
        types=("country", "population", "area", "continent", "percentage", "year"),
        table_stems=("List of countries", "Countries by population", "World statistics"),
    ),
    WebTableTopic(
        name="cities",
        types=("city", "country", "population", "latitude", "longitude", "year"),
        table_stems=("Largest cities", "Cities by population", "Capital cities"),
    ),
    WebTableTopic(
        name="companies",
        types=("company", "industry", "revenue", "employee_count", "country", "year"),
        table_stems=("Fortune 500", "Largest companies", "Tech companies"),
    ),
    WebTableTopic(
        name="people",
        types=("name", "nationality", "birth_date", "age", "job_title"),
        table_stems=("Notable people", "List of scientists", "Award winners"),
    ),
    WebTableTopic(
        name="sports",
        types=("name", "country", "score", "year", "rating", "count"),
        table_stems=("Olympic medalists", "World records", "Season results"),
    ),
    WebTableTopic(
        name="products_reviews",
        types=("product", "brand", "price", "rating", "category"),
        table_stems=("Product comparison", "Best laptops", "Top rated gadgets"),
    ),
    WebTableTopic(
        name="languages",
        types=("language", "country", "population", "percentage"),
        table_stems=("Languages by speakers", "Official languages"),
    ),
    WebTableTopic(
        name="stocks",
        types=("stock_symbol", "company", "price", "market_cap", "percentage"),
        table_stems=("Stock index constituents", "Market movers"),
    ),
)


@dataclass
class WebTablesConfig:
    """Parameters controlling the synthetic web-table corpus."""

    num_tables: int = 200
    min_columns: int = 3
    max_columns: int = 6
    min_rows: int = 5
    max_rows: int = 30
    null_cell_probability: float = 0.01
    value_style: str = "default"
    seed: int = 29


class WebTablesGenerator:
    """Generates small, homogeneous, verbose-header tables."""

    def __init__(self, config: WebTablesConfig | None = None) -> None:
        self.config = config or WebTablesConfig()
        if self.config.min_columns < 1 or self.config.max_columns < self.config.min_columns:
            raise CorpusError("invalid column-count range in WebTablesConfig")
        if self.config.min_rows < 1 or self.config.max_rows < self.config.min_rows:
            raise CorpusError("invalid row-count range in WebTablesConfig")

    def generate_table(self, rng: random.Random, table_index: int = 0) -> Table:
        """Generate one annotated web-style table."""
        config = self.config
        topic = rng.choice(WEBTABLES_TOPICS)
        available = [t for t in topic.types if t in TYPE_PROFILES]
        num_columns = min(rng.randint(config.min_columns, config.max_columns), len(available))
        num_rows = rng.randint(config.min_rows, config.max_rows)
        chosen = rng.sample(available, num_columns)

        columns = []
        for type_name in chosen:
            profile = profile_for(type_name)
            header_pool = profile.verbose_headers or profile.headers
            header = rng.choice(header_pool)
            values: list[object] = generate_values(type_name, rng, num_rows, style=config.value_style)
            if config.null_cell_probability > 0:
                values = [
                    None if rng.random() < config.null_cell_probability else value
                    for value in values
                ]
            columns.append(
                Column(name=header, values=values, semantic_type=type_name,
                       metadata={"generator_type": type_name})
            )
        return Table(
            columns,
            name=f"{rng.choice(topic.table_stems)} #{table_index}",
            metadata={"topic": topic.name, "source": "webtables-like"},
        )

    def generate_corpus(self, num_tables: int | None = None, seed: int | None = None) -> TableCorpus:
        """Generate a full corpus of annotated web-style tables."""
        count = self.config.num_tables if num_tables is None else num_tables
        rng = random.Random(self.config.seed if seed is None else seed)
        corpus = TableCorpus(name="webtables-like")
        for index in range(count):
            corpus.add(self.generate_table(rng, table_index=index))
        return corpus

    @staticmethod
    def covered_types() -> set[str]:
        """The (narrow) set of semantic types web tables can ever contain."""
        covered: set[str] = set()
        for topic in WEBTABLES_TOPICS:
            covered.update(t for t in topic.types if t in TYPE_PROFILES)
        return covered
