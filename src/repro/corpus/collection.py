"""Table corpus container.

A :class:`TableCorpus` is an ordered collection of annotated tables, the unit
used for training, evaluation, and weak-label extraction.  It deliberately
stays a thin wrapper: every method returns plain tables/columns so the rest of
the system never depends on corpus internals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.errors import CorpusError
from repro.core.table import Column, Table

__all__ = ["LabeledColumn", "TableCorpus"]


@dataclass(frozen=True)
class LabeledColumn:
    """A column together with its provenance inside a corpus."""

    table_index: int
    column_index: int
    table: Table
    column: Column

    @property
    def label(self) -> str | None:
        """Ground-truth semantic type (``None`` for unlabeled columns)."""
        return self.column.semantic_type

    @property
    def neighbor_types(self) -> list[str | None]:
        """Ground-truth types of the other columns in the same table."""
        return [
            other.semantic_type
            for index, other in enumerate(self.table.columns)
            if index != self.column_index
        ]


class TableCorpus:
    """An ordered collection of tables with helpers for ML workflows."""

    def __init__(self, tables: Iterable[Table] = (), name: str = "") -> None:
        self.tables: list[Table] = list(tables)
        self.name = name

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables)

    def __getitem__(self, index: int) -> Table:
        return self.tables[index]

    def __repr__(self) -> str:
        return f"TableCorpus(name={self.name!r}, tables={len(self.tables)}, columns={self.num_columns})"

    def add(self, table: Table) -> None:
        """Append a table to the corpus."""
        self.tables.append(table)

    def extend(self, tables: Iterable[Table]) -> None:
        """Append several tables."""
        self.tables.extend(tables)

    def merge(self, other: "TableCorpus", name: str = "") -> "TableCorpus":
        """A new corpus with this corpus's tables followed by *other*'s."""
        return TableCorpus(self.tables + other.tables, name=name or self.name)

    @property
    def num_columns(self) -> int:
        """Total number of columns across all tables."""
        return sum(table.num_columns for table in self.tables)

    @property
    def num_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(table.num_rows for table in self.tables)

    # ----------------------------------------------------------------- columns
    def columns(self) -> Iterator[LabeledColumn]:
        """Iterate over every column with its provenance."""
        for table_index, table in enumerate(self.tables):
            for column_index, column in enumerate(table.columns):
                yield LabeledColumn(table_index, column_index, table, column)

    def labeled_columns(self) -> list[LabeledColumn]:
        """Columns that carry a ground-truth semantic type."""
        return [entry for entry in self.columns() if entry.label is not None]

    def columns_of_type(self, semantic_type: str) -> list[LabeledColumn]:
        """Columns annotated with *semantic_type*."""
        return [entry for entry in self.columns() if entry.label == semantic_type]

    def label_distribution(self) -> dict[str, int]:
        """Number of labeled columns per semantic type."""
        counts: dict[str, int] = {}
        for entry in self.labeled_columns():
            counts[entry.label] = counts.get(entry.label, 0) + 1  # type: ignore[index]
        return counts

    def semantic_types(self) -> list[str]:
        """Distinct semantic types present, sorted alphabetically."""
        return sorted(self.label_distribution())

    # ------------------------------------------------------------------ slicing
    def filter_tables(self, predicate: Callable[[Table], bool]) -> "TableCorpus":
        """A new corpus with only the tables satisfying *predicate*."""
        return TableCorpus([t for t in self.tables if predicate(t)], name=self.name)

    def restrict_types(self, types: Sequence[str]) -> "TableCorpus":
        """A new corpus where labels outside *types* are cleared to ``None``.

        The columns themselves are kept (the table shape is untouched); only
        their annotations are dropped, which mirrors how a deployment would
        treat columns whose type is outside the supported ontology.
        """
        keep = set(types)

        def scrub(table: Table) -> Table:
            return table.map_columns(
                lambda column: Column(
                    name=column.name,
                    values=list(column.values),
                    semantic_type=column.semantic_type if column.semantic_type in keep else None,
                    metadata=dict(column.metadata),
                )
            )

        return TableCorpus([scrub(t) for t in self.tables], name=self.name)

    def sample_tables(self, k: int, seed: int | None = None) -> "TableCorpus":
        """A new corpus with a reproducible sample of at most *k* tables."""
        if k >= len(self.tables):
            return TableCorpus(list(self.tables), name=self.name)
        rng = random.Random(seed)
        return TableCorpus(rng.sample(self.tables, k), name=self.name)

    def split(
        self, train_fraction: float = 0.8, seed: int | None = None
    ) -> tuple["TableCorpus", "TableCorpus"]:
        """Split into train/test corpora at the *table* level.

        Splitting by table (not by column) prevents leakage of table context
        between the two sides, matching how the paper's systems are evaluated.
        """
        if not 0.0 < train_fraction < 1.0:
            raise CorpusError("train_fraction must be strictly between 0 and 1")
        indices = list(range(len(self.tables)))
        random.Random(seed).shuffle(indices)
        cut = int(round(train_fraction * len(indices)))
        cut = min(max(cut, 1), len(indices) - 1) if len(indices) > 1 else cut
        train = TableCorpus([self.tables[i] for i in indices[:cut]], name=f"{self.name}-train")
        test = TableCorpus([self.tables[i] for i in indices[cut:]], name=f"{self.name}-test")
        return train, test

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {"name": self.name, "tables": [table.to_dict() for table in self.tables]}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TableCorpus":
        """Inverse of :meth:`to_dict`."""
        tables = [Table.from_dict(entry) for entry in payload.get("tables", [])]  # type: ignore[union-attr]
        return cls(tables, name=str(payload.get("name", "")))

    def summary(self) -> dict[str, object]:
        """Aggregate statistics used by examples and reports."""
        distribution = self.label_distribution()
        column_counts = [table.num_columns for table in self.tables]
        row_counts = [table.num_rows for table in self.tables]
        return {
            "name": self.name,
            "tables": len(self.tables),
            "columns": self.num_columns,
            "labeled_columns": sum(distribution.values()),
            "distinct_types": len(distribution),
            "avg_columns_per_table": (sum(column_counts) / len(column_counts)) if column_counts else 0.0,
            "avg_rows_per_table": (sum(row_counts) / len(row_counts)) if row_counts else 0.0,
        }
