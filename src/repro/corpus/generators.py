"""Per-semantic-type value generators and header vocabularies.

This module is the single source of truth connecting the ontology to data:
for every leaf semantic type it defines a :class:`TypeProfile` with

* ``generate`` — a function producing realistic raw cell strings for that
  type, parameterised by a :class:`random.Random` instance and a *style*
  (``"default"`` or ``"shifted"``; the shifted style renders the same
  underlying quantity with different formatting, which is exactly the
  covariate shift of Fig. 1a),
* ``headers`` / ``dirty_headers`` / ``verbose_headers`` — the clean database
  headers, the abbreviated/cryptic headers typical of enterprise exports
  (GitTables-like), and the verbose natural-language headers typical of web
  tables, and
* ``kb_values`` — a closed vocabulary for the type when one exists, used to
  build the offline knowledge base that substitutes for DBpedia lookups.

The :data:`OOD_PROFILES` registry defines additional generators for types
that are deliberately *absent* from the default ontology; they exercise the
out-of-distribution path (Fig. 1c).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.errors import CorpusError
from repro.corpus import vocab

__all__ = [
    "TypeProfile",
    "TYPE_PROFILES",
    "OOD_PROFILES",
    "profile_for",
    "generate_values",
    "generatable_types",
    "ood_types",
]

GeneratorFn = Callable[[random.Random, int, str], list[str]]


@dataclass(frozen=True)
class TypeProfile:
    """Everything the corpus generators know about one semantic type."""

    type_name: str
    generate: GeneratorFn
    headers: tuple[str, ...]
    dirty_headers: tuple[str, ...] = ()
    verbose_headers: tuple[str, ...] = ()
    kb_values: tuple[str, ...] = ()
    numeric: bool = False

    def header_pool(self, style: str) -> tuple[str, ...]:
        """Candidate headers for the requested corpus style."""
        if style == "dirty" and self.dirty_headers:
            return self.dirty_headers
        if style == "verbose" and self.verbose_headers:
            return self.verbose_headers
        return self.headers


# --------------------------------------------------------------------------- helpers
def _choices(rng: random.Random, pool: Iterable[str], n: int) -> list[str]:
    pool = list(pool)
    return [rng.choice(pool) for _ in range(n)]


def _numbers(
    rng: random.Random,
    n: int,
    low: float,
    high: float,
    decimals: int = 0,
    prefix: str = "",
    suffix: str = "",
    thousands: bool = False,
) -> list[str]:
    values = []
    for _ in range(n):
        number = rng.uniform(low, high)
        if decimals == 0:
            rendered = f"{int(round(number)):,}" if thousands else str(int(round(number)))
        else:
            rendered = f"{number:,.{decimals}f}" if thousands else f"{number:.{decimals}f}"
        values.append(f"{prefix}{rendered}{suffix}")
    return values


def _date(rng: random.Random, iso: bool = True, year_range: tuple[int, int] = (2015, 2024)) -> str:
    year = rng.randint(*year_range)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    if iso:
        return f"{year:04d}-{month:02d}-{day:02d}"
    return f"{month}/{day}/{year}"


def _full_name(rng: random.Random) -> str:
    return f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}"


# --------------------------------------------------------------------------- person
def _gen_name(rng, n, style):
    if style == "shifted":
        # "Last, First" rendering — same entity, different formatting.
        return [f"{rng.choice(vocab.LAST_NAMES)}, {rng.choice(vocab.FIRST_NAMES)}" for _ in range(n)]
    return [_full_name(rng) for _ in range(n)]


def _gen_first_name(rng, n, style):
    return _choices(rng, vocab.FIRST_NAMES, n)


def _gen_last_name(rng, n, style):
    return _choices(rng, vocab.LAST_NAMES, n)


def _gen_email(rng, n, style):
    values = []
    for _ in range(n):
        first = rng.choice(vocab.FIRST_NAMES).lower()
        last = rng.choice(vocab.LAST_NAMES).lower()
        domain = rng.choice(vocab.EMAIL_DOMAINS)
        separator = rng.choice([".", "_", ""])
        if style == "shifted":
            values.append(f"{first[0]}{last}{rng.randint(1, 99)}@{domain}")
        else:
            values.append(f"{first}{separator}{last}@{domain}")
    return values


def _gen_phone(rng, n, style):
    values = []
    for _ in range(n):
        area, mid, tail = rng.randint(200, 989), rng.randint(100, 999), rng.randint(1000, 9999)
        if style == "shifted":
            values.append(f"+{rng.randint(1, 49)} {rng.randint(10, 99)} {rng.randint(1000000, 9999999)}")
        else:
            values.append(rng.choice([f"({area}) {mid}-{tail}", f"{area}-{mid}-{tail}", f"{area}.{mid}.{tail}"]))
    return values


def _gen_age(rng, n, style):
    if style == "shifted":
        return _numbers(rng, n, 1, 17)
    return _numbers(rng, n, 18, 90)


def _gen_gender(rng, n, style):
    pool = ["M", "F"] if style == "shifted" else vocab.GENDERS
    return _choices(rng, pool, n)


def _gen_birth_date(rng, n, style):
    return [_date(rng, iso=(style != "shifted"), year_range=(1950, 2005)) for _ in range(n)]


def _gen_nationality(rng, n, style):
    return _choices(rng, vocab.NATIONALITIES, n)


def _gen_job_title(rng, n, style):
    return _choices(rng, vocab.JOB_TITLES, n)


def _gen_username(rng, n, style):
    values = []
    for _ in range(n):
        first = rng.choice(vocab.FIRST_NAMES).lower()
        last = rng.choice(vocab.LAST_NAMES).lower()
        values.append(rng.choice([f"{first}.{last}", f"{first[0]}{last}", f"{first}{rng.randint(1, 999)}"]))
    return values


def _gen_ssn(rng, n, style):
    return [f"{rng.randint(100, 899):03d}-{rng.randint(10, 99):02d}-{rng.randint(1000, 9999):04d}" for _ in range(n)]


def _gen_marital_status(rng, n, style):
    return _choices(rng, vocab.MARITAL_STATUSES, n)


# --------------------------------------------------------------------- organization
def _gen_company(rng, n, style):
    values = []
    for _ in range(n):
        base = rng.choice(vocab.COMPANIES)
        if style == "shifted" or rng.random() < 0.3:
            values.append(f"{base} {rng.choice(vocab.COMPANY_SUFFIXES)}")
        else:
            values.append(base)
    return values


def _gen_department(rng, n, style):
    return _choices(rng, vocab.DEPARTMENTS, n)


def _gen_industry(rng, n, style):
    return _choices(rng, vocab.INDUSTRIES, n)


def _gen_salary(rng, n, style):
    if style == "shifted":
        return [f"$ {rng.randint(30, 250)}K" for _ in range(n)]
    return _numbers(rng, n, 30_000, 250_000, thousands=rng.random() < 0.5)


def _gen_revenue(rng, n, style):
    if style == "shifted":
        return [f"{rng.uniform(0.1, 900):.1f}M" for _ in range(n)]
    return _numbers(rng, n, 100_000, 900_000_000, thousands=True)


def _gen_employee_count(rng, n, style):
    return _numbers(rng, n, 1, 50_000)


def _gen_website(rng, n, style):
    values = []
    for _ in range(n):
        word = rng.choice(vocab.DOMAIN_WORDS) + rng.choice(vocab.DOMAIN_WORDS)
        tld = rng.choice(vocab.TOP_LEVEL_DOMAINS)
        prefix = "www." if rng.random() < 0.5 else ""
        values.append(f"https://{prefix}{word}.{tld}")
    return values


# -------------------------------------------------------------------------- place
def _gen_country(rng, n, style):
    if style == "shifted":
        return _choices(rng, vocab.COUNTRY_CODES_3, n)
    return _choices(rng, vocab.COUNTRY_NAMES, n)


def _gen_country_code(rng, n, style):
    pool = vocab.COUNTRY_CODES_3 if style == "shifted" else vocab.COUNTRY_CODES_2
    return _choices(rng, pool, n)


def _gen_city(rng, n, style):
    return _choices(rng, vocab.CITIES, n)


def _gen_state(rng, n, style):
    pool = vocab.STATE_CODES if style == "shifted" else vocab.STATE_NAMES
    return _choices(rng, pool, n)


def _gen_address(rng, n, style):
    values = []
    for _ in range(n):
        number = rng.randint(1, 9999)
        street = rng.choice(vocab.STREET_NAMES)
        if style == "shifted":
            values.append(f"{street} {number}, {rng.choice(vocab.CITIES)}")
        else:
            values.append(f"{number} {street}")
    return values


def _gen_zip_code(rng, n, style):
    if style == "shifted":
        return [f"{rng.randint(1000, 9999)} {rng.choice(string.ascii_uppercase)}{rng.choice(string.ascii_uppercase)}" for _ in range(n)]
    return [f"{rng.randint(501, 99950):05d}" for _ in range(n)]


def _gen_latitude(rng, n, style):
    return _numbers(rng, n, -90, 90, decimals=rng.choice([4, 5, 6]))


def _gen_longitude(rng, n, style):
    return _numbers(rng, n, -180, 180, decimals=rng.choice([4, 5, 6]))


def _gen_continent(rng, n, style):
    return _choices(rng, vocab.CONTINENTS, n)


def _gen_region(rng, n, style):
    return _choices(rng, vocab.REGIONS, n)


# ------------------------------------------------------------------------ temporal
def _gen_date(rng, n, style):
    return [_date(rng, iso=(style != "shifted")) for _ in range(n)]


def _gen_timestamp(rng, n, style):
    values = []
    for _ in range(n):
        date = _date(rng)
        hour, minute, second = rng.randint(0, 23), rng.randint(0, 59), rng.randint(0, 59)
        if style == "shifted":
            values.append(f"{date} {hour:02d}:{minute:02d}")
        else:
            values.append(f"{date}T{hour:02d}:{minute:02d}:{second:02d}Z")
    return values


def _gen_year(rng, n, style):
    low, high = (1950, 1999) if style == "shifted" else (1990, 2025)
    return [str(rng.randint(low, high)) for _ in range(n)]


def _gen_month(rng, n, style):
    pool = vocab.MONTH_ABBREVIATIONS if style == "shifted" else vocab.MONTH_NAMES
    return _choices(rng, pool, n)


def _gen_day_of_week(rng, n, style):
    pool = vocab.WEEKDAY_ABBREVIATIONS if style == "shifted" else vocab.WEEKDAYS
    return _choices(rng, pool, n)


def _gen_time(rng, n, style):
    values = []
    for _ in range(n):
        hour, minute = rng.randint(0, 23), rng.randint(0, 59)
        if style == "shifted":
            suffix = "AM" if hour < 12 else "PM"
            values.append(f"{(hour % 12) or 12}:{minute:02d} {suffix}")
        else:
            values.append(f"{hour:02d}:{minute:02d}")
    return values


def _gen_duration(rng, n, style):
    if style == "shifted":
        return [f"{rng.randint(1, 48)}h {rng.randint(0, 59)}m" for _ in range(n)]
    return _numbers(rng, n, 1, 600)


def _gen_quarter(rng, n, style):
    return _choices(rng, vocab.QUARTERS, n)


# ---------------------------------------------------------------------- identifiers
def _gen_id(rng, n, style):
    start = rng.randint(1, 5000)
    if style == "shifted":
        prefix = rng.choice(["REC-", "ROW", "#"])
        return [f"{prefix}{start + i}" for i in range(n)]
    return [str(start + i) for i in range(n)]


def _gen_order_id(rng, n, style):
    prefix = rng.choice(["ORD-", "SO-", "PO-", ""]) if style != "shifted" else "2024/"
    return [f"{prefix}{rng.randint(10000, 99999)}" for _ in range(n)]


def _gen_customer_id(rng, n, style):
    prefix = rng.choice(["CUST-", "C", "ACME-"])
    return [f"{prefix}{rng.randint(1000, 99999)}" for _ in range(n)]


def _gen_product_id(rng, n, style):
    return [f"P-{rng.randint(100, 9999)}" for _ in range(n)]


def _gen_sku(rng, n, style):
    values = []
    for _ in range(n):
        letters = "".join(rng.choice(string.ascii_uppercase) for _ in range(3))
        values.append(f"{letters}-{rng.randint(100, 999)}-{rng.randint(10, 99)}")
    return values


def _gen_invoice_number(rng, n, style):
    return [f"INV-{rng.randint(2019, 2025)}-{rng.randint(1000, 9999)}" for _ in range(n)]


def _gen_transaction_id(rng, n, style):
    return ["TXN" + "".join(rng.choice(string.hexdigits.upper()) for _ in range(10)) for _ in range(n)]


def _gen_uuid(rng, n, style):
    def block(k):
        return "".join(rng.choice("0123456789abcdef") for _ in range(k))

    return [f"{block(8)}-{block(4)}-{block(4)}-{block(4)}-{block(12)}" for _ in range(n)]


def _gen_isbn(rng, n, style):
    return [f"978-{rng.randint(0, 9)}-{rng.randint(10, 99)}-{rng.randint(100000, 999999)}-{rng.randint(0, 9)}" for _ in range(n)]


def _gen_patient_id(rng, n, style):
    return [f"MRN{rng.randint(100000, 999999)}" for _ in range(n)]


def _gen_code(rng, n, style):
    values = []
    for _ in range(n):
        values.append("".join(rng.choice(string.ascii_uppercase) for _ in range(rng.randint(2, 4))))
    return values


# -------------------------------------------------------------------------- commerce
def _gen_product(rng, n, style):
    return _choices(rng, vocab.PRODUCTS, n)


def _gen_category(rng, n, style):
    return _choices(rng, vocab.PRODUCT_CATEGORIES, n)


def _gen_brand(rng, n, style):
    return _choices(rng, vocab.BRANDS, n)


def _gen_price(rng, n, style):
    if style == "shifted":
        return [f"€{rng.uniform(1, 2000):.2f}".replace(".", ",") for _ in range(n)]
    symbol = rng.choice(["$", ""])
    return _numbers(rng, n, 0.5, 2_000, decimals=2, prefix=symbol)


def _gen_currency(rng, n, style):
    pool = vocab.CURRENCY_SYMBOLS if style == "shifted" else vocab.CURRENCY_CODES
    return _choices(rng, pool, n)


def _gen_quantity(rng, n, style):
    return _numbers(rng, n, 1, 500)


def _gen_discount(rng, n, style):
    if style == "shifted":
        return _numbers(rng, n, 0, 0.6, decimals=2)
    return _numbers(rng, n, 0, 60, suffix="%")


def _gen_tax_rate(rng, n, style):
    return _numbers(rng, n, 0, 25, decimals=1, suffix="%" if style != "shifted" else "")


def _gen_payment_method(rng, n, style):
    return _choices(rng, vocab.PAYMENT_METHODS, n)


def _gen_shipping_method(rng, n, style):
    return _choices(rng, vocab.SHIPPING_METHODS, n)


# --------------------------------------------------------------------------- finance
def _gen_iban(rng, n, style):
    values = []
    for _ in range(n):
        country = rng.choice(["NL", "DE", "FR", "GB", "ES"])
        bank = "".join(rng.choice(string.ascii_uppercase) for _ in range(4))
        values.append(f"{country}{rng.randint(10, 99)}{bank}{rng.randint(10 ** 9, 10 ** 10 - 1)}")
    return values


def _gen_credit_card(rng, n, style):
    values = []
    for _ in range(n):
        groups = [str(rng.randint(1000, 9999)) for _ in range(4)]
        separator = " " if style != "shifted" else "-"
        values.append(separator.join(groups))
    return values


def _gen_account_number(rng, n, style):
    return [str(rng.randint(10 ** 7, 10 ** 10)) for _ in range(n)]


def _gen_stock_symbol(rng, n, style):
    return _choices(rng, vocab.STOCK_SYMBOLS, n)


def _gen_market_cap(rng, n, style):
    if style == "shifted":
        return [f"{rng.uniform(0.1, 3000):.1f}B" for _ in range(n)]
    return _numbers(rng, n, 1e8, 3e12, thousands=True)


def _gen_interest_rate(rng, n, style):
    return _numbers(rng, n, 0, 15, decimals=2, suffix="%" if style != "shifted" else "")


def _gen_exchange_rate(rng, n, style):
    return _numbers(rng, n, 0.1, 150, decimals=4)


def _gen_profit(rng, n, style):
    values = []
    for _ in range(n):
        amount = rng.uniform(-5_000_000, 20_000_000)
        if style == "shifted" and amount < 0:
            values.append(f"({abs(amount):,.0f})")
        else:
            values.append(f"{amount:,.0f}")
    return values


def _gen_budget(rng, n, style):
    return _numbers(rng, n, 10_000, 5_000_000, thousands=True)


# --------------------------------------------------------------------------- medical
def _gen_blood_type(rng, n, style):
    return _choices(rng, vocab.BLOOD_TYPES, n)


def _gen_diagnosis(rng, n, style):
    return _choices(rng, vocab.DIAGNOSES, n)


def _gen_medication(rng, n, style):
    return _choices(rng, vocab.MEDICATIONS, n)


def _gen_dosage(rng, n, style):
    return [f"{rng.choice([5, 10, 20, 25, 50, 100, 200, 250, 500])} {rng.choice(vocab.DOSAGE_UNITS)}" for _ in range(n)]


def _gen_heart_rate(rng, n, style):
    return _numbers(rng, n, 45, 180)


def _gen_blood_pressure(rng, n, style):
    return [f"{rng.randint(90, 180)}/{rng.randint(55, 110)}" for _ in range(n)]


# ----------------------------------------------------------------------- measurement
def _gen_temperature(rng, n, style):
    if style == "shifted":
        return _numbers(rng, n, 20, 110, decimals=1, suffix="°F")
    return _numbers(rng, n, -30, 45, decimals=1)


def _gen_weight(rng, n, style):
    if style == "shifted":
        return _numbers(rng, n, 80, 400, decimals=1, suffix=" lbs")
    return _numbers(rng, n, 0.1, 180, decimals=1)


def _gen_height(rng, n, style):
    if style == "shifted":
        return [f"{rng.randint(4, 6)}'{rng.randint(0, 11)}\"" for _ in range(n)]
    return _numbers(rng, n, 140, 210)


def _gen_distance(rng, n, style):
    return _numbers(rng, n, 0.1, 10_000, decimals=1)


def _gen_area(rng, n, style):
    return _numbers(rng, n, 10, 1_000_000, decimals=1)


def _gen_speed(rng, n, style):
    return _numbers(rng, n, 1, 300, decimals=1)


def _gen_percentage(rng, n, style):
    if style == "shifted":
        return _numbers(rng, n, 0, 1, decimals=3)
    return _numbers(rng, n, 0, 100, decimals=1, suffix="%")


def _gen_population(rng, n, style):
    return _numbers(rng, n, 500, 30_000_000, thousands=True)


# --------------------------------------------------------------------------------- web
def _gen_url(rng, n, style):
    values = []
    for _ in range(n):
        word = rng.choice(vocab.DOMAIN_WORDS) + rng.choice(vocab.DOMAIN_WORDS)
        tld = rng.choice(vocab.TOP_LEVEL_DOMAINS)
        path = rng.choice(vocab.URL_PATHS)
        values.append(f"https://{word}.{tld}/{path}")
    return values


def _gen_ip_address(rng, n, style):
    if style == "shifted":
        def block():
            return "".join(rng.choice("0123456789abcdef") for _ in range(4))

        return [f"{block()}:{block()}::{block()}" for _ in range(n)]
    return [".".join(str(rng.randint(0, 255)) for _ in range(4)) for _ in range(n)]


def _gen_domain(rng, n, style):
    return [f"{rng.choice(vocab.DOMAIN_WORDS)}{rng.choice(vocab.DOMAIN_WORDS)}.{rng.choice(vocab.TOP_LEVEL_DOMAINS)}" for _ in range(n)]


def _gen_user_agent(rng, n, style):
    return _choices(rng, vocab.USER_AGENTS, n)


def _gen_file_name(rng, n, style):
    return [f"{rng.choice(vocab.FILE_WORDS)}_{rng.randint(1, 999)}.{rng.choice(vocab.FILE_EXTENSIONS)}" for _ in range(n)]


def _gen_file_size(rng, n, style):
    if style == "shifted":
        return [f"{rng.uniform(0.1, 950):.1f} MB" for _ in range(n)]
    return _numbers(rng, n, 100, 10 ** 9)


def _gen_mime_type(rng, n, style):
    return _choices(rng, vocab.MIME_TYPES, n)


def _gen_version(rng, n, style):
    return [f"{rng.choice(vocab.VERSION_PREFIXES)}{rng.randint(0, 9)}.{rng.randint(0, 20)}.{rng.randint(0, 40)}" for _ in range(n)]


def _gen_language(rng, n, style):
    pool = vocab.LANGUAGE_CODES if style == "shifted" else vocab.LANGUAGE_NAMES
    return _choices(rng, pool, n)


def _gen_color(rng, n, style):
    if style == "shifted":
        return ["#" + "".join(rng.choice("0123456789ABCDEF") for _ in range(6)) for _ in range(n)]
    return _choices(rng, vocab.COLORS, n)


# ------------------------------------------------------------------------------ generic
def _gen_status(rng, n, style):
    return _choices(rng, vocab.STATUSES, n)


def _gen_description(rng, n, style):
    subjects = ["Customer", "Order", "Shipment", "Ticket", "Invoice", "Account", "Project", "Request"]
    verbs = ["requires", "received", "completed", "escalated", "updated", "scheduled", "approved", "flagged"]
    objects = ["follow-up", "review", "payment", "delivery", "inspection", "renewal", "refund", "signature"]
    return [f"{rng.choice(subjects)} {rng.choice(verbs)} {rng.choice(objects)}" for _ in range(n)]


def _gen_rating(rng, n, style):
    if style == "shifted":
        return [f"{rng.randint(1, 10)}/10" for _ in range(n)]
    return _numbers(rng, n, 1, 5, decimals=1)


def _gen_score(rng, n, style):
    return _numbers(rng, n, 0, 100, decimals=rng.choice([0, 1]))


def _gen_count(rng, n, style):
    return _numbers(rng, n, 0, 10_000)


def _gen_priority(rng, n, style):
    return _choices(rng, vocab.PRIORITIES, n)


def _gen_boolean_flag(rng, n, style):
    true_token, false_token = rng.choice(vocab.BOOLEAN_PAIRS)
    return [rng.choice([true_token, false_token]) for _ in range(n)]


def _gen_grade(rng, n, style):
    return _choices(rng, vocab.GRADE_LETTERS, n)


# ----------------------------------------------------------------------------- registry
def _profile(
    type_name: str,
    generate: GeneratorFn,
    headers: tuple[str, ...],
    dirty: tuple[str, ...] = (),
    verbose: tuple[str, ...] = (),
    kb_values: tuple[str, ...] = (),
    numeric: bool = False,
) -> TypeProfile:
    return TypeProfile(
        type_name=type_name,
        generate=generate,
        headers=headers,
        dirty_headers=dirty,
        verbose_headers=verbose,
        kb_values=kb_values,
        numeric=numeric,
    )


TYPE_PROFILES: dict[str, TypeProfile] = {
    profile.type_name: profile
    for profile in [
        # person
        _profile("name", _gen_name, ("name", "full_name", "customer_name", "employee_name"),
                 dirty=("nm", "cust_nm", "emp_name", "fullname"),
                 verbose=("Name", "Full Name", "Person"),),
        _profile("first_name", _gen_first_name, ("first_name", "fname", "given_name"),
                 dirty=("f_name", "first_nm", "fn"), verbose=("First Name", "Given Name"),
                 kb_values=tuple(vocab.FIRST_NAMES)),
        _profile("last_name", _gen_last_name, ("last_name", "lname", "surname"),
                 dirty=("l_name", "last_nm", "ln"), verbose=("Last Name", "Surname"),
                 kb_values=tuple(vocab.LAST_NAMES)),
        _profile("email", _gen_email, ("email", "email_address", "contact_email"),
                 dirty=("eml", "e_mail", "mail_addr"), verbose=("Email", "Email Address")),
        _profile("phone_number", _gen_phone, ("phone", "phone_number", "telephone", "mobile"),
                 dirty=("ph", "tel_no", "phone_no", "mob"), verbose=("Phone", "Telephone Number")),
        _profile("age", _gen_age, ("age", "age_years"), dirty=("age_yrs",), verbose=("Age",), numeric=True),
        _profile("gender", _gen_gender, ("gender", "sex"), dirty=("gndr", "sx"), verbose=("Gender",),
                 kb_values=tuple(vocab.GENDERS)),
        _profile("birth_date", _gen_birth_date, ("birth_date", "date_of_birth", "dob"),
                 dirty=("birth_dt", "dob_dt", "bday"), verbose=("Date of Birth", "Born")),
        _profile("nationality", _gen_nationality, ("nationality", "citizenship"),
                 dirty=("natl", "natnlty"), verbose=("Nationality",),
                 kb_values=tuple(vocab.NATIONALITIES)),
        _profile("job_title", _gen_job_title, ("job_title", "title", "position", "role"),
                 dirty=("job_ttl", "pos", "emp_role"), verbose=("Job Title", "Occupation"),
                 kb_values=tuple(vocab.JOB_TITLES)),
        _profile("username", _gen_username, ("username", "user_name", "login"),
                 dirty=("usr", "usr_nm", "login_id"), verbose=("Username",)),
        _profile("ssn", _gen_ssn, ("ssn", "social_security_number"),
                 dirty=("ssn_no", "soc_sec"), verbose=("Social Security Number",)),
        _profile("marital_status", _gen_marital_status, ("marital_status", "civil_status"),
                 dirty=("mar_stat", "marital"), verbose=("Marital Status",),
                 kb_values=tuple(vocab.MARITAL_STATUSES)),
        # organization
        _profile("company", _gen_company, ("company", "company_name", "organization", "vendor", "employer"),
                 dirty=("comp", "org", "co_name", "vndr"), verbose=("Company", "Organization"),
                 kb_values=tuple(vocab.COMPANIES)),
        _profile("department", _gen_department, ("department", "dept", "division"),
                 dirty=("dept_cd", "div"), verbose=("Department",),
                 kb_values=tuple(vocab.DEPARTMENTS)),
        _profile("industry", _gen_industry, ("industry", "sector"),
                 dirty=("ind", "sect"), verbose=("Industry",), kb_values=tuple(vocab.INDUSTRIES)),
        _profile("salary", _gen_salary, ("salary", "annual_salary", "base_salary", "income"),
                 dirty=("sal", "base_sal", "comp_amt"), verbose=("Salary", "Annual Income"), numeric=True),
        _profile("revenue", _gen_revenue, ("revenue", "annual_revenue", "sales", "turnover"),
                 dirty=("rev", "tot_sales", "rev_amt"), verbose=("Revenue", "Total Sales"), numeric=True),
        _profile("employee_count", _gen_employee_count, ("employees", "employee_count", "headcount"),
                 dirty=("emp_cnt", "num_emp", "hc"), verbose=("Number of Employees",), numeric=True),
        _profile("website", _gen_website, ("website", "homepage", "web_site"),
                 dirty=("web", "site_url"), verbose=("Website",)),
        # place
        _profile("country", _gen_country, ("country", "country_name", "nation"),
                 dirty=("cntry", "ctry", "country_nm"), verbose=("Country",),
                 kb_values=tuple(vocab.COUNTRY_NAMES)),
        _profile("country_code", _gen_country_code, ("country_code", "iso_country", "cc"),
                 dirty=("ctry_cd", "iso_cc"), verbose=("Country Code",),
                 kb_values=tuple(vocab.COUNTRY_CODES_2 + vocab.COUNTRY_CODES_3)),
        _profile("city", _gen_city, ("city", "town", "city_name"),
                 dirty=("cty", "city_nm", "municip"), verbose=("City", "Town"),
                 kb_values=tuple(vocab.CITIES)),
        _profile("state", _gen_state, ("state", "province", "state_code"),
                 dirty=("st", "state_cd", "prov"), verbose=("State", "Province"),
                 kb_values=tuple(vocab.STATE_NAMES + vocab.STATE_CODES)),
        _profile("address", _gen_address, ("address", "street_address", "address_line_1"),
                 dirty=("addr", "addr_ln1", "str_addr"), verbose=("Address", "Street Address")),
        _profile("zip_code", _gen_zip_code, ("zip", "zip_code", "postal_code", "postcode"),
                 dirty=("zip_cd", "pstl_cd"), verbose=("ZIP Code", "Postal Code")),
        _profile("latitude", _gen_latitude, ("latitude", "lat"), dirty=("geo_lat",),
                 verbose=("Latitude",), numeric=True),
        _profile("longitude", _gen_longitude, ("longitude", "lon", "lng"), dirty=("geo_lon",),
                 verbose=("Longitude",), numeric=True),
        _profile("continent", _gen_continent, ("continent",), dirty=("cont",),
                 verbose=("Continent",), kb_values=tuple(vocab.CONTINENTS)),
        _profile("region", _gen_region, ("region", "sales_region", "territory"),
                 dirty=("rgn", "terr"), verbose=("Region",), kb_values=tuple(vocab.REGIONS)),
        # temporal
        _profile("date", _gen_date, ("date", "order_date", "created_date", "start_date", "end_date"),
                 dirty=("dt", "ord_dt", "crt_dt", "eff_dt"), verbose=("Date",)),
        _profile("timestamp", _gen_timestamp, ("timestamp", "created_at", "updated_at", "event_time"),
                 dirty=("ts", "crt_ts", "upd_ts", "log_ts"), verbose=("Timestamp", "Date and Time")),
        _profile("year", _gen_year, ("year", "fiscal_year"), dirty=("yr", "fy"),
                 verbose=("Year",), numeric=True),
        _profile("month", _gen_month, ("month", "month_name"), dirty=("mon", "mnth"),
                 verbose=("Month",), kb_values=tuple(vocab.MONTH_NAMES + vocab.MONTH_ABBREVIATIONS)),
        _profile("day_of_week", _gen_day_of_week, ("day_of_week", "weekday", "day"),
                 dirty=("dow", "wkday"), verbose=("Day of Week",),
                 kb_values=tuple(vocab.WEEKDAYS + vocab.WEEKDAY_ABBREVIATIONS)),
        _profile("time", _gen_time, ("time", "time_of_day"), dirty=("tm", "start_tm"),
                 verbose=("Time",)),
        _profile("duration", _gen_duration, ("duration", "duration_minutes", "elapsed_time"),
                 dirty=("dur", "dur_min", "elapsed"), verbose=("Duration",), numeric=True),
        _profile("quarter", _gen_quarter, ("quarter", "fiscal_quarter"), dirty=("qtr", "fq"),
                 verbose=("Quarter",), kb_values=tuple(vocab.QUARTERS)),
        # identifiers
        _profile("id", _gen_id, ("id", "record_id", "row_id", "key"),
                 dirty=("rec_id", "pk", "rid"), verbose=("ID", "Identifier")),
        _profile("order_id", _gen_order_id, ("order_id", "order_number", "order_no"),
                 dirty=("ord_id", "ord_no", "po_num"), verbose=("Order Number",)),
        _profile("customer_id", _gen_customer_id, ("customer_id", "cust_id", "client_id"),
                 dirty=("cust_no", "clnt_id", "acct_id"), verbose=("Customer ID",)),
        _profile("product_id", _gen_product_id, ("product_id", "item_id", "product_code"),
                 dirty=("prod_id", "itm_id", "prd_cd"), verbose=("Product ID",)),
        _profile("sku", _gen_sku, ("sku", "stock_keeping_unit"), dirty=("sku_cd", "artcl_no"),
                 verbose=("SKU",)),
        _profile("invoice_number", _gen_invoice_number, ("invoice_number", "invoice_no", "invoice_id"),
                 dirty=("inv_no", "inv_id", "bill_no"), verbose=("Invoice Number",)),
        _profile("transaction_id", _gen_transaction_id, ("transaction_id", "txn_id", "payment_id"),
                 dirty=("txn_no", "trans_id", "ref_no"), verbose=("Transaction ID",)),
        _profile("uuid", _gen_uuid, ("uuid", "guid", "unique_id"), dirty=("uid", "obj_uuid"),
                 verbose=("UUID",)),
        _profile("isbn", _gen_isbn, ("isbn", "isbn_13"), dirty=("isbn_no",), verbose=("ISBN",)),
        _profile("patient_id", _gen_patient_id, ("patient_id", "mrn", "medical_record_number"),
                 dirty=("pat_id", "mrn_no"), verbose=("Patient ID",)),
        _profile("code", _gen_code, ("code", "ref_code", "lookup_code"),
                 dirty=("cd", "ref_cd", "lkp_cd"), verbose=("Code",)),
        # commerce
        _profile("product", _gen_product, ("product", "product_name", "item", "item_name"),
                 dirty=("prod", "prod_nm", "itm_desc"), verbose=("Product", "Item Name"),
                 kb_values=tuple(vocab.PRODUCTS)),
        _profile("category", _gen_category, ("category", "product_category", "segment"),
                 dirty=("cat", "prod_cat", "seg"), verbose=("Category",),
                 kb_values=tuple(vocab.PRODUCT_CATEGORIES)),
        _profile("brand", _gen_brand, ("brand", "manufacturer", "make"),
                 dirty=("brnd", "mfr"), verbose=("Brand",), kb_values=tuple(vocab.BRANDS)),
        _profile("price", _gen_price, ("price", "unit_price", "cost", "list_price"),
                 dirty=("prc", "unit_prc", "amt"), verbose=("Price", "Unit Price"), numeric=True),
        _profile("currency", _gen_currency, ("currency", "currency_code", "ccy"),
                 dirty=("curr", "curr_cd"), verbose=("Currency",),
                 kb_values=tuple(vocab.CURRENCY_CODES)),
        _profile("quantity", _gen_quantity, ("quantity", "qty", "units", "units_sold"),
                 dirty=("qty_ord", "units_cnt", "no_units"), verbose=("Quantity",), numeric=True),
        _profile("discount", _gen_discount, ("discount", "discount_rate", "discount_pct"),
                 dirty=("disc", "disc_pct"), verbose=("Discount",), numeric=True),
        _profile("tax_rate", _gen_tax_rate, ("tax_rate", "tax", "vat"),
                 dirty=("tax_pct", "vat_rt"), verbose=("Tax Rate",), numeric=True),
        _profile("payment_method", _gen_payment_method, ("payment_method", "payment_type"),
                 dirty=("pay_mthd", "pmt_type"), verbose=("Payment Method",),
                 kb_values=tuple(vocab.PAYMENT_METHODS)),
        _profile("shipping_method", _gen_shipping_method, ("shipping_method", "ship_mode", "carrier"),
                 dirty=("ship_md", "carr"), verbose=("Shipping Method",),
                 kb_values=tuple(vocab.SHIPPING_METHODS)),
        # finance
        _profile("iban", _gen_iban, ("iban", "bank_account_iban"), dirty=("iban_no",),
                 verbose=("IBAN",)),
        _profile("credit_card_number", _gen_credit_card, ("credit_card_number", "card_number", "cc_number"),
                 dirty=("cc_no", "card_no", "pan"), verbose=("Credit Card Number",)),
        _profile("account_number", _gen_account_number, ("account_number", "account_no", "bank_account"),
                 dirty=("acct_no", "acc_num"), verbose=("Account Number",)),
        _profile("stock_symbol", _gen_stock_symbol, ("stock_symbol", "ticker", "ticker_symbol"),
                 dirty=("tkr", "sym"), verbose=("Ticker Symbol",),
                 kb_values=tuple(vocab.STOCK_SYMBOLS)),
        _profile("market_cap", _gen_market_cap, ("market_cap", "market_capitalization"),
                 dirty=("mkt_cap",), verbose=("Market Capitalization",), numeric=True),
        _profile("interest_rate", _gen_interest_rate, ("interest_rate", "apr", "rate"),
                 dirty=("int_rt", "rate_pct"), verbose=("Interest Rate",), numeric=True),
        _profile("exchange_rate", _gen_exchange_rate, ("exchange_rate", "fx_rate"),
                 dirty=("fx_rt", "exch_rt"), verbose=("Exchange Rate",), numeric=True),
        _profile("profit", _gen_profit, ("profit", "net_income", "earnings"),
                 dirty=("net_inc", "pft"), verbose=("Profit", "Net Income"), numeric=True),
        _profile("budget", _gen_budget, ("budget", "allocated_budget", "planned_spend"),
                 dirty=("bdgt", "budget_amt"), verbose=("Budget",), numeric=True),
        # medical
        _profile("blood_type", _gen_blood_type, ("blood_type", "blood_group"),
                 dirty=("bld_typ", "abo"), verbose=("Blood Type",), kb_values=tuple(vocab.BLOOD_TYPES)),
        _profile("diagnosis", _gen_diagnosis, ("diagnosis", "condition", "medical_condition"),
                 dirty=("diag", "dx", "cond"), verbose=("Diagnosis",), kb_values=tuple(vocab.DIAGNOSES)),
        _profile("medication", _gen_medication, ("medication", "drug", "drug_name", "prescription"),
                 dirty=("med", "rx", "drug_nm"), verbose=("Medication",), kb_values=tuple(vocab.MEDICATIONS)),
        _profile("dosage", _gen_dosage, ("dosage", "dose", "strength"),
                 dirty=("dose_mg", "dsg"), verbose=("Dosage",)),
        _profile("heart_rate", _gen_heart_rate, ("heart_rate", "pulse", "bpm"),
                 dirty=("hr", "hr_bpm"), verbose=("Heart Rate",), numeric=True),
        _profile("blood_pressure", _gen_blood_pressure, ("blood_pressure", "bp"),
                 dirty=("bp_sys_dia",), verbose=("Blood Pressure",)),
        # measurement
        _profile("temperature", _gen_temperature, ("temperature", "temp", "temperature_c"),
                 dirty=("tmp", "temp_c"), verbose=("Temperature",), numeric=True),
        _profile("weight", _gen_weight, ("weight", "weight_kg", "mass"),
                 dirty=("wt", "wt_kg", "net_wt"), verbose=("Weight",), numeric=True),
        _profile("height", _gen_height, ("height", "height_cm"),
                 dirty=("ht", "ht_cm"), verbose=("Height",), numeric=True),
        _profile("distance", _gen_distance, ("distance", "distance_km", "mileage"),
                 dirty=("dist", "dist_km", "mi"), verbose=("Distance",), numeric=True),
        _profile("area", _gen_area, ("area", "surface_area", "area_sqm"),
                 dirty=("area_m2", "sq_ft"), verbose=("Area",), numeric=True),
        _profile("speed", _gen_speed, ("speed", "velocity", "speed_kmh"),
                 dirty=("spd", "kmh"), verbose=("Speed",), numeric=True),
        _profile("percentage", _gen_percentage, ("percentage", "percent", "pct", "growth_rate"),
                 dirty=("pct_val", "perc", "ratio_pct"), verbose=("Percentage",), numeric=True),
        _profile("population", _gen_population, ("population", "inhabitants"),
                 dirty=("pop", "pop_cnt"), verbose=("Population",), numeric=True),
        # web
        _profile("url", _gen_url, ("url", "link", "page_url", "uri"),
                 dirty=("lnk", "href"), verbose=("URL", "Link")),
        _profile("ip_address", _gen_ip_address, ("ip_address", "ip", "client_ip"),
                 dirty=("ip_addr", "src_ip", "host_ip"), verbose=("IP Address",)),
        _profile("domain", _gen_domain, ("domain", "domain_name", "hostname"),
                 dirty=("dom", "host_nm"), verbose=("Domain",)),
        _profile("user_agent", _gen_user_agent, ("user_agent", "browser", "ua"),
                 dirty=("ua_string", "agent"), verbose=("User Agent",),
                 kb_values=tuple(vocab.USER_AGENTS)),
        _profile("file_name", _gen_file_name, ("file_name", "filename", "document_name"),
                 dirty=("file_nm", "fname_doc", "doc_nm"), verbose=("File Name",)),
        _profile("file_size", _gen_file_size, ("file_size", "size_bytes", "size"),
                 dirty=("sz_bytes", "file_sz"), verbose=("File Size",), numeric=True),
        _profile("mime_type", _gen_mime_type, ("mime_type", "content_type", "file_type"),
                 dirty=("mime", "cont_type"), verbose=("Content Type",),
                 kb_values=tuple(vocab.MIME_TYPES)),
        _profile("version", _gen_version, ("version", "version_number", "release"),
                 dirty=("ver", "ver_no", "bld_ver"), verbose=("Version",)),
        _profile("language", _gen_language, ("language", "lang", "locale"),
                 dirty=("lang_cd", "lcl"), verbose=("Language",),
                 kb_values=tuple(vocab.LANGUAGE_NAMES + vocab.LANGUAGE_CODES)),
        _profile("color", _gen_color, ("color", "colour", "color_name"),
                 dirty=("clr", "col_hex"), verbose=("Color",), kb_values=tuple(vocab.COLORS)),
        # generic
        _profile("status", _gen_status, ("status", "order_status", "state"),
                 dirty=("stat", "sts", "ord_stat"), verbose=("Status",), kb_values=tuple(vocab.STATUSES)),
        _profile("description", _gen_description, ("description", "notes", "details", "comments"),
                 dirty=("desc", "descr", "cmnts", "rmks"), verbose=("Description", "Notes")),
        _profile("rating", _gen_rating, ("rating", "stars", "review_score"),
                 dirty=("rtg", "avg_rating"), verbose=("Rating",), numeric=True),
        _profile("score", _gen_score, ("score", "test_score", "points"),
                 dirty=("scr", "pts"), verbose=("Score",), numeric=True),
        _profile("count", _gen_count, ("count", "total_count", "frequency", "num"),
                 dirty=("cnt", "tot_cnt", "freq"), verbose=("Count",), numeric=True),
        _profile("priority", _gen_priority, ("priority", "severity", "urgency"),
                 dirty=("prio", "sev", "urg"), verbose=("Priority",), kb_values=tuple(vocab.PRIORITIES)),
        _profile("boolean_flag", _gen_boolean_flag, ("is_active", "active", "enabled", "flag", "is_deleted"),
                 dirty=("actv_flg", "del_flg", "is_actv"), verbose=("Active",)),
        _profile("grade", _gen_grade, ("grade", "letter_grade", "tier"),
                 dirty=("grd", "qual_grade"), verbose=("Grade",), kb_values=tuple(vocab.GRADE_LETTERS)),
    ]
}


# ---------------------------------------------------------------- out-of-distribution
def _gen_gene_sequence(rng, n, style):
    return ["".join(rng.choice("ACGT") for _ in range(rng.randint(12, 40))) for _ in range(n)]


def _gen_chess_opening(rng, n, style):
    openings = [
        "Sicilian Defense", "Ruy Lopez", "Queen's Gambit", "King's Indian Defense",
        "Caro-Kann Defense", "French Defense", "English Opening", "Italian Game",
        "Scandinavian Defense", "Nimzo-Indian Defense", "Grunfeld Defense", "Pirc Defense",
    ]
    return _choices(rng, openings, n)


def _gen_aircraft_tail_number(rng, n, style):
    return [f"N{rng.randint(100, 999)}{rng.choice(string.ascii_uppercase)}{rng.choice(string.ascii_uppercase)}" for _ in range(n)]


def _gen_molecular_formula(rng, n, style):
    return [f"C{rng.randint(1, 30)}H{rng.randint(1, 60)}N{rng.randint(0, 8)}O{rng.randint(0, 12)}" for _ in range(n)]


def _gen_hex_hash(rng, n, style):
    return ["".join(rng.choice("0123456789abcdef") for _ in range(40)) for _ in range(n)]


def _gen_license_plate(rng, n, style):
    return [
        f"{''.join(rng.choice(string.ascii_uppercase) for _ in range(2))}-{rng.randint(10, 99)}-"
        f"{''.join(rng.choice(string.ascii_uppercase) for _ in range(2))}"
        for _ in range(n)
    ]


def _gen_constellation(rng, n, style):
    constellations = [
        "Orion", "Cassiopeia", "Ursa Major", "Andromeda", "Lyra", "Cygnus", "Scorpius",
        "Pegasus", "Draco", "Perseus", "Aquila", "Centaurus", "Phoenix", "Hydra",
    ]
    return _choices(rng, constellations, n)


def _gen_pantone_code(rng, n, style):
    return [f"PANTONE {rng.randint(100, 19999)} {rng.choice(['C', 'U', 'TPX'])}" for _ in range(n)]


OOD_PROFILES: dict[str, TypeProfile] = {
    profile.type_name: profile
    for profile in [
        _profile("gene_sequence", _gen_gene_sequence, ("gene_sequence", "dna_sequence", "sequence")),
        _profile("chess_opening", _gen_chess_opening, ("chess_opening", "opening", "eco_name")),
        _profile("aircraft_tail_number", _gen_aircraft_tail_number, ("tail_number", "aircraft_registration", "reg_no")),
        _profile("molecular_formula", _gen_molecular_formula, ("molecular_formula", "formula", "compound")),
        _profile("hex_hash", _gen_hex_hash, ("commit_hash", "sha1", "checksum", "digest")),
        _profile("license_plate", _gen_license_plate, ("license_plate", "plate_number", "registration_plate")),
        _profile("constellation", _gen_constellation, ("constellation", "star_group")),
        _profile("pantone_code", _gen_pantone_code, ("pantone", "pantone_code", "swatch")),
    ]
}


def profile_for(type_name: str) -> TypeProfile:
    """Return the generator profile for a semantic type (in- or out-of-distribution)."""
    if type_name in TYPE_PROFILES:
        return TYPE_PROFILES[type_name]
    if type_name in OOD_PROFILES:
        return OOD_PROFILES[type_name]
    raise CorpusError(f"no value generator registered for semantic type {type_name!r}")


def generate_values(
    type_name: str,
    rng: random.Random,
    n: int,
    style: str = "default",
) -> list[str]:
    """Generate *n* raw cell strings for *type_name* using *style* formatting."""
    if n < 0:
        raise CorpusError("cannot generate a negative number of values")
    profile = profile_for(type_name)
    return profile.generate(rng, n, style)


def generatable_types() -> list[str]:
    """All in-distribution semantic types that have a value generator."""
    return list(TYPE_PROFILES)


def ood_types() -> list[str]:
    """All deliberately out-of-distribution types (not in the default ontology)."""
    return list(OOD_PROFILES)
