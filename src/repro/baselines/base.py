"""Common interface for the baseline column-type detectors.

The paper motivates SigmaTyper against two families of existing approaches:
the regex/dictionary matchers of commercial systems (Trifacta, Talend, Google
Data Studio) and the learned detectors of the research literature (Sherlock,
Sato).  Every baseline implements :class:`BaselineDetector` so the comparison
benchmark (E9) and the evaluation harness can treat them and SigmaTyper
uniformly: tables in, :class:`~repro.core.prediction.TablePrediction` out.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.ontology import UNKNOWN_TYPE
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.table import Column, Table
from repro.corpus.collection import TableCorpus

__all__ = ["BaselineDetector"]


class BaselineDetector(ABC):
    """A self-contained column type detector with a uniform interface."""

    #: Human-readable identifier used in benchmark reports.
    name: str = "baseline"

    def fit(self, corpus: TableCorpus) -> "BaselineDetector":
        """Train on an annotated corpus.  Rule-based baselines are no-ops."""
        return self

    @abstractmethod
    def predict_column(self, column: Column, table: Table | None = None) -> list[TypeScore]:
        """Ranked candidate types for one column (empty list = no prediction)."""

    def predict_type(self, column: Column, table: Table | None = None) -> str:
        """Single best type, or :data:`UNKNOWN_TYPE` when the detector abstains."""
        scores = self.predict_column(column, table)
        return scores[0].type_name if scores else UNKNOWN_TYPE

    def annotate(self, table: Table, tau: float = 0.0) -> TablePrediction:
        """Annotate a whole table, abstaining below the confidence threshold *tau*."""
        predictions = []
        for index, column in enumerate(table.columns):
            scores = self.predict_column(column, table)
            abstained = not scores or scores[0].confidence < tau or scores[0].type_name == UNKNOWN_TYPE
            predictions.append(
                ColumnPrediction(
                    column_index=index,
                    column_name=column.name,
                    scores=[s for s in scores if s.type_name != UNKNOWN_TYPE][:3],
                    source_step=self.name,
                    abstained=abstained,
                )
            )
        return TablePrediction(table_name=table.name, columns=predictions)
