"""Rule-based baselines: commercial-style regex/dictionary matching and
header-only matching.

Section 1 of the paper observes that commercial data systems "primarily rely
on simpler methods like regular expression matching for detecting a limited
set of semantic types".  :class:`RegexDictionaryBaseline` reproduces that
approach (regex rules plus a dictionary lookup, no learning, no table
context), and :class:`HeaderOnlyBaseline` isolates the header-matching signal
on its own.  Both are used in the system-comparison benchmark (E9) and in the
pipeline ablations (E11).
"""

from __future__ import annotations

from repro.core.ontology import TypeOntology, build_default_ontology
from repro.core.prediction import TypeScore
from repro.core.table import Column, Table
from repro.baselines.base import BaselineDetector
from repro.lookup.knowledge_base import KnowledgeBase
from repro.lookup.regex_library import RegexLibrary
from repro.matching.header_matcher import HeaderMatcher, HeaderMatcherConfig

__all__ = ["RegexDictionaryBaseline", "HeaderOnlyBaseline"]


class RegexDictionaryBaseline(BaselineDetector):
    """Regexes + dictionary lookups over sampled values; no learning.

    This is the commercial-systems stand-in: high precision on the types its
    rules cover, but limited coverage — exactly the trade-off the paper's
    hybrid design is meant to overcome.
    """

    name = "regex_dictionary"

    def __init__(
        self,
        regex_library: RegexLibrary | None = None,
        knowledge_base: KnowledgeBase | None = None,
        sample_size: int = 50,
        min_confidence: float = 0.5,
    ) -> None:
        self.regex_library = regex_library if regex_library is not None else RegexLibrary()
        self.knowledge_base = knowledge_base if knowledge_base is not None else KnowledgeBase.default()
        self.sample_size = sample_size
        self.min_confidence = min_confidence

    def predict_column(self, column: Column, table: Table | None = None) -> list[TypeScore]:
        candidates: dict[str, float] = {}
        for source in (
            self.regex_library.match_column(column, sample_size=self.sample_size),
            self.knowledge_base.lookup_column(column, sample_size=self.sample_size),
        ):
            for type_name, confidence in source.items():
                if confidence > candidates.get(type_name, 0.0):
                    candidates[type_name] = confidence
        scores = [
            TypeScore(confidence=confidence, type_name=type_name)
            for type_name, confidence in candidates.items()
            if confidence >= self.min_confidence
        ]
        scores.sort(key=lambda score: (-score.confidence, score.type_name))
        return scores

    @property
    def covered_types(self) -> list[str]:
        """Types this baseline can ever predict."""
        return sorted(set(self.regex_library.covered_types) | set(self.knowledge_base.known_types))


class HeaderOnlyBaseline(BaselineDetector):
    """Syntactic + semantic header matching with no value evidence at all."""

    name = "header_only"

    def __init__(
        self,
        ontology: TypeOntology | None = None,
        config: HeaderMatcherConfig | None = None,
    ) -> None:
        ontology = ontology or build_default_ontology()
        # Value-based kind filtering is disabled: this baseline must not peek
        # at the column values, only at the header string.
        config = config or HeaderMatcherConfig(filter_by_data_kind=False)
        config.filter_by_data_kind = False
        self.matcher = HeaderMatcher.with_trained_embedder(ontology, config=config)

    def predict_column(self, column: Column, table: Table | None = None) -> list[TypeScore]:
        return self.matcher.predict_column(column, table)
