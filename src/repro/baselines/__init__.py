"""Baseline column-type detectors: commercial-style rules, header-only,
Sherlock-like, and Sato-like learned models."""

from repro.baselines.base import BaselineDetector
from repro.baselines.learned import SatoLikeBaseline, SherlockLikeBaseline
from repro.baselines.rule_based import HeaderOnlyBaseline, RegexDictionaryBaseline

__all__ = [
    "BaselineDetector",
    "RegexDictionaryBaseline",
    "HeaderOnlyBaseline",
    "SherlockLikeBaseline",
    "SatoLikeBaseline",
]
