"""Learned baselines in the spirit of Sherlock and Sato.

* :class:`SherlockLikeBaseline` — a single-column learned detector: value
  statistics, character/shape features, and value text embeddings feed an
  MLP; no header, no table context.  This mirrors Sherlock's design point.
* :class:`SatoLikeBaseline` — Sherlock's features plus table-context
  aggregates over the neighbouring columns, mirroring Sato's insight that
  surrounding columns disambiguate a column's type.

Both are trained on the same annotated corpus as SigmaTyper's learned step,
making the comparison benchmark (E9) a like-for-like one: the difference
measured is the *system design* (hybrid cascade, lookup rules, abstention),
not the training data.
"""

from __future__ import annotations

from repro.baselines.base import BaselineDetector
from repro.core.errors import ModelNotTrainedError
from repro.core.prediction import TypeScore
from repro.core.table import Column, Table
from repro.corpus.collection import TableCorpus
from repro.embedding_model.classifier import TableEmbeddingClassifier
from repro.embedding_model.features import ColumnFeaturizer, FeaturizerConfig
from repro.nn.model import MLPConfig

__all__ = ["SherlockLikeBaseline", "SatoLikeBaseline"]


class _LearnedBaseline(BaselineDetector):
    """Shared implementation: a TableEmbeddingClassifier with restricted features."""

    def __init__(self, featurizer: ColumnFeaturizer, mlp_config: MLPConfig | None = None) -> None:
        self._classifier = TableEmbeddingClassifier(
            featurizer=featurizer,
            mlp_config=mlp_config or MLPConfig(max_epochs=40),
        )
        self._use_table_context = featurizer.config.include_table_context

    def fit(self, corpus: TableCorpus) -> "_LearnedBaseline":
        self._classifier.fit(corpus)
        return self

    def predict_column(self, column: Column, table: Table | None = None) -> list[TypeScore]:
        if not self._classifier.is_fitted:
            raise ModelNotTrainedError(f"{self.name} baseline used before fit")
        context = table if self._use_table_context else None
        return self._classifier.predict_column(column, context)


class SherlockLikeBaseline(_LearnedBaseline):
    """Single-column learned detector (values only, no header, no context)."""

    name = "sherlock_like"

    def __init__(self, mlp_config: MLPConfig | None = None) -> None:
        featurizer = ColumnFeaturizer(
            config=FeaturizerConfig(include_header=False, include_table_context=False)
        )
        super().__init__(featurizer, mlp_config)


class SatoLikeBaseline(_LearnedBaseline):
    """Single-column features plus table-context aggregates (no header)."""

    name = "sato_like"

    def __init__(self, mlp_config: MLPConfig | None = None) -> None:
        featurizer = ColumnFeaturizer(
            config=FeaturizerConfig(include_header=False, include_table_context=True)
        )
        super().__init__(featurizer, mlp_config)
