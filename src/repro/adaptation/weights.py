"""Per-type weight vectors for combining the global and local models (Fig. 2).

"The influence of the global and local models on the final prediction is
captured in weight vectors representing the influence of each model per type,
i.e. W_g for the global model and W_l for the local model.  Over time, the
influence of the local model on the final prediction increases."

:class:`GlobalLocalWeights` maintains, per semantic type, the number of
feedback observations the local model has accumulated and converts it into a
pair of weights ``(w_global, w_local)`` under one of two growth schedules:

* ``"saturating"`` (default): ``w_local = n / (n + k)`` — quick early growth
  that asymptotes to 1, so the local model can never completely silence the
  global model after a single correction;
* ``"linear"``: ``w_local = min(cap, n / n_max)`` — the alternative schedule
  benchmarked in the weight-schedule ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.errors import ConfigurationError

__all__ = ["WeightScheduleConfig", "GlobalLocalWeights"]


@dataclass
class WeightScheduleConfig:
    """How quickly the local model's per-type influence grows."""

    schedule: str = "saturating"
    #: Pseudo-count for the saturating schedule (larger = slower growth).
    saturation_k: float = 2.0
    #: Observations needed to reach the cap under the linear schedule.
    linear_n_max: float = 5.0
    #: Maximum local weight (kept below 1 so the global model retains a voice).
    max_local_weight: float = 0.9
    #: Weight increment granted by an implicit (rather than explicit) signal.
    implicit_observation_value: float = 0.5

    def validate(self) -> None:
        if self.schedule not in ("saturating", "linear"):
            raise ConfigurationError("schedule must be 'saturating' or 'linear'")
        if self.saturation_k <= 0 or self.linear_n_max <= 0:
            raise ConfigurationError("schedule constants must be positive")
        if not 0.0 < self.max_local_weight <= 1.0:
            raise ConfigurationError("max_local_weight must be in (0, 1]")
        if not 0.0 < self.implicit_observation_value <= 1.0:
            raise ConfigurationError("implicit_observation_value must be in (0, 1]")


@dataclass
class GlobalLocalWeights:
    """Per-type observation counts and the derived W_g / W_l weights."""

    config: WeightScheduleConfig = field(default_factory=WeightScheduleConfig)
    _observations: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.config.validate()

    # ------------------------------------------------------------ observations
    def record_observation(self, type_name: str, implicit: bool = False) -> None:
        """Register one feedback observation for *type_name*."""
        if not type_name:
            raise ConfigurationError("type_name must be non-empty")
        increment = self.config.implicit_observation_value if implicit else 1.0
        self._observations[type_name] = self._observations.get(type_name, 0.0) + increment

    def observation_count(self, type_name: str) -> float:
        """Accumulated (possibly fractional) observation count for a type."""
        return self._observations.get(type_name, 0.0)

    def observed_types(self) -> list[str]:
        """Types with at least one observation, sorted."""
        return sorted(self._observations)

    # ----------------------------------------------------------------- weights
    def local_weight(self, type_name: str) -> float:
        """W_l for *type_name* (0.0 before any feedback)."""
        count = self._observations.get(type_name, 0.0)
        if count <= 0:
            return 0.0
        if self.config.schedule == "saturating":
            raw = count / (count + self.config.saturation_k)
        else:
            raw = count / self.config.linear_n_max
        return min(raw, self.config.max_local_weight)

    def global_weight(self, type_name: str) -> float:
        """W_g for *type_name* (complements the local weight)."""
        return 1.0 - self.local_weight(type_name)

    def weight_vectors(self) -> tuple[dict[str, float], dict[str, float]]:
        """``(W_g, W_l)`` restricted to the observed types."""
        local = {type_name: self.local_weight(type_name) for type_name in self._observations}
        global_ = {type_name: 1.0 - weight for type_name, weight in local.items()}
        return global_, local

    # --------------------------------------------------------------- combining
    def combine_scores(
        self,
        global_scores: Mapping[str, float],
        local_scores: Mapping[str, float],
    ) -> dict[str, float]:
        """Blend two per-type confidence maps with the per-type weights.

        Types without local observations keep their global confidence
        untouched; observed types are interpolated as
        ``W_g · global + W_l · local``.
        """
        combined: dict[str, float] = {}
        # Sorted so the combined dict (and any max()-style tie-break over it)
        # is identical across interpreters regardless of PYTHONHASHSEED.
        for type_name in sorted(set(global_scores) | set(local_scores)):
            w_local = self.local_weight(type_name)
            w_global = 1.0 - w_local
            combined[type_name] = (
                w_global * float(global_scores.get(type_name, 0.0))
                + w_local * float(local_scores.get(type_name, 0.0))
            )
        return combined

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "schedule": self.config.schedule,
            "observations": dict(self._observations),
        }
