"""The global model: the pipeline shared identically across all customers.

Figure 2: "SIGMATYPER incorporates a pretrained global model identically
deployed across all customers, which combines heuristics with a learned model
to establish high precision and semantic type coverage."  Concretely the
global model is the 3-step cascade — header matching, value lookup with the
*global* labeling functions / knowledge base / regexes, and the learned
table-embedding classifier pretrained on the GitTables-like corpus with a
background ``unknown`` class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.aggregation import Aggregator
from repro.core.ontology import TypeOntology, build_default_ontology
from repro.core.pipeline import CascadeConfig, TypeDetectionPipeline
from repro.core.prediction import TablePrediction
from repro.core.table import Table
from repro.corpus.collection import TableCorpus
from repro.corpus.gittables import GitTablesConfig, GitTablesGenerator
from repro.corpus.shift import build_ood_corpus
from repro.embedding_model.classifier import TableEmbeddingClassifier
from repro.embedding_model.features import ColumnFeaturizer
from repro.embedding_model.step import TableEmbeddingStep
from repro.lookup.knowledge_base import KnowledgeBase
from repro.lookup.labeling_functions import LabelingFunctionStore
from repro.lookup.regex_library import RegexLibrary
from repro.lookup.value_matcher import ValueLookupConfig, ValueLookupStep
from repro.matching.header_matcher import HeaderMatcher, HeaderMatcherConfig
from repro.nn.model import MLPConfig

__all__ = ["GlobalModelConfig", "GlobalModel"]


@dataclass
class GlobalModelConfig:
    """Everything needed to pretrain the shared global model."""

    cascade: CascadeConfig = field(default_factory=CascadeConfig)
    header_matcher: HeaderMatcherConfig = field(default_factory=HeaderMatcherConfig)
    value_lookup: ValueLookupConfig = field(default_factory=ValueLookupConfig)
    mlp: MLPConfig = field(default_factory=lambda: MLPConfig(max_epochs=40))
    #: Number of synthetic pretraining tables when no corpus is supplied.
    pretraining_tables: int = 150
    #: Number of background (unknown-class) tables when none are supplied.
    background_tables: int = 30
    #: Execution backend for the pretraining corpus featurization pass
    #: (``None``/"serial", "threaded[:N]", or "multiprocess[:N]" — the
    #: multiprocess shard path produces bit-identical features).
    featurization_backend: str | None = None
    seed: int = 7


class GlobalModel:
    """The shared, pretrained hybrid model (heuristics + learned classifier)."""

    def __init__(
        self,
        ontology: TypeOntology,
        pipeline: TypeDetectionPipeline,
        header_matcher: HeaderMatcher,
        value_lookup: ValueLookupStep,
        embedding_step: TableEmbeddingStep | None,
        training_corpus: TableCorpus,
        config: GlobalModelConfig,
    ) -> None:
        self.ontology = ontology
        self.pipeline = pipeline
        self.header_matcher = header_matcher
        self.value_lookup = value_lookup
        self.embedding_step = embedding_step
        self.training_corpus = training_corpus
        self.config = config

    # ----------------------------------------------------------------- factory
    @classmethod
    def pretrain(
        cls,
        training_corpus: TableCorpus | None = None,
        background_corpus: TableCorpus | None = None,
        ontology: TypeOntology | None = None,
        config: GlobalModelConfig | None = None,
        include_learned_model: bool = True,
    ) -> "GlobalModel":
        """Build and pretrain the global model.

        When no corpora are supplied, synthetic GitTables-like pretraining
        data and an OOD background set are generated — the offline equivalent
        of "SIGMATYPER is pretrained on GitTables".
        """
        config = config or GlobalModelConfig()
        ontology = ontology or build_default_ontology()
        if training_corpus is None:
            training_corpus = GitTablesGenerator(
                GitTablesConfig(num_tables=config.pretraining_tables, seed=config.seed)
            ).generate_corpus()
        if background_corpus is None and include_learned_model:
            background_corpus = build_ood_corpus(
                num_tables=config.background_tables, seed=config.seed + 1
            )

        # Step 1: header matching, with the embedder fitted on the ontology
        # vocabulary plus the headers observed in the pretraining corpus.
        header_sentences = _header_sentences(training_corpus)
        header_matcher = HeaderMatcher.with_trained_embedder(
            ontology, extra_sentences=header_sentences, config=config.header_matcher
        )

        # Step 2: value lookup with the global rule set.
        value_lookup = ValueLookupStep(
            knowledge_base=KnowledgeBase.default(),
            regex_library=RegexLibrary(),
            labeling_functions=LabelingFunctionStore(),
            config=config.value_lookup,
        )

        # Step 3: the learned table-embedding classifier.  The corpus
        # featurization pass can be sharded by table across an execution
        # backend (the multiprocess path keeps features bit-identical).
        embedding_step = None
        if include_learned_model:
            classifier = TableEmbeddingClassifier(
                featurizer=ColumnFeaturizer(), mlp_config=config.mlp
            )
            classifier.fit(
                training_corpus,
                background_corpus=background_corpus,
                backend=config.featurization_backend,
            )
            embedding_step = TableEmbeddingStep(classifier)

        steps = [header_matcher, value_lookup]
        if embedding_step is not None:
            steps.append(embedding_step)
        pipeline = TypeDetectionPipeline(
            steps,
            config=config.cascade,
            aggregator=Aggregator(method=config.cascade.aggregation_method),
        )
        return cls(
            ontology=ontology,
            pipeline=pipeline,
            header_matcher=header_matcher,
            value_lookup=value_lookup,
            embedding_step=embedding_step,
            training_corpus=training_corpus,
            config=config,
        )

    # --------------------------------------------------------------- inference
    def annotate(self, table: Table) -> TablePrediction:
        """Run the shared cascade on one table."""
        return self.pipeline.annotate(table)

    def annotate_many(
        self, tables: Sequence[Table], backend=None, columnar: bool | None = None
    ) -> list[TablePrediction]:
        """Run the shared cascade over a corpus of tables.

        Each table still goes through the confidence-gated cascade, but every
        step receives all of a table's pending columns at once (batched
        featurization, one MLP forward per table) and the memoized column
        profiles/embedding caches stay warm across the whole run.  An optional
        execution ``backend`` ("threaded", "multiprocess", or an
        :class:`~repro.serving.backends.ExecutionBackend`) shards the corpus
        by table across workers with identical results; the multiprocess spec
        may also select the zero-copy shard transport
        (``"multiprocess:4+shm"``, see :mod:`repro.serving.transport`).

        ``columnar`` opts the serial/threaded paths into the block-native
        kernels by converting each table via :meth:`Table.to_block` first
        (``None`` follows :func:`repro.core.colblock.kernels_enabled`).
        Multiprocess workers already profile straight off their received
        shard segments, so no conversion is needed there.
        """
        from repro.core import colblock

        tables = list(tables)
        use_columnar = columnar if columnar is not None else colblock.kernels_enabled()
        if backend is None:
            if use_columnar and colblock.kernels_enabled():
                tables = [table.to_block() for table in tables]
            return self.pipeline.annotate_many(tables)
        from repro.serving.backends import MultiprocessBackend, resolve_backend

        execution = resolve_backend(backend)
        if (
            use_columnar
            and colblock.kernels_enabled()
            and not isinstance(execution, MultiprocessBackend)
        ):
            tables = [table.to_block() for table in tables]
        return execution.run(self.pipeline.annotate_many, tables)

    @property
    def classifier(self) -> TableEmbeddingClassifier | None:
        """The learned classifier, when the global model includes one."""
        return self.embedding_step.classifier if self.embedding_step else None

    @property
    def global_labeling_functions(self) -> LabelingFunctionStore:
        """The global (shared) labeling-function store of the lookup step."""
        return self.value_lookup.labeling_functions


def _header_sentences(corpus: TableCorpus) -> list[list[str]]:
    """Group observed headers by ground-truth type for embedder training."""
    by_type: dict[str, list[str]] = {}
    for entry in corpus.labeled_columns():
        header = entry.column.name.strip()
        if header:
            by_type.setdefault(entry.label, []).append(header)  # type: ignore[arg-type]
    return [[type_name, *headers] for type_name, headers in by_type.items()]
