"""Per-customer local model.

Each customer gets a local model that accumulates the outcome of DPBD:
labeling functions inferred from their feedback, weakly labeled training
examples mined from the source corpus, a per-type weight vector governing how
strongly the local evidence overrides the global model, and (optionally) a
finetuned copy of the global table-embedding classifier.  "The newly
generated training data is only used to adapt the local model", so nothing a
customer does ever leaks into other customers' predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.table import Column, Table
from repro.dpbd.feedback import ImplicitApproval
from repro.dpbd.label_model import LabelModel, MajorityVoteLabelModel
from repro.dpbd.session import AdaptationUpdate
from repro.embedding_model.classifier import TableEmbeddingClassifier
from repro.lookup.labeling_functions import LabelingFunctionStore
from repro.adaptation.weights import GlobalLocalWeights, WeightScheduleConfig

__all__ = ["LocalModelConfig", "LocalModel"]


@dataclass
class LocalModelConfig:
    """Behavioural knobs of a customer's local model."""

    weight_schedule: WeightScheduleConfig = field(default_factory=WeightScheduleConfig)
    #: Finetune the local classifier copy every N applied updates (0 = never).
    finetune_every: int = 0
    #: Epochs per finetuning round.
    finetune_epochs: int = 5
    #: Cap on retained training examples (oldest are dropped beyond it).
    max_training_examples: int = 2000


class LocalModel:
    """Customer-specific labeling functions, training data, and weights."""

    def __init__(
        self,
        customer_id: str,
        config: LocalModelConfig | None = None,
        classifier: TableEmbeddingClassifier | None = None,
        label_model: LabelModel | None = None,
    ) -> None:
        self.customer_id = customer_id
        self.config = config or LocalModelConfig()
        self.labeling_functions = LabelingFunctionStore()
        self.weights = GlobalLocalWeights(config=self.config.weight_schedule)
        self.label_model = label_model or MajorityVoteLabelModel()
        #: Optional customer-private copy of the learned classifier.
        self.classifier = classifier
        self.training_examples: list[tuple[Column, Table | None, str]] = []
        self.updates_applied = 0
        self._updates_since_finetune = 0

    # ------------------------------------------------------------------ state
    @property
    def adapted_types(self) -> list[str]:
        """Types for which this customer has provided feedback."""
        return self.weights.observed_types()

    def has_adaptations(self) -> bool:
        """Whether any feedback has been applied yet."""
        return self.updates_applied > 0

    # ----------------------------------------------------------------- updates
    def apply_update(self, update: AdaptationUpdate) -> None:
        """Fold one DPBD adaptation update into the local model."""
        self.labeling_functions.extend(update.labeling_functions)
        self.training_examples.extend(update.training_examples())
        if len(self.training_examples) > self.config.max_training_examples:
            overflow = len(self.training_examples) - self.config.max_training_examples
            self.training_examples = self.training_examples[overflow:]
        implicit = isinstance(update.event, ImplicitApproval)
        self.weights.record_observation(update.target_type, implicit=implicit)
        self.updates_applied += 1
        self._updates_since_finetune += 1

        if (
            self.config.finetune_every > 0
            and self.classifier is not None
            and self.classifier.is_fitted
            and self._updates_since_finetune >= self.config.finetune_every
        ):
            self.finetune_classifier()

    def finetune_classifier(self, epochs: int | None = None) -> bool:
        """Finetune the local classifier copy on the accumulated training data.

        Returns ``False`` when there is no classifier or no data to train on.
        """
        if self.classifier is None or not self.classifier.is_fitted or not self.training_examples:
            return False
        self.classifier.finetune(
            self.training_examples, epochs=epochs or self.config.finetune_epochs
        )
        self._updates_since_finetune = 0
        return True

    # --------------------------------------------------------------- inference
    def predict_scores(self, column: Column, table: Table | None = None) -> dict[str, float]:
        """Local per-type confidences for one column.

        Combines the customer's labeling functions (through the label model)
        with the finetuned local classifier when one exists; per type the
        stronger of the two signals wins.
        """
        return self.predict_scores_table([column], table)[0]

    def predict_scores_table(
        self, columns: Sequence[Column], table: Table | None = None
    ) -> list[dict[str, float]]:
        """Local per-type confidences for several columns of one table.

        Semantically identical to :meth:`predict_scores` per column, but the
        finetuned classifier (when present) runs **one** batched forward pass
        for the whole table instead of one per column — the bulk hot path of
        the adapted-customer blend.
        """
        scores_per_column: list[dict[str, float]] = [{} for _ in columns]
        if len(self.labeling_functions):
            functions = list(self.labeling_functions)
            for scores, column in zip(scores_per_column, columns):
                lf_scores = self.label_model.label_column(functions, column, table)
                for type_name, confidence in lf_scores.items():
                    scores[type_name] = max(scores.get(type_name, 0.0), confidence)
        if self.classifier is not None and self.classifier.is_fitted and self.has_adaptations():
            observed = set(self.weights.observed_types())
            probabilities = self.classifier.predict_proba_batch(
                [(column, table) for column in columns]
            )
            types = self.classifier.known_types()
            for scores, row in zip(scores_per_column, probabilities):
                for type_name, confidence in zip(types, row):
                    if type_name in observed:
                        scores[type_name] = max(scores.get(type_name, 0.0), float(confidence))
        return scores_per_column

    def combine_with_global(
        self,
        global_scores: dict[str, float],
        column: Column,
        table: Table | None = None,
    ) -> dict[str, float]:
        """Blend the global pipeline's scores with this customer's local evidence.

        Per type the scores are interpolated with the W_g/W_l weight vectors.
        On top of that, when the local model fires strongly for one of the
        customer's adapted types, the *competing* types that only the global
        model supports are discounted by that strength: repeated corrections
        ("this column is a salary, not a revenue") must eventually be able to
        overturn a confident-but-wrong global label, and the per-type convex
        combination alone cannot do that because the wrong type keeps its full
        global weight.  The discount grows with the number of observations, so
        a single correction nudges the ranking while a handful flips it — the
        gradual hand-over of influence the paper describes.
        """
        if not self.has_adaptations():
            return dict(global_scores)
        local_scores = self.predict_scores(column, table)
        combined = self.weights.combine_scores(global_scores, local_scores)
        override_strength = max(
            (
                self.weights.local_weight(type_name) * confidence
                for type_name, confidence in local_scores.items()
            ),
            default=0.0,
        )
        if override_strength > 0.0:
            for type_name in combined:
                if type_name not in local_scores:
                    combined[type_name] *= 1.0 - override_strength
        return combined

    # ------------------------------------------------------------------ report
    def summary(self) -> dict[str, object]:
        """Aggregate state used in examples and the Fig. 2 benchmark."""
        global_weights, local_weights = self.weights.weight_vectors()
        return {
            "customer_id": self.customer_id,
            "updates_applied": self.updates_applied,
            "labeling_functions": len(self.labeling_functions),
            "training_examples": len(self.training_examples),
            "adapted_types": self.adapted_types,
            "local_weights": {k: round(v, 3) for k, v in sorted(local_weights.items())},
            "global_weights": {k: round(v, 3) for k, v in sorted(global_weights.items())},
            "has_finetuned_classifier": self.classifier is not None and self.classifier.is_fitted,
        }
