"""Global/local model architecture and per-customer adaptation (Fig. 2)."""

from repro.adaptation.customer import CustomerContext
from repro.adaptation.global_model import GlobalModel, GlobalModelConfig
from repro.adaptation.local_model import LocalModel, LocalModelConfig
from repro.adaptation.weights import GlobalLocalWeights, WeightScheduleConfig

__all__ = [
    "GlobalLocalWeights",
    "WeightScheduleConfig",
    "GlobalModel",
    "GlobalModelConfig",
    "LocalModel",
    "LocalModelConfig",
    "CustomerContext",
]
