"""Customer context: one tenant's local model, DPBD session, and history.

Figure 2 shows one global model and ``N`` customers, each with an App UI, a
DPBD loop, and a local model.  :class:`CustomerContext` is the per-tenant
bundle the :class:`~repro.core.sigmatyper.SigmaTyper` facade manages; it owns
no prediction logic of its own beyond delegating to its parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptation.local_model import LocalModel, LocalModelConfig
from repro.corpus.collection import TableCorpus
from repro.dpbd.session import AdaptationUpdate, DPBDSession
from repro.dpbd.feedback import FeedbackLog

__all__ = ["CustomerContext"]


@dataclass
class CustomerContext:
    """Everything SigmaTyper tracks for one customer."""

    customer_id: str
    local_model: LocalModel
    dpbd: DPBDSession
    #: Updates applied so far, in order (useful for audits and the benchmarks).
    applied_updates: list[AdaptationUpdate] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        customer_id: str,
        source_corpus: TableCorpus | None = None,
        local_config: LocalModelConfig | None = None,
        classifier=None,
    ) -> "CustomerContext":
        """Build a fresh customer context around a shared source corpus."""
        return cls(
            customer_id=customer_id,
            local_model=LocalModel(customer_id, config=local_config, classifier=classifier),
            dpbd=DPBDSession(source_corpus=source_corpus),
        )

    @property
    def feedback_log(self) -> FeedbackLog:
        """The DPBD session's feedback history."""
        return self.dpbd.log

    def apply(self, update: AdaptationUpdate) -> None:
        """Apply one DPBD update to the local model and remember it."""
        self.local_model.apply_update(update)
        self.applied_updates.append(update)

    def summary(self) -> dict[str, object]:
        """Customer-level report combining feedback and local-model state."""
        return {
            "customer_id": self.customer_id,
            "feedback": self.feedback_log.summary(),
            "local_model": self.local_model.summary(),
        }
