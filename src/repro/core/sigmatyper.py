"""SigmaTyper: the end-to-end system facade.

This module assembles the full architecture of Fig. 2: a pretrained **global
model** (the 3-step cascade of Fig. 4) shared identically across customers,
plus per-customer **local models** adapted through data programming by
demonstration (Fig. 3).  The facade exposes the workflow a product would
build on:

>>> typer = SigmaTyper.pretrained()                  # offline pretraining
>>> typer.register_customer("acme")
>>> prediction = typer.annotate(table, customer_id="acme")
>>> typer.give_feedback("acme", table, "Income", "salary")   # Fig. 3 relabel
>>> prediction = typer.annotate(table, customer_id="acme")   # now adapted

Predictions below the precision threshold τ become abstentions; τ can be
calibrated from a validation corpus so a target precision is met.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.adaptation.customer import CustomerContext
from repro.adaptation.global_model import GlobalModel, GlobalModelConfig
from repro.adaptation.local_model import LocalModelConfig
from repro.core import colblock
from repro.core.aggregation import calibrate_tau
from repro.core.errors import ConfigurationError, PipelineError
from repro.core.ontology import TypeOntology, UNKNOWN_TYPE
from repro.core.pipeline import CascadeConfig, TypeDetectionPipeline
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.table import Table
from repro.corpus.collection import TableCorpus
from repro.dpbd.session import AdaptationUpdate

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.serving.backends import ExecutionBackend

__all__ = ["SigmaTyperConfig", "SigmaTyper"]


@dataclass
class SigmaTyperConfig:
    """System-level configuration of the SigmaTyper facade."""

    global_model: GlobalModelConfig = field(default_factory=GlobalModelConfig)
    local_model: LocalModelConfig = field(default_factory=LocalModelConfig)
    #: Give each customer a private finetunable copy of the learned classifier.
    #: Off by default because cloning the classifier per customer costs memory;
    #: the labeling functions alone already adapt predictions.
    private_classifier_copies: bool = False
    #: Candidates reported per column in the final prediction.
    top_k: int = 3


class SigmaTyper:
    """Global + local semantic column type detection with DPBD adaptation."""

    def __init__(
        self,
        global_model: GlobalModel,
        config: SigmaTyperConfig | None = None,
        source_corpus: TableCorpus | None = None,
    ) -> None:
        self.global_model = global_model
        self.config = config or SigmaTyperConfig()
        #: The corpus DPBD mines for weak labels (defaults to the pretraining corpus).
        self.source_corpus = source_corpus or global_model.training_corpus
        self._customers: dict[str, CustomerContext] = {}
        #: Lazily built variant of the global pipeline with the cascade
        #: short-circuit disabled (adapted customers need every step's
        #: evidence).  Kept in sync explicitly: :meth:`set_tau` propagates τ,
        #: and :meth:`invalidate_exhaustive_pipeline` forces a rebuild after
        #: structural pipeline changes.
        self._exhaustive: TypeDetectionPipeline | None = None

    # ----------------------------------------------------------------- factory
    @classmethod
    def pretrained(
        cls,
        training_corpus: TableCorpus | None = None,
        background_corpus: TableCorpus | None = None,
        ontology: TypeOntology | None = None,
        config: SigmaTyperConfig | None = None,
        include_learned_model: bool = True,
    ) -> "SigmaTyper":
        """Pretrain the global model and return a ready-to-use system.

        With no arguments this generates the synthetic GitTables-like
        pretraining corpus and an OOD background corpus, then trains the
        learned classifier — the offline equivalent of the paper's
        "pretrained on GitTables" global model.
        """
        config = config or SigmaTyperConfig()
        global_model = GlobalModel.pretrain(
            training_corpus=training_corpus,
            background_corpus=background_corpus,
            ontology=ontology,
            config=config.global_model,
            include_learned_model=include_learned_model,
        )
        return cls(global_model, config=config)

    # --------------------------------------------------------------- customers
    @property
    def customer_ids(self) -> list[str]:
        """Registered customers, in registration order."""
        return list(self._customers)

    def register_customer(self, customer_id: str) -> CustomerContext:
        """Create the local model and DPBD session for a new customer."""
        if not customer_id:
            raise ConfigurationError("customer_id must be non-empty")
        if customer_id in self._customers:
            raise ConfigurationError(f"customer {customer_id!r} is already registered")
        classifier = None
        if self.config.private_classifier_copies and self.global_model.classifier is not None:
            classifier = self._clone_classifier()
        context = CustomerContext.create(
            customer_id,
            source_corpus=self.source_corpus,
            local_config=self.config.local_model,
            classifier=classifier,
        )
        self._customers[customer_id] = context
        return context

    def customer(self, customer_id: str) -> CustomerContext:
        """Return the context of a registered customer."""
        try:
            return self._customers[customer_id]
        except KeyError as exc:
            raise ConfigurationError(f"unknown customer {customer_id!r}") from exc

    def _clone_classifier(self):
        """A private, finetunable copy of the global learned classifier."""
        from repro.embedding_model.classifier import TableEmbeddingClassifier

        source = self.global_model.classifier
        assert source is not None
        clone = TableEmbeddingClassifier(featurizer=source.featurizer, mlp_config=source.mlp_config)
        clone.vocabulary = source.vocabulary
        from repro.nn.model import MLPClassifier

        clone.model = MLPClassifier(
            num_features=source.featurizer.dim,
            num_classes=max(len(source.vocabulary or []), 2),
            config=source.mlp_config,
        )
        clone.model._feature_mean = source.model._feature_mean  # noqa: SLF001 - deliberate deep copy
        clone.model._feature_scale = source.model._feature_scale  # noqa: SLF001
        clone.model.set_weights(source.model.get_weights())
        return clone

    # --------------------------------------------------------------- inference
    @property
    def tau(self) -> float:
        """The current precision threshold τ."""
        return self.global_model.pipeline.config.tau

    def set_tau(self, tau: float) -> None:
        """Override the precision threshold τ (on every derived pipeline too)."""
        if not 0.0 <= tau <= 1.0:
            raise ConfigurationError("tau must be in [0, 1]")
        self.global_model.pipeline.config.tau = tau
        # Explicit invalidation of the derived exhaustive pipeline's τ: it is
        # the only piece of its config that recalibration may change.
        if self._exhaustive is not None:
            self._exhaustive.config.tau = tau

    @property
    def confidence_threshold(self) -> float:
        """The current cascade confidence threshold c."""
        return self.global_model.pipeline.config.confidence_threshold

    def set_confidence_threshold(self, confidence_threshold: float) -> None:
        """Override the cascade confidence threshold c on every pipeline.

        Unlike structural pipeline changes this needs no cache invalidation:
        every cache in the system (profile store entries, feature vectors,
        embedder phrases) is keyed by column content and model state, while c
        only gates *which steps run* for a column.  Lowering c makes the
        cascade shallower (faster, the E10 trade-off); it is the control
        variable the serving layer's SLO controller steps under load (see
        :mod:`repro.serving.slo`).  The derived exhaustive pipeline runs all
        steps regardless, but its config is kept in sync so ``summary()`` and
        rebuilds never observe a stale threshold.
        """
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ConfigurationError("confidence_threshold must be in [0, 1]")
        self.global_model.pipeline.config.confidence_threshold = confidence_threshold
        if self._exhaustive is not None:
            self._exhaustive.config.confidence_threshold = confidence_threshold

    def annotate(self, table: Table, customer_id: str | None = None) -> TablePrediction:
        """Predict the semantic types of every column in *table*.

        Without a ``customer_id`` (or for a customer that has given no
        feedback yet) this is exactly the global cascade.  For an adapted
        customer, the pipeline is run exhaustively (every step on every
        column) so the blend has value- and model-based evidence even for
        columns whose header alone satisfied the cascade — a customer gives
        feedback precisely because the cheap signals mislead in their context
        — and every column's global confidences are then combined with the
        local model's evidence using the per-type weight vectors W_g / W_l.
        """
        if customer_id is None:
            return self.global_model.annotate(table)
        context = self.customer(customer_id)
        if not context.local_model.has_adaptations():
            return self.global_model.annotate(table)
        global_prediction = self._exhaustive_pipeline().annotate(table)
        return self._blend_with_local(table, global_prediction, context)

    def annotate_corpus(
        self,
        tables: Iterable[Table],
        customer_id: str | None = None,
        backend: "ExecutionBackend | str | None" = None,
        columnar: bool | None = None,
    ) -> list[TablePrediction]:
        """Bulk-annotate many tables (a :class:`TableCorpus` or any iterable).

        This is the high-throughput entry point: per-table results are
        identical to calling :meth:`annotate` in a loop, but the batched
        pipeline steps and the memoized profile/embedding caches are shared
        across the whole corpus.  Adapted customers ride the same bulk path:
        the exhaustive pipeline annotates the corpus with
        ``annotate_many`` and the global/local blend is vectorized per table.

        ``backend`` shards the corpus by table across workers — ``None`` /
        ``"serial"`` runs in-process, ``"threaded"`` / ``"multiprocess"`` (or
        an :class:`~repro.serving.backends.ExecutionBackend` instance, e.g.
        ``"multiprocess:4"``) fan out; every backend returns predictions
        identical to the serial path.  The multiprocess spec may also name a
        shard transport — ``"multiprocess:4+shm"`` ships shards as zero-copy
        shared-memory column blocks instead of pickle (see
        :mod:`repro.serving.transport`), again with bit-identical results.

        ``columnar`` controls the block-native kernel path
        (:mod:`repro.core.colblock`): ``None`` (default) enables it whenever
        kernels are enabled process-wide, ``False`` forces the per-value
        Python path.  For in-process backends the tables are converted via
        :meth:`~repro.core.table.Table.to_block` so profiling and
        featurization run vectorized; multiprocess workers already receive
        kernel-ready views straight from the shm transport.  Predictions are
        bit-identical either way.
        """
        from repro.serving.backends import MultiprocessBackend, resolve_backend

        tables = list(tables)
        execution = resolve_backend(backend)
        use_columnar = columnar if columnar is not None else colblock.kernels_enabled()
        if (
            use_columnar
            and colblock.kernels_enabled()
            and not isinstance(execution, MultiprocessBackend)
        ):
            tables = [table.to_block() for table in tables]
        if customer_id is None:
            return execution.run(self.global_model.pipeline.annotate_many, tables)
        context = self.customer(customer_id)
        if not context.local_model.has_adaptations():
            return execution.run(self.global_model.pipeline.annotate_many, tables)
        return execution.run(partial(self._annotate_adapted_many, customer_id), tables)

    def _annotate_adapted_many(
        self, customer_id: str, tables: Sequence[Table]
    ) -> list[TablePrediction]:
        """One shard of the adapted-customer bulk path (backend-friendly)."""
        context = self.customer(customer_id)
        pipeline = self._exhaustive_pipeline()
        global_predictions = pipeline.annotate_many(list(tables))
        return [
            self._blend_with_local(table, prediction, context)
            for table, prediction in zip(tables, global_predictions)
        ]

    def _exhaustive_pipeline(self) -> TypeDetectionPipeline:
        """The global pipeline with the cascade short-circuit disabled."""
        if self._exhaustive is None:
            base = self.global_model.pipeline
            config = CascadeConfig(
                confidence_threshold=base.config.confidence_threshold,
                tau=base.config.tau,
                top_k=max(base.config.top_k, 5),
                always_run_all_steps=True,
                aggregation_method=base.config.aggregation_method,
            )
            self._exhaustive = TypeDetectionPipeline(base.steps, config=config, aggregator=base.aggregator)
        return self._exhaustive

    def invalidate_exhaustive_pipeline(self) -> None:
        """Force a rebuild of the derived exhaustive pipeline.

        Call after structurally modifying ``global_model.pipeline`` (steps,
        thresholds other than τ — :meth:`set_tau` already propagates τ).
        """
        self._exhaustive = None

    def _blend_with_local(
        self,
        table: Table,
        global_prediction: TablePrediction,
        context: CustomerContext,
    ) -> TablePrediction:
        """Blend one table's global prediction with a customer's local evidence.

        The per-type convex combination and the competing-type discount of
        :meth:`~repro.adaptation.local_model.LocalModel.combine_with_global`
        are applied to all of the table's columns at once on a shared type
        axis, and the local classifier (when finetuned) runs one batched
        forward per table instead of one per column.
        """
        local_model = context.local_model
        columns = [table.columns[p.column_index] for p in global_prediction.columns]
        local_scores_per_column = local_model.predict_scores_table(columns, table)

        # Shared type axis: the union of candidate types across the table.
        type_names: list[str] = []
        type_index: dict[str, int] = {}
        global_scores_per_column: list[dict[str, float]] = []
        for prediction, local_scores in zip(global_prediction.columns, local_scores_per_column):
            global_scores = {score.type_name: score.confidence for score in prediction.scores}
            global_scores_per_column.append(global_scores)
            for type_name in (*global_scores, *local_scores):
                if type_name not in type_index:
                    type_index[type_name] = len(type_names)
                    type_names.append(type_name)

        num_columns = len(columns)
        num_types = len(type_names)
        global_matrix = np.zeros((num_columns, num_types), dtype=np.float64)
        local_matrix = np.zeros((num_columns, num_types), dtype=np.float64)
        #: Type participates in the column's local evidence (even at 0.0).
        local_present = np.zeros((num_columns, num_types), dtype=bool)
        #: Type is a candidate for the column at all (drives the output set).
        candidate = np.zeros((num_columns, num_types), dtype=bool)
        for row, (global_scores, local_scores) in enumerate(
            zip(global_scores_per_column, local_scores_per_column)
        ):
            for type_name, confidence in global_scores.items():
                index = type_index[type_name]
                global_matrix[row, index] = confidence
                candidate[row, index] = True
            for type_name, confidence in local_scores.items():
                index = type_index[type_name]
                local_matrix[row, index] = confidence
                local_present[row, index] = True
                candidate[row, index] = True

        weights = local_model.weights
        local_weight = np.array(
            [weights.local_weight(type_name) for type_name in type_names], dtype=np.float64
        )
        if num_types:
            # Per-type convex combination W_g·global + W_l·local, then the
            # competing-type discount: types without local evidence are scaled
            # by one minus the customer's strongest local signal, so repeated
            # corrections can overturn a confident-but-wrong global label.
            combined = (1.0 - local_weight)[None, :] * global_matrix
            combined += local_weight[None, :] * local_matrix
            override_strength = np.where(
                local_present, local_weight[None, :] * local_matrix, 0.0
            ).max(axis=1)
            discounted = combined * (1.0 - override_strength)[:, None]
            combined = np.where(local_present, combined, discounted)
        else:
            combined = np.zeros((num_columns, 0), dtype=np.float64)

        tau = self.tau
        blended_columns: list[ColumnPrediction] = []
        for row, prediction in enumerate(global_prediction.columns):
            ranked = [
                TypeScore(confidence=float(combined[row, index]), type_name=type_name)
                for index, type_name in enumerate(type_names)
                if candidate[row, index] and type_name != UNKNOWN_TYPE
            ]
            ranked.sort(key=lambda score: (-score.confidence, score.type_name))
            top = ranked[: self.config.top_k]
            abstained = not top or top[0].confidence < tau
            blended_columns.append(
                ColumnPrediction(
                    column_index=prediction.column_index,
                    column_name=prediction.column_name,
                    scores=top,
                    source_step="global+local" if local_model.has_adaptations() else prediction.source_step,
                    abstained=abstained,
                    step_scores=prediction.step_scores,
                )
            )
        return TablePrediction(
            table_name=global_prediction.table_name,
            columns=blended_columns,
            step_trace=dict(global_prediction.step_trace),
            step_seconds=dict(global_prediction.step_seconds),
        )

    # ---------------------------------------------------------------- feedback
    def give_feedback(
        self,
        customer_id: str,
        table: Table,
        column_name: str,
        corrected_type: str,
        previous_type: str | None = None,
    ) -> AdaptationUpdate:
        """Apply an explicit relabel (Fig. 3 ①–④) for one customer."""
        context = self.customer(customer_id)
        update = context.dpbd.relabel(
            table, column_name, corrected_type, previous_type=previous_type
        )
        context.apply(update)
        return update

    def approve_prediction(
        self,
        customer_id: str,
        table: Table,
        column_name: str,
        approved_type: str,
        implicit: bool = True,
    ) -> AdaptationUpdate:
        """Record that the user kept (or confirmed) a predicted type."""
        context = self.customer(customer_id)
        update = context.dpbd.approve(table, column_name, approved_type, implicit=implicit)
        context.apply(update)
        return update

    def accept_table(
        self,
        customer_id: str,
        table: Table,
        prediction: TablePrediction,
        exclude_columns: tuple[str, ...] = (),
    ) -> list[AdaptationUpdate]:
        """Treat every non-abstained prediction of a table as implicitly approved.

        This mirrors the paper's flow where "the entire table with its labels
        is then added to the training data" when the user proceeds with their
        analysis without correcting anything further.
        """
        updates = []
        for column_prediction in prediction.columns:
            if column_prediction.abstained:
                continue
            if column_prediction.column_name in exclude_columns:
                continue
            updates.append(
                self.approve_prediction(
                    customer_id,
                    table,
                    column_prediction.column_name,
                    column_prediction.predicted_type,
                    implicit=True,
                )
            )
        return updates

    # -------------------------------------------------------------- calibration
    def calibrate_tau(
        self,
        validation_corpus: TableCorpus,
        target_precision: float = 0.95,
        customer_id: str | None = None,
        backend: "ExecutionBackend | str | None" = None,
    ) -> float:
        """Pick τ from a labeled validation corpus so precision reaches the target.

        Calibration rides the batched :meth:`annotate_corpus` path (optionally
        sharded across an execution backend).  Returns the calibrated τ (and
        installs it on the pipeline).
        """
        scored: list[tuple[float, bool]] = []
        original_tau = self.tau
        # Collect raw confidences with thresholding disabled.
        self.set_tau(0.0)
        try:
            tables = list(validation_corpus)
            predictions = self.annotate_corpus(tables, customer_id=customer_id, backend=backend)
            for table, prediction in zip(tables, predictions):
                for column, column_prediction in zip(table.columns, prediction.columns):
                    if column.semantic_type is None or not column_prediction.scores:
                        continue
                    scored.append(
                        (
                            column_prediction.confidence,
                            column_prediction.predicted_type == column.semantic_type,
                        )
                    )
        finally:
            self.set_tau(original_tau)
        if not scored:
            raise PipelineError("calibration corpus produced no scored predictions")
        tau = calibrate_tau(scored, target_precision=target_precision)
        self.set_tau(tau)
        return tau

    # ------------------------------------------------------------------ report
    def summary(self) -> dict[str, object]:
        """System-level report (pipeline steps, τ, customers, adaptations).

        When a shared profile store is active (see
        :mod:`repro.serving.profile_store`), its hit/miss/persistence counters
        — including a persistent store's cross-process ``shared_hits``, the
        lookups served live from a sibling process's segments — are
        included under ``profile_store`` so one call captures the full
        serving-side state of the system.  Likewise, once any multiprocess
        run shipped shards, the process-wide per-transport accounting
        (``bytes_shipped``, ``shm_bytes``, ``pickle_fallbacks`` — see
        :mod:`repro.serving.transport`) is included under
        ``shard_transport``.

        Two always-present operator keys round out the report:
        ``columnar_kernels`` (block-native kernel hit/fallback counters —
        :func:`repro.core.colblock.kernel_stats`) and ``timings`` (per-stage
        exclusive wall-clock for profile / featurize / classify / match /
        lookup — :func:`repro.core.timings.stage_timings`), so E10/E15 can
        attribute speedups instead of reporting one opaque col/s number.
        """
        # The shared sections (profile_store / shard_transport /
        # columnar_kernels / timings) come from the serving layer's unified
        # stats vocabulary, so this report and every serving summary() spell
        # the same counters identically (docs/SERVING.md#stats-vocabulary).
        from repro.serving.stats import render_stats

        report: dict[str, object] = {
            "pipeline_steps": self.global_model.pipeline.step_names,
            "tau": self.tau,
            "confidence_threshold": self.global_model.pipeline.config.confidence_threshold,
            "ontology_types": len(self.global_model.ontology),
            "customers": {
                customer_id: context.summary()
                for customer_id, context in self._customers.items()
            },
        }
        report.update(render_stats(typer=self))
        return report
