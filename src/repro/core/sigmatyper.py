"""SigmaTyper: the end-to-end system facade.

This module assembles the full architecture of Fig. 2: a pretrained **global
model** (the 3-step cascade of Fig. 4) shared identically across customers,
plus per-customer **local models** adapted through data programming by
demonstration (Fig. 3).  The facade exposes the workflow a product would
build on:

>>> typer = SigmaTyper.pretrained()                  # offline pretraining
>>> typer.register_customer("acme")
>>> prediction = typer.annotate(table, customer_id="acme")
>>> typer.give_feedback("acme", table, "Income", "salary")   # Fig. 3 relabel
>>> prediction = typer.annotate(table, customer_id="acme")   # now adapted

Predictions below the precision threshold τ become abstentions; τ can be
calibrated from a validation corpus so a target precision is met.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.adaptation.customer import CustomerContext
from repro.adaptation.global_model import GlobalModel, GlobalModelConfig
from repro.adaptation.local_model import LocalModelConfig
from repro.core.aggregation import calibrate_tau
from repro.core.errors import ConfigurationError, PipelineError
from repro.core.ontology import TypeOntology, UNKNOWN_TYPE
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.table import Table
from repro.corpus.collection import TableCorpus
from repro.dpbd.session import AdaptationUpdate

__all__ = ["SigmaTyperConfig", "SigmaTyper"]


@dataclass
class SigmaTyperConfig:
    """System-level configuration of the SigmaTyper facade."""

    global_model: GlobalModelConfig = field(default_factory=GlobalModelConfig)
    local_model: LocalModelConfig = field(default_factory=LocalModelConfig)
    #: Give each customer a private finetunable copy of the learned classifier.
    #: Off by default because cloning the classifier per customer costs memory;
    #: the labeling functions alone already adapt predictions.
    private_classifier_copies: bool = False
    #: Candidates reported per column in the final prediction.
    top_k: int = 3


class SigmaTyper:
    """Global + local semantic column type detection with DPBD adaptation."""

    def __init__(
        self,
        global_model: GlobalModel,
        config: SigmaTyperConfig | None = None,
        source_corpus: TableCorpus | None = None,
    ) -> None:
        self.global_model = global_model
        self.config = config or SigmaTyperConfig()
        #: The corpus DPBD mines for weak labels (defaults to the pretraining corpus).
        self.source_corpus = source_corpus or global_model.training_corpus
        self._customers: dict[str, CustomerContext] = {}

    # ----------------------------------------------------------------- factory
    @classmethod
    def pretrained(
        cls,
        training_corpus: TableCorpus | None = None,
        background_corpus: TableCorpus | None = None,
        ontology: TypeOntology | None = None,
        config: SigmaTyperConfig | None = None,
        include_learned_model: bool = True,
    ) -> "SigmaTyper":
        """Pretrain the global model and return a ready-to-use system.

        With no arguments this generates the synthetic GitTables-like
        pretraining corpus and an OOD background corpus, then trains the
        learned classifier — the offline equivalent of the paper's
        "pretrained on GitTables" global model.
        """
        config = config or SigmaTyperConfig()
        global_model = GlobalModel.pretrain(
            training_corpus=training_corpus,
            background_corpus=background_corpus,
            ontology=ontology,
            config=config.global_model,
            include_learned_model=include_learned_model,
        )
        return cls(global_model, config=config)

    # --------------------------------------------------------------- customers
    @property
    def customer_ids(self) -> list[str]:
        """Registered customers, in registration order."""
        return list(self._customers)

    def register_customer(self, customer_id: str) -> CustomerContext:
        """Create the local model and DPBD session for a new customer."""
        if not customer_id:
            raise ConfigurationError("customer_id must be non-empty")
        if customer_id in self._customers:
            raise ConfigurationError(f"customer {customer_id!r} is already registered")
        classifier = None
        if self.config.private_classifier_copies and self.global_model.classifier is not None:
            classifier = self._clone_classifier()
        context = CustomerContext.create(
            customer_id,
            source_corpus=self.source_corpus,
            local_config=self.config.local_model,
            classifier=classifier,
        )
        self._customers[customer_id] = context
        return context

    def customer(self, customer_id: str) -> CustomerContext:
        """Return the context of a registered customer."""
        try:
            return self._customers[customer_id]
        except KeyError as exc:
            raise ConfigurationError(f"unknown customer {customer_id!r}") from exc

    def _clone_classifier(self):
        """A private, finetunable copy of the global learned classifier."""
        from repro.embedding_model.classifier import TableEmbeddingClassifier

        source = self.global_model.classifier
        assert source is not None
        clone = TableEmbeddingClassifier(featurizer=source.featurizer, mlp_config=source.mlp_config)
        clone.vocabulary = source.vocabulary
        from repro.nn.model import MLPClassifier

        clone.model = MLPClassifier(
            num_features=source.featurizer.dim,
            num_classes=max(len(source.vocabulary or []), 2),
            config=source.mlp_config,
        )
        clone.model._feature_mean = source.model._feature_mean  # noqa: SLF001 - deliberate deep copy
        clone.model._feature_scale = source.model._feature_scale  # noqa: SLF001
        clone.model.set_weights(source.model.get_weights())
        return clone

    # --------------------------------------------------------------- inference
    @property
    def tau(self) -> float:
        """The current precision threshold τ."""
        return self.global_model.pipeline.config.tau

    def set_tau(self, tau: float) -> None:
        """Override the precision threshold τ."""
        if not 0.0 <= tau <= 1.0:
            raise ConfigurationError("tau must be in [0, 1]")
        self.global_model.pipeline.config.tau = tau

    def annotate(self, table: Table, customer_id: str | None = None) -> TablePrediction:
        """Predict the semantic types of every column in *table*.

        Without a ``customer_id`` (or for a customer that has given no
        feedback yet) this is exactly the global cascade.  For an adapted
        customer, the pipeline is run exhaustively (every step on every
        column) so the blend has value- and model-based evidence even for
        columns whose header alone satisfied the cascade — a customer gives
        feedback precisely because the cheap signals mislead in their context
        — and every column's global confidences are then combined with the
        local model's evidence using the per-type weight vectors W_g / W_l.
        """
        if customer_id is None:
            return self.global_model.annotate(table)
        context = self.customer(customer_id)
        if not context.local_model.has_adaptations():
            return self.global_model.annotate(table)
        global_prediction = self._exhaustive_pipeline().annotate(table)
        return self._blend_with_local(table, global_prediction, context)

    def annotate_corpus(
        self, tables: Iterable[Table], customer_id: str | None = None
    ) -> list[TablePrediction]:
        """Bulk-annotate many tables (a :class:`TableCorpus` or any iterable).

        This is the high-throughput entry point: per-table results are
        identical to calling :meth:`annotate` in a loop, but the batched
        pipeline steps and the memoized profile/embedding caches are shared
        across the whole corpus, so warm-cache throughput is much higher than
        table-at-a-time calls from a cold start.
        """
        if customer_id is None:
            return self.global_model.annotate_many(list(tables))
        return [self.annotate(table, customer_id=customer_id) for table in tables]

    def _exhaustive_pipeline(self):
        """The global pipeline with the cascade short-circuit disabled."""
        from repro.core.pipeline import CascadeConfig, TypeDetectionPipeline

        base = self.global_model.pipeline
        if getattr(self, "_exhaustive", None) is None:
            config = CascadeConfig(
                confidence_threshold=base.config.confidence_threshold,
                tau=base.config.tau,
                top_k=max(base.config.top_k, 5),
                always_run_all_steps=True,
                aggregation_method=base.config.aggregation_method,
            )
            self._exhaustive = TypeDetectionPipeline(base.steps, config=config, aggregator=base.aggregator)
        # Keep τ in sync with the main pipeline (it may have been recalibrated).
        self._exhaustive.config.tau = base.config.tau
        return self._exhaustive

    def _blend_with_local(
        self,
        table: Table,
        global_prediction: TablePrediction,
        context: CustomerContext,
    ) -> TablePrediction:
        tau = self.tau
        local_model = context.local_model
        blended_columns: list[ColumnPrediction] = []
        for prediction in global_prediction.columns:
            column = table.columns[prediction.column_index]
            global_scores = {score.type_name: score.confidence for score in prediction.scores}
            combined = local_model.combine_with_global(global_scores, column, table)
            combined.pop(UNKNOWN_TYPE, None)
            ranked = [
                TypeScore(confidence=confidence, type_name=type_name)
                for type_name, confidence in combined.items()
            ]
            ranked.sort(key=lambda score: (-score.confidence, score.type_name))
            top = ranked[: self.config.top_k]
            abstained = not top or top[0].confidence < tau
            blended_columns.append(
                ColumnPrediction(
                    column_index=prediction.column_index,
                    column_name=prediction.column_name,
                    scores=top,
                    source_step="global+local" if local_model.has_adaptations() else prediction.source_step,
                    abstained=abstained,
                    step_scores=prediction.step_scores,
                )
            )
        return TablePrediction(
            table_name=global_prediction.table_name,
            columns=blended_columns,
            step_trace=dict(global_prediction.step_trace),
            step_seconds=dict(global_prediction.step_seconds),
        )

    # ---------------------------------------------------------------- feedback
    def give_feedback(
        self,
        customer_id: str,
        table: Table,
        column_name: str,
        corrected_type: str,
        previous_type: str | None = None,
    ) -> AdaptationUpdate:
        """Apply an explicit relabel (Fig. 3 ①–④) for one customer."""
        context = self.customer(customer_id)
        update = context.dpbd.relabel(
            table, column_name, corrected_type, previous_type=previous_type
        )
        context.apply(update)
        return update

    def approve_prediction(
        self,
        customer_id: str,
        table: Table,
        column_name: str,
        approved_type: str,
        implicit: bool = True,
    ) -> AdaptationUpdate:
        """Record that the user kept (or confirmed) a predicted type."""
        context = self.customer(customer_id)
        update = context.dpbd.approve(table, column_name, approved_type, implicit=implicit)
        context.apply(update)
        return update

    def accept_table(
        self,
        customer_id: str,
        table: Table,
        prediction: TablePrediction,
        exclude_columns: tuple[str, ...] = (),
    ) -> list[AdaptationUpdate]:
        """Treat every non-abstained prediction of a table as implicitly approved.

        This mirrors the paper's flow where "the entire table with its labels
        is then added to the training data" when the user proceeds with their
        analysis without correcting anything further.
        """
        updates = []
        for column_prediction in prediction.columns:
            if column_prediction.abstained:
                continue
            if column_prediction.column_name in exclude_columns:
                continue
            updates.append(
                self.approve_prediction(
                    customer_id,
                    table,
                    column_prediction.column_name,
                    column_prediction.predicted_type,
                    implicit=True,
                )
            )
        return updates

    # -------------------------------------------------------------- calibration
    def calibrate_tau(
        self,
        validation_corpus: TableCorpus,
        target_precision: float = 0.95,
        customer_id: str | None = None,
    ) -> float:
        """Pick τ from a labeled validation corpus so precision reaches the target.

        Returns the calibrated τ (and installs it on the pipeline).
        """
        scored: list[tuple[float, bool]] = []
        original_tau = self.tau
        # Collect raw confidences with thresholding disabled.
        self.set_tau(0.0)
        try:
            for table in validation_corpus:
                prediction = self.annotate(table, customer_id=customer_id)
                for column, column_prediction in zip(table.columns, prediction.columns):
                    if column.semantic_type is None or not column_prediction.scores:
                        continue
                    scored.append(
                        (
                            column_prediction.confidence,
                            column_prediction.predicted_type == column.semantic_type,
                        )
                    )
        finally:
            self.set_tau(original_tau)
        if not scored:
            raise PipelineError("calibration corpus produced no scored predictions")
        tau = calibrate_tau(scored, target_precision=target_precision)
        self.set_tau(tau)
        return tau

    # ------------------------------------------------------------------ report
    def summary(self) -> dict[str, object]:
        """System-level report (pipeline steps, τ, customers, adaptations)."""
        return {
            "pipeline_steps": self.global_model.pipeline.step_names,
            "tau": self.tau,
            "confidence_threshold": self.global_model.pipeline.config.confidence_threshold,
            "ontology_types": len(self.global_model.ontology),
            "customers": {
                customer_id: context.summary()
                for customer_id, context in self._customers.items()
            },
        }
