"""Built-in DBpedia-style semantic type definitions.

This module is pure data: a list of keyword-argument dictionaries consumed by
:func:`repro.core.ontology.build_default_ontology`.  The selection mirrors the
kind of coverage the paper attributes to the DBpedia ontology on GitTables —
types common in enterprise, science, and medical databases — organised in a
shallow hierarchy of category nodes with leaf types underneath.

Synonyms double as header-matching vocabulary: they include the clean labels,
common abbreviations, and snake/camel variants one finds in real database
exports.
"""

from __future__ import annotations

__all__ = ["DEFAULT_TYPE_DEFINITIONS", "CATEGORY_TYPES"]

#: Non-leaf category nodes.  They exist so the ontology has a meaningful
#: hierarchy (used for distance computations and coarse evaluation), but the
#: corpus generators only annotate columns with leaf types.
CATEGORY_TYPES: tuple[str, ...] = (
    "thing",
    "agent",
    "person_attribute",
    "organization_attribute",
    "place",
    "temporal",
    "identifier",
    "monetary",
    "measurement",
    "commerce",
    "finance",
    "medical",
    "web",
    "generic",
)

DEFAULT_TYPE_DEFINITIONS: list[dict] = [
    # ----------------------------------------------------------- category nodes
    {"name": "thing", "kind": "any", "description": "Root of the ontology."},
    {"name": "agent", "parent": "thing", "kind": "any"},
    {"name": "person_attribute", "parent": "agent", "kind": "any"},
    {"name": "organization_attribute", "parent": "agent", "kind": "any"},
    {"name": "place", "parent": "thing", "kind": "textual"},
    {"name": "temporal", "parent": "thing", "kind": "temporal"},
    {"name": "identifier", "parent": "thing", "kind": "any"},
    {"name": "monetary", "parent": "thing", "kind": "numeric"},
    {"name": "measurement", "parent": "thing", "kind": "numeric"},
    {"name": "commerce", "parent": "thing", "kind": "any"},
    {"name": "finance", "parent": "thing", "kind": "any"},
    {"name": "medical", "parent": "thing", "kind": "any"},
    {"name": "web", "parent": "thing", "kind": "textual"},
    {"name": "generic", "parent": "thing", "kind": "any"},
    # ------------------------------------------------------------------ person
    {
        "name": "name",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("full name", "person", "person name", "customer name", "employee name", "contact"),
        "description": "Full name of a person.",
    },
    {
        "name": "first_name",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("given name", "fname", "forename"),
    },
    {
        "name": "last_name",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("surname", "family name", "lname"),
    },
    {
        "name": "email",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("email address", "e-mail", "mail", "contact email"),
    },
    {
        "name": "phone_number",
        "parent": "person_attribute",
        "kind": "any",
        "synonyms": ("phone", "telephone", "mobile", "cell phone", "tel", "contact number", "fax"),
    },
    {
        "name": "age",
        "parent": "person_attribute",
        "kind": "numeric",
        "synonyms": ("age years", "years old"),
    },
    {
        "name": "gender",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("sex",),
    },
    {
        "name": "birth_date",
        "parent": "person_attribute",
        "kind": "temporal",
        "synonyms": ("date of birth", "dob", "birthday", "born"),
    },
    {
        "name": "nationality",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("citizenship",),
    },
    {
        "name": "job_title",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("title", "position", "role", "occupation", "designation"),
    },
    {
        "name": "username",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("user name", "login", "user id", "handle", "account name"),
    },
    {
        "name": "ssn",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("social security number", "social security", "national id"),
    },
    {
        "name": "marital_status",
        "parent": "person_attribute",
        "kind": "textual",
        "synonyms": ("civil status",),
    },
    # ------------------------------------------------------------ organization
    {
        "name": "company",
        "parent": "organization_attribute",
        "kind": "textual",
        "synonyms": ("company name", "organization", "organisation", "employer", "vendor", "supplier", "firm", "business"),
    },
    {
        "name": "department",
        "parent": "organization_attribute",
        "kind": "textual",
        "synonyms": ("dept", "division", "team", "business unit"),
    },
    {
        "name": "industry",
        "parent": "organization_attribute",
        "kind": "textual",
        "synonyms": ("sector", "vertical"),
    },
    {
        "name": "salary",
        "parent": "monetary",
        "kind": "numeric",
        "synonyms": ("income", "wage", "pay", "compensation", "base salary", "annual salary"),
    },
    {
        "name": "revenue",
        "parent": "monetary",
        "kind": "numeric",
        "synonyms": ("sales", "turnover", "annual revenue", "total sales", "gross revenue"),
    },
    {
        "name": "employee_count",
        "parent": "organization_attribute",
        "kind": "numeric",
        "synonyms": ("employees", "headcount", "number of employees", "staff count", "num employees"),
    },
    {
        "name": "website",
        "parent": "organization_attribute",
        "kind": "textual",
        "synonyms": ("web site", "homepage", "company website", "site"),
    },
    # ------------------------------------------------------------------- place
    {
        "name": "country",
        "parent": "place",
        "kind": "textual",
        "synonyms": ("nation", "country name", "country of origin"),
    },
    {
        "name": "country_code",
        "parent": "place",
        "kind": "textual",
        "synonyms": ("iso country", "country iso", "cc", "iso code"),
    },
    {
        "name": "city",
        "parent": "place",
        "kind": "textual",
        "synonyms": ("town", "municipality", "city name", "locality"),
    },
    {
        "name": "state",
        "parent": "place",
        "kind": "textual",
        "synonyms": ("province", "region state", "state province", "state code"),
    },
    {
        "name": "address",
        "parent": "place",
        "kind": "textual",
        "synonyms": ("street address", "street", "address line", "mailing address", "location address"),
    },
    {
        "name": "zip_code",
        "parent": "place",
        "kind": "any",
        "synonyms": ("zip", "postal code", "postcode", "zipcode", "post code"),
    },
    {
        "name": "latitude",
        "parent": "place",
        "kind": "numeric",
        "synonyms": ("lat", "geo lat"),
    },
    {
        "name": "longitude",
        "parent": "place",
        "kind": "numeric",
        "synonyms": ("lon", "lng", "long", "geo lon"),
    },
    {
        "name": "continent",
        "parent": "place",
        "kind": "textual",
        "synonyms": (),
    },
    {
        "name": "region",
        "parent": "place",
        "kind": "textual",
        "synonyms": ("area", "zone", "territory", "sales region"),
    },
    # ---------------------------------------------------------------- temporal
    {
        "name": "date",
        "parent": "temporal",
        "kind": "temporal",
        "synonyms": ("day date", "record date", "entry date", "order date", "created date", "start date", "end date"),
    },
    {
        "name": "timestamp",
        "parent": "temporal",
        "kind": "temporal",
        "synonyms": ("datetime", "date time", "created at", "updated at", "event time", "log time"),
    },
    {
        "name": "year",
        "parent": "temporal",
        "kind": "numeric",
        "synonyms": ("fiscal year", "yr", "calendar year"),
    },
    {
        "name": "month",
        "parent": "temporal",
        "kind": "textual",
        "synonyms": ("month name", "mon"),
    },
    {
        "name": "day_of_week",
        "parent": "temporal",
        "kind": "textual",
        "synonyms": ("weekday", "day", "dow"),
    },
    {
        "name": "time",
        "parent": "temporal",
        "kind": "textual",
        "synonyms": ("time of day", "clock time", "hour"),
    },
    {
        "name": "duration",
        "parent": "temporal",
        "kind": "numeric",
        "synonyms": ("elapsed time", "runtime", "length minutes", "time spent", "duration seconds"),
    },
    {
        "name": "quarter",
        "parent": "temporal",
        "kind": "textual",
        "synonyms": ("fiscal quarter", "qtr"),
    },
    # -------------------------------------------------------------- identifiers
    {
        "name": "id",
        "parent": "identifier",
        "kind": "any",
        "synonyms": ("identifier", "record id", "row id", "key", "primary key", "pk"),
    },
    {
        "name": "order_id",
        "parent": "identifier",
        "kind": "any",
        "synonyms": ("order number", "order no", "purchase order", "po number"),
    },
    {
        "name": "customer_id",
        "parent": "identifier",
        "kind": "any",
        "synonyms": ("client id", "cust id", "customer number", "account id"),
    },
    {
        "name": "product_id",
        "parent": "identifier",
        "kind": "any",
        "synonyms": ("item id", "product code", "item number"),
    },
    {
        "name": "sku",
        "parent": "identifier",
        "kind": "textual",
        "synonyms": ("stock keeping unit", "article number"),
    },
    {
        "name": "invoice_number",
        "parent": "identifier",
        "kind": "textual",
        "synonyms": ("invoice no", "invoice id", "bill number"),
    },
    {
        "name": "transaction_id",
        "parent": "identifier",
        "kind": "textual",
        "synonyms": ("transaction number", "txn id", "payment id", "reference number"),
    },
    {
        "name": "uuid",
        "parent": "identifier",
        "kind": "textual",
        "synonyms": ("guid", "unique id"),
    },
    {
        "name": "isbn",
        "parent": "identifier",
        "kind": "textual",
        "synonyms": ("isbn 13", "isbn 10", "book number"),
    },
    {
        "name": "patient_id",
        "parent": "identifier",
        "kind": "any",
        "synonyms": ("patient number", "mrn", "medical record number"),
    },
    {
        "name": "code",
        "parent": "identifier",
        "kind": "textual",
        "synonyms": ("short code", "abbreviation", "ref code", "lookup code"),
    },
    # ---------------------------------------------------------------- commerce
    {
        "name": "product",
        "parent": "commerce",
        "kind": "textual",
        "synonyms": ("product name", "item", "item name", "article", "goods"),
    },
    {
        "name": "category",
        "parent": "commerce",
        "kind": "textual",
        "synonyms": ("product category", "item category", "segment", "group", "class"),
    },
    {
        "name": "brand",
        "parent": "commerce",
        "kind": "textual",
        "synonyms": ("manufacturer", "make", "label brand"),
    },
    {
        "name": "price",
        "parent": "monetary",
        "kind": "numeric",
        "synonyms": ("unit price", "cost", "list price", "retail price", "amount due"),
    },
    {
        "name": "currency",
        "parent": "monetary",
        "kind": "textual",
        "synonyms": ("currency code", "ccy", "currency symbol"),
    },
    {
        "name": "quantity",
        "parent": "commerce",
        "kind": "numeric",
        "synonyms": ("qty", "units", "count items", "number of units", "units sold", "order quantity"),
    },
    {
        "name": "discount",
        "parent": "commerce",
        "kind": "numeric",
        "synonyms": ("discount rate", "discount percent", "rebate", "markdown"),
    },
    {
        "name": "tax_rate",
        "parent": "commerce",
        "kind": "numeric",
        "synonyms": ("vat", "tax percent", "sales tax", "tax"),
    },
    {
        "name": "payment_method",
        "parent": "commerce",
        "kind": "textual",
        "synonyms": ("payment type", "pay method", "tender type"),
    },
    {
        "name": "shipping_method",
        "parent": "commerce",
        "kind": "textual",
        "synonyms": ("ship mode", "delivery method", "carrier"),
    },
    # ----------------------------------------------------------------- finance
    {
        "name": "iban",
        "parent": "finance",
        "kind": "textual",
        "synonyms": ("bank account iban", "international bank account number"),
    },
    {
        "name": "credit_card_number",
        "parent": "finance",
        "kind": "textual",
        "synonyms": ("credit card", "card number", "cc number", "pan"),
    },
    {
        "name": "account_number",
        "parent": "finance",
        "kind": "any",
        "synonyms": ("bank account", "acct number", "account no"),
    },
    {
        "name": "stock_symbol",
        "parent": "finance",
        "kind": "textual",
        "synonyms": ("ticker", "ticker symbol", "stock ticker"),
    },
    {
        "name": "market_cap",
        "parent": "monetary",
        "kind": "numeric",
        "synonyms": ("market capitalization", "market value"),
    },
    {
        "name": "interest_rate",
        "parent": "finance",
        "kind": "numeric",
        "synonyms": ("apr", "rate percent", "coupon rate"),
    },
    {
        "name": "exchange_rate",
        "parent": "finance",
        "kind": "numeric",
        "synonyms": ("fx rate", "conversion rate currency"),
    },
    {
        "name": "profit",
        "parent": "monetary",
        "kind": "numeric",
        "synonyms": ("net income", "net profit", "earnings", "margin amount"),
    },
    {
        "name": "budget",
        "parent": "monetary",
        "kind": "numeric",
        "synonyms": ("allocated budget", "budget amount", "planned spend"),
    },
    # ----------------------------------------------------------------- medical
    {
        "name": "blood_type",
        "parent": "medical",
        "kind": "textual",
        "synonyms": ("blood group",),
    },
    {
        "name": "diagnosis",
        "parent": "medical",
        "kind": "textual",
        "synonyms": ("condition", "icd code", "disease", "medical condition"),
    },
    {
        "name": "medication",
        "parent": "medical",
        "kind": "textual",
        "synonyms": ("drug", "medicine", "prescription", "drug name"),
    },
    {
        "name": "dosage",
        "parent": "medical",
        "kind": "textual",
        "synonyms": ("dose", "dosage mg", "strength"),
    },
    {
        "name": "heart_rate",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("pulse", "bpm", "heart beats per minute"),
    },
    {
        "name": "blood_pressure",
        "parent": "measurement",
        "kind": "textual",
        "synonyms": ("bp", "systolic diastolic"),
    },
    # ------------------------------------------------------------- measurement
    {
        "name": "temperature",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("temp", "temperature celsius", "temperature f", "degrees"),
    },
    {
        "name": "weight",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("mass", "weight kg", "weight lbs", "net weight"),
    },
    {
        "name": "height",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("height cm", "stature", "elevation height"),
    },
    {
        "name": "distance",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("length", "distance km", "mileage", "miles"),
    },
    {
        "name": "area",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("surface area", "square meters", "sq ft", "acreage"),
    },
    {
        "name": "speed",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("velocity", "speed kmh", "mph"),
    },
    {
        "name": "percentage",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("percent", "pct", "share percent", "ratio percent", "growth rate"),
    },
    {
        "name": "population",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("inhabitants", "population count", "number of residents"),
    },
    # --------------------------------------------------------------------- web
    {
        "name": "url",
        "parent": "web",
        "kind": "textual",
        "synonyms": ("link", "web address", "uri", "page url"),
    },
    {
        "name": "ip_address",
        "parent": "web",
        "kind": "textual",
        "synonyms": ("ip", "ipv4", "host ip", "client ip"),
    },
    {
        "name": "domain",
        "parent": "web",
        "kind": "textual",
        "synonyms": ("domain name", "hostname", "host"),
    },
    {
        "name": "user_agent",
        "parent": "web",
        "kind": "textual",
        "synonyms": ("browser", "ua string"),
    },
    {
        "name": "file_name",
        "parent": "web",
        "kind": "textual",
        "synonyms": ("filename", "file", "document name", "attachment"),
    },
    {
        "name": "file_size",
        "parent": "measurement",
        "kind": "numeric",
        "synonyms": ("size bytes", "file size kb", "size mb"),
    },
    {
        "name": "mime_type",
        "parent": "web",
        "kind": "textual",
        "synonyms": ("content type", "media type", "file type"),
    },
    {
        "name": "version",
        "parent": "web",
        "kind": "textual",
        "synonyms": ("version number", "release", "build version", "semver"),
    },
    {
        "name": "language",
        "parent": "generic",
        "kind": "textual",
        "synonyms": ("lang", "language code", "locale"),
    },
    {
        "name": "color",
        "parent": "generic",
        "kind": "textual",
        "synonyms": ("colour", "color name", "hex color"),
    },
    # ----------------------------------------------------------------- generic
    {
        "name": "status",
        "parent": "generic",
        "kind": "textual",
        "synonyms": ("state status", "order status", "current status", "stage"),
    },
    {
        "name": "description",
        "parent": "generic",
        "kind": "textual",
        "synonyms": ("details", "notes", "comment", "remarks", "summary"),
    },
    {
        "name": "rating",
        "parent": "generic",
        "kind": "numeric",
        "synonyms": ("score rating", "stars", "review score", "satisfaction"),
    },
    {
        "name": "score",
        "parent": "generic",
        "kind": "numeric",
        "synonyms": ("points", "test score", "grade points", "result score"),
    },
    {
        "name": "count",
        "parent": "generic",
        "kind": "numeric",
        "synonyms": ("number of", "total count", "frequency", "occurrences", "num"),
    },
    {
        "name": "priority",
        "parent": "generic",
        "kind": "textual",
        "synonyms": ("severity", "urgency", "priority level"),
    },
    {
        "name": "boolean_flag",
        "parent": "generic",
        "kind": "boolean",
        "synonyms": ("flag", "is active", "active", "enabled", "true false", "yes no"),
    },
    {
        "name": "grade",
        "parent": "generic",
        "kind": "textual",
        "synonyms": ("letter grade", "quality grade", "tier"),
    },
]
