"""Prediction data structures shared by every pipeline step and model.

A pipeline step proposes a ranked list of :class:`TypeScore` candidates per
column; the pipeline combines them into a :class:`ColumnPrediction` and wraps
all columns of a table into a :class:`TablePrediction`.  The paper specifies
that the system "yields the top-k semantic types for each column along with
their confidence score", and may abstain (predict ``unknown``) when the final
confidence falls below the precision threshold τ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.ontology import UNKNOWN_TYPE

__all__ = ["TypeScore", "ColumnPrediction", "TablePrediction", "merge_scores"]


@dataclass(frozen=True, order=True)
class TypeScore:
    """A candidate semantic type with a confidence in ``[0, 1]``."""

    confidence: float
    type_name: str

    def __post_init__(self) -> None:
        clipped = min(max(float(self.confidence), 0.0), 1.0)
        object.__setattr__(self, "confidence", clipped)

    def scaled(self, weight: float) -> "TypeScore":
        """The same candidate with its confidence multiplied by *weight*."""
        return TypeScore(confidence=self.confidence * weight, type_name=self.type_name)


def merge_scores(score_lists: Iterable[Sequence[TypeScore]]) -> list[TypeScore]:
    """Merge several candidate lists, keeping the maximum confidence per type."""
    best: dict[str, float] = {}
    for scores in score_lists:
        for score in scores:
            if score.confidence > best.get(score.type_name, -1.0):
                best[score.type_name] = score.confidence
    merged = [TypeScore(confidence=c, type_name=t) for t, c in best.items()]
    merged.sort(key=lambda s: (-s.confidence, s.type_name))
    return merged


@dataclass
class ColumnPrediction:
    """The final (or per-step) prediction for one column."""

    column_index: int
    column_name: str
    scores: list[TypeScore] = field(default_factory=list)
    #: Name of the pipeline step that produced the winning score
    #: ("header_matching", "value_lookup", "table_embedding", "aggregation").
    source_step: str = ""
    #: True when the system declined to predict (confidence below τ or the
    #: model's own unknown/background class won).
    abstained: bool = False
    #: Per-step raw scores kept for aggregation diagnostics and explanations.
    step_scores: dict[str, list[TypeScore]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scores = sorted(self.scores, key=lambda s: (-s.confidence, s.type_name))

    @property
    def predicted_type(self) -> str:
        """The winning type, or :data:`UNKNOWN_TYPE` when abstaining/empty."""
        if self.abstained or not self.scores:
            return UNKNOWN_TYPE
        return self.scores[0].type_name

    @property
    def confidence(self) -> float:
        """Confidence of the winning type (0.0 when abstaining/empty)."""
        if self.abstained or not self.scores:
            return 0.0
        return self.scores[0].confidence

    def top_k(self, k: int = 3) -> list[TypeScore]:
        """The *k* best candidates (fewer if the step produced fewer)."""
        return self.scores[:k]

    def score_for(self, type_name: str) -> float:
        """Confidence assigned to *type_name* (0.0 when absent)."""
        for score in self.scores:
            if score.type_name == type_name:
                return score.confidence
        return 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "column_index": self.column_index,
            "column_name": self.column_name,
            "predicted_type": self.predicted_type,
            "confidence": self.confidence,
            "abstained": self.abstained,
            "source_step": self.source_step,
            "top_k": [
                {"type": s.type_name, "confidence": s.confidence} for s in self.top_k(5)
            ],
        }


@dataclass
class TablePrediction:
    """Predictions for every column of one table."""

    table_name: str
    columns: list[ColumnPrediction] = field(default_factory=list)
    #: Which pipeline steps ran, and for how many columns — the cascade trace.
    step_trace: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds spent per step (filled by the pipeline).
    step_seconds: dict[str, float] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def prediction_for(self, column_name: str) -> ColumnPrediction | None:
        """The prediction for the column named *column_name*, if any."""
        for prediction in self.columns:
            if prediction.column_name == column_name:
                return prediction
        return None

    def predicted_types(self) -> list[str]:
        """Winning types in column order."""
        return [prediction.predicted_type for prediction in self.columns]

    def as_mapping(self) -> Mapping[str, str]:
        """``{column name: predicted type}`` view."""
        return {p.column_name: p.predicted_type for p in self.columns}

    def abstention_rate(self) -> float:
        """Fraction of columns for which the system abstained."""
        if not self.columns:
            return 0.0
        return sum(1 for p in self.columns if p.abstained) / len(self.columns)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "table_name": self.table_name,
            "columns": [p.to_dict() for p in self.columns],
            "step_trace": dict(self.step_trace),
            "step_seconds": dict(self.step_seconds),
        }
