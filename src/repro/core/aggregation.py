"""Aggregation of per-step confidence scores and the precision threshold τ.

Section 4.3 of the paper: "The final prediction for each column is the soft
majority vote based on the concatenated confidence scores from each step. An
optimal aggregation function can be learned as well.  We infer a parameter τ
and threshold predictions that are below τ such that the precision of the
system is high."

This module implements

* the soft majority vote (a per-type weighted average of step confidences),
  a hard majority vote, and a max-confidence merge (the alternatives used in
  the ablation benchmark),
* :class:`Aggregator`, which applies one of those functions with optional
  per-step weights, and
* :func:`calibrate_tau`, which picks τ from scored validation predictions so
  that a target precision is reached with maximal coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.core.prediction import TypeScore, merge_scores

__all__ = [
    "soft_majority_vote",
    "hard_majority_vote",
    "max_confidence_vote",
    "Aggregator",
    "calibrate_tau",
]


def soft_majority_vote(
    step_scores: Mapping[str, Sequence[TypeScore]],
    step_weights: Mapping[str, float] | None = None,
) -> list[TypeScore]:
    """Weighted average of per-step confidences for each candidate type.

    Steps that ran but produced no score for a type contribute a zero for it,
    so a type endorsed by every executed step outranks a type endorsed by a
    single step at equal raw confidence — the "majority" part of the vote.
    """
    executed = {name: scores for name, scores in step_scores.items() if scores is not None}
    if not executed:
        return []
    weights = {name: 1.0 for name in executed}
    if step_weights:
        for name in weights:
            weights[name] = float(step_weights.get(name, 1.0))
    total_weight = sum(weights.values())
    if total_weight <= 0:
        return []

    accumulated: dict[str, float] = {}
    for step_name, scores in executed.items():
        weight = weights[step_name]
        for score in scores:
            accumulated[score.type_name] = accumulated.get(score.type_name, 0.0) + weight * score.confidence
    averaged = [
        TypeScore(confidence=value / total_weight, type_name=type_name)
        for type_name, value in accumulated.items()
    ]
    averaged.sort(key=lambda s: (-s.confidence, s.type_name))
    return averaged


def hard_majority_vote(
    step_scores: Mapping[str, Sequence[TypeScore]],
    step_weights: Mapping[str, float] | None = None,
) -> list[TypeScore]:
    """Each executed step casts one (weighted) vote for its top candidate.

    The returned confidence is the vote share; ties are broken by the mean
    raw confidence of the tied types so the output remains deterministic.
    """
    executed = {name: list(scores) for name, scores in step_scores.items() if scores}
    if not executed:
        return []
    weights = {name: 1.0 for name in executed}
    if step_weights:
        for name in weights:
            weights[name] = float(step_weights.get(name, 1.0))
    total_weight = sum(weights.values())
    votes: dict[str, float] = {}
    raw_confidence: dict[str, list[float]] = {}
    for step_name, scores in executed.items():
        top = max(scores, key=lambda s: s.confidence)
        votes[top.type_name] = votes.get(top.type_name, 0.0) + weights[step_name]
        raw_confidence.setdefault(top.type_name, []).append(top.confidence)
    ranked = [
        TypeScore(confidence=vote / total_weight, type_name=type_name)
        for type_name, vote in votes.items()
    ]
    ranked.sort(
        key=lambda s: (
            -s.confidence,
            -(sum(raw_confidence[s.type_name]) / len(raw_confidence[s.type_name])),
            s.type_name,
        )
    )
    return ranked


def max_confidence_vote(
    step_scores: Mapping[str, Sequence[TypeScore]],
    step_weights: Mapping[str, float] | None = None,
) -> list[TypeScore]:
    """Keep, per type, the single highest confidence any step produced."""
    del step_weights  # the max merge is weight-free by definition
    return merge_scores([scores for scores in step_scores.values() if scores])


_METHODS = {
    "soft_majority": soft_majority_vote,
    "hard_majority": hard_majority_vote,
    "max": max_confidence_vote,
}


@dataclass
class Aggregator:
    """Combines per-step candidate lists into one final ranking.

    Parameters
    ----------
    method:
        ``"soft_majority"`` (the paper's default), ``"hard_majority"``, or
        ``"max"``.
    step_weights:
        Optional per-step weights (e.g. to trust the learned model more than
        the regex lookup); missing steps default to ``1.0``.
    """

    method: str = "soft_majority"
    step_weights: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise ConfigurationError(
                f"unknown aggregation method {self.method!r}; expected one of {sorted(_METHODS)}"
            )

    def combine(self, step_scores: Mapping[str, Sequence[TypeScore]]) -> list[TypeScore]:
        """Aggregate the per-step scores of one column."""
        return _METHODS[self.method](step_scores, self.step_weights)


def calibrate_tau(
    scored_predictions: Iterable[tuple[float, bool]],
    target_precision: float = 0.95,
    grid_size: int = 101,
) -> float:
    """Choose the precision threshold τ from validation predictions.

    Parameters
    ----------
    scored_predictions:
        Pairs ``(confidence, is_correct)`` for validation columns where the
        system produced a prediction.
    target_precision:
        The precision the deployment wants to guarantee; τ is the smallest
        threshold on the grid whose retained predictions reach it (maximising
        coverage subject to the precision constraint).  When no threshold
        reaches the target, the threshold with the best precision is returned.

    Returns
    -------
    float
        The calibrated τ in ``[0, 1]``.
    """
    if not 0.0 < target_precision <= 1.0:
        raise ConfigurationError("target_precision must be in (0, 1]")
    pairs = [(float(confidence), bool(correct)) for confidence, correct in scored_predictions]
    if not pairs:
        return 0.0

    best_tau = 1.0
    best_precision = -1.0
    for index in range(grid_size):
        tau = index / (grid_size - 1)
        retained = [correct for confidence, correct in pairs if confidence >= tau]
        if not retained:
            continue
        precision = sum(retained) / len(retained)
        if precision >= target_precision:
            return tau
        if precision > best_precision:
            best_precision = precision
            best_tau = tau
    return best_tau
