"""Core substrate: tables, data types, the semantic type ontology, and the
SigmaTyper prediction pipeline."""

from repro.core.datatypes import DataType, infer_column_type, infer_value_type
from repro.core.errors import (
    ColumnNotFoundError,
    ConfigurationError,
    CorpusError,
    FeedbackError,
    LabelingFunctionError,
    ModelNotTrainedError,
    OntologyError,
    PipelineError,
    ReproError,
    SerializationError,
    TableError,
)
from repro.core.ontology import (
    UNKNOWN_TYPE,
    DataKind,
    SemanticType,
    TypeOntology,
    build_default_ontology,
)
from repro.core.table import Column, Table

__all__ = [
    "DataType",
    "infer_column_type",
    "infer_value_type",
    "Column",
    "Table",
    "DataKind",
    "SemanticType",
    "TypeOntology",
    "build_default_ontology",
    "UNKNOWN_TYPE",
    "ReproError",
    "ConfigurationError",
    "OntologyError",
    "TableError",
    "ColumnNotFoundError",
    "PipelineError",
    "ModelNotTrainedError",
    "FeedbackError",
    "LabelingFunctionError",
    "CorpusError",
    "SerializationError",
]
