"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed or used with invalid settings."""


class OntologyError(ReproError):
    """Raised for unknown semantic types or malformed ontology definitions."""


class TableError(ReproError):
    """Raised for malformed tables (ragged rows, duplicate columns, ...)."""


class ColumnNotFoundError(TableError):
    """Raised when a column is looked up by a name that does not exist."""

    def __init__(self, column_name: str, available: list[str] | None = None):
        self.column_name = column_name
        self.available = list(available or [])
        message = f"column {column_name!r} not found"
        if self.available:
            message += f" (available: {', '.join(self.available)})"
        super().__init__(message)


class PipelineError(ReproError):
    """Raised when the prediction pipeline is misconfigured or fails."""


class ModelNotTrainedError(ReproError):
    """Raised when inference is requested from a model that was never fit."""


class FeedbackError(ReproError):
    """Raised for invalid user-feedback events in the DPBD subsystem."""


class LabelingFunctionError(ReproError):
    """Raised when a labeling function cannot be constructed or applied."""


class CorpusError(ReproError):
    """Raised by the synthetic corpus generators for invalid parameters."""


class SerializationError(ReproError):
    """Raised when tables or models cannot be serialized or deserialized."""


class ServingError(ReproError):
    """Raised by the serving layer (backends, profile store, async service)."""


class DeadlineExceededError(ServingError):
    """Raised when a request's latency budget expires before it completes.

    The request was *accepted* but could not be served in time: it either
    aged out while queued (the worker discards it without running the
    cascade) or the client stopped waiting.  Distinct from
    :class:`OverloadedError`, which refuses work up front.
    """


class OverloadedError(ServingError):
    """Raised when admission control sheds a request instead of queueing it.

    Shedding is an explicit, immediate refusal — the alternative is an
    unbounded queue whose every occupant eventually misses its deadline.
    :attr:`retry_after` tells the client how many seconds to back off before
    retrying (mapped to HTTP 429 + ``Retry-After`` by the front end).
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        self.retry_after = max(0.0, float(retry_after))
        super().__init__(message)


class ShutdownError(ServingError):
    """Raised for requests hard-cancelled by a shutdown drain deadline.

    A bounded drain (``shutdown(drain_timeout=...)``) that expires fails
    every still-pending request with this error instead of leaving its
    caller awaiting a future that will never resolve.
    """
