"""Relational table substrate used throughout SigmaTyper.

The paper operates on enterprise tables exported from databases and data
warehouses.  This module provides the in-memory representation of those
tables: :class:`Column` (a header plus a sequence of raw cell values and an
optional ground-truth semantic annotation) and :class:`Table` (an ordered
collection of columns with rectangular shape).

Values are stored as raw strings (or ``None``), exactly as they appear in a
CSV export — type interpretation is performed lazily by
:mod:`repro.core.datatypes` and cached on the column.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core import colblock
from repro.core.datatypes import DataType, coerce_numeric, infer_column_type, is_null
from repro.core.errors import ColumnNotFoundError, TableError

__all__ = [
    "Column",
    "Table",
    "get_active_profile_store",
    "set_active_profile_store",
]

#: Process-wide shared store for memoized derived column state.  ``None`` (the
#: default) keeps every cache private to its :class:`Column` instance; a
#: long-running service installs a
#: :class:`~repro.serving.profile_store.ProfileStore` (or a
#: :class:`~repro.serving.profile_store.PersistentProfileStore`, whose disk
#: tier survives restarts) so short-lived tables with recurring content reuse
#: warm entries.  The store only needs two methods:
#: ``namespace(content_hash) -> dict`` and ``invalidate(content_hash)``.
_ACTIVE_PROFILE_STORE = None


def set_active_profile_store(store):
    """Install *store* as the shared derived-state store; returns the previous one."""
    global _ACTIVE_PROFILE_STORE
    previous = _ACTIVE_PROFILE_STORE
    _ACTIVE_PROFILE_STORE = store
    return previous


def get_active_profile_store():
    """The currently installed shared profile store (``None`` when unset)."""
    return _ACTIVE_PROFILE_STORE


@dataclass
class Column:
    """A single table column: header, raw values, and optional annotation.

    Parameters
    ----------
    name:
        The column header as it appears in the source table.  May be empty
        (headerless exports are common in practice).
    values:
        Raw cell values.  ``None`` and recognised null tokens (``"N/A"``,
        ``""``, ...) are treated as missing.
    semantic_type:
        Optional *ground-truth* semantic type used by the corpus generators,
        the evaluation harness, and tests.  Production inputs leave it
        ``None``; predictions never read it.
    metadata:
        Free-form provenance information (source table, generator parameters,
        customer id, ...).
    """

    name: str
    values: list[object]
    semantic_type: str | None = None
    metadata: dict[str, object] = field(default_factory=dict)
    _data_type: DataType | None = field(default=None, repr=False, compare=False)
    #: Memoized derived state (value views, samples, profiles).  Keyed by a
    #: descriptive tuple; cleared as one unit by :meth:`invalidate_cache`.
    #: The cached lists are shared with callers and must not be mutated.
    #: When a shared profile store is active, the namespace lives there
    #: (keyed by :meth:`content_hash`) instead of on the column.
    _derived: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _content_hash: str | None = field(default=None, init=False, repr=False, compare=False)
    #: Columnar kernel view over the block layout (``repro.core.colblock``).
    #: ``None`` until resolved; ``_view_checked`` records that resolution ran
    #: so columns without a usable view don't retry on every access.
    _block_view: object = field(default=None, init=False, repr=False, compare=False)
    _view_checked: bool = field(default=False, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.values = list(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[object]:
        return iter(self.values)

    def _kernel_view(self):
        """The column's block-layout kernel view, or ``None``.

        Views arrive one of two ways: attached explicitly by
        :meth:`Table.to_block` / :meth:`from_view`, or duck-typed off the
        values sequence (``values.kernel_view()`` — the shm transport's
        ``BlockValues`` provides it, so multiprocess workers profile straight
        off the received segment).  Resolution runs once per column; a
        ``None`` result is remembered.
        """
        if not colblock.kernels_enabled():
            return None
        if self._block_view is None and not self._view_checked:
            self._view_checked = True
            maker = getattr(self.values, "kernel_view", None)
            if maker is not None:
                self._block_view = maker()
        return self._block_view

    def __getstate__(self) -> dict:
        # Kernel views are derived numpy state: dropping them keeps pickles
        # (and the transport's bytes accounting) exactly as small as before,
        # and the receiving process re-resolves views on demand.
        state = dict(self.__dict__)
        state["_block_view"] = None
        state["_view_checked"] = False
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def data_type(self) -> DataType:
        """Structural type of the column, inferred once and cached."""
        if self._data_type is None:
            view = self._kernel_view()
            if view is not None:
                self._data_type = colblock.kernel_data_type(view)
            if self._data_type is None:
                self._data_type = infer_column_type(self.values)
        return self._data_type

    def content_hash(self) -> str:
        """A stable digest of the column's identity (header plus raw values).

        Two columns with the same name and cell-for-cell equal values share
        the hash, which is what lets a shared profile store hand warm derived
        state to short-lived :class:`Column` instances wrapping recurring
        content.  The digest is process-independent (``blake2b``, not the
        salted builtin ``hash``) and distinguishes value types (``1`` vs
        ``"1"``) — process-independence is what allows a
        :class:`~repro.serving.profile_store.PersistentProfileStore` to key
        its on-disk records by this hash and serve them to a *different*
        process after a restart.  Memoized until :meth:`invalidate_cache`.
        """
        if self._content_hash is None:
            # Every field is framed with a length prefix, which makes the
            # encoding injective: no choice of name/values can reproduce
            # another column's byte stream (a bare delimiter could, since cell
            # values may contain any character).
            hasher = hashlib.blake2b(digest_size=16)

            def frame(data: bytes) -> None:
                hasher.update(len(data).to_bytes(8, "little"))
                hasher.update(data)

            frame(self.name.encode("utf-8", "surrogatepass"))
            hasher.update(len(self.values).to_bytes(8, "little"))
            for value in self.values:
                if value is None:
                    hasher.update(b"\x00")
                    continue
                hasher.update(b"\x01")
                frame(type(value).__name__.encode("utf-8", "replace"))
                frame(str(value).encode("utf-8", "surrogatepass"))
            self._content_hash = hasher.hexdigest()
        return self._content_hash

    def invalidate_cache(self) -> None:
        """Drop cached derived state after the values were mutated.

        Clears the column-private memo, the inferred structural type, and the
        memoized content hash, and — when a shared profile store is active —
        drops the store's entry for the *old* hash in every tier (a persistent
        store tombstones the on-disk record, so a stale namespace can never be
        recovered after a restart either).  Call this after mutating
        ``values`` in place; the derived views are otherwise assumed
        immutable.
        """
        self._data_type = None
        self._derived.clear()
        self._block_view = None
        self._view_checked = False
        store = _ACTIVE_PROFILE_STORE
        if store is not None and self._content_hash is not None:
            store.invalidate(self._content_hash)
        self._content_hash = None

    def _namespace(self) -> dict:
        """The dict holding this column's memoized derived state.

        Private per column by default; served by the active profile store
        (shared across all columns with equal content) when one is installed.
        """
        store = _ACTIVE_PROFILE_STORE
        if store is None:
            return self._derived
        return store.namespace(self.content_hash())

    def _memo(self, key: object, compute: Callable[[], object]) -> object:
        """Return the cached value for *key*, computing it on first access."""
        namespace = self._namespace()
        try:
            return namespace[key]
        except KeyError:
            value = namespace[key] = compute()
            return value

    def non_null_values(self) -> list[object]:
        """Values that are not recognised as missing (cached; do not mutate)."""

        def compute() -> list[object]:
            view = self._kernel_view()
            if view is not None:
                indices = colblock.kernel_non_null_indices(view)
                if indices is not None:
                    values = self.values
                    return [values[i] for i in indices]
            return [value for value in self.values if not is_null(value)]

        return self._memo("non_null", compute)

    def null_fraction(self) -> float:
        """Fraction of cells that are missing; 0.0 for an empty column."""
        if not self.values:
            return 0.0
        view = self._kernel_view()
        if view is not None:
            # Memoized: callers probe this per neighbor (table context), so
            # the kernel op must not re-run — and re-count — on every call.
            def compute() -> float | None:
                count = colblock.kernel_non_null_count(view)
                if count is None:
                    return None
                return (len(self.values) - count) / len(self.values)

            fraction = self._memo("kernel_null_fraction", compute)
            if fraction is not None:
                return fraction
        nulls = len(self.values) - len(self.non_null_values())
        return nulls / len(self.values)

    def text_values(self) -> list[str]:
        """Non-null values rendered as stripped strings (cached; do not mutate)."""

        def compute() -> list[str]:
            view = self._kernel_view()
            if view is not None:
                texts = colblock.kernel_text_values(view)
                if texts is not None:
                    return texts
            return [str(value).strip() for value in self.non_null_values()]

        return self._memo("text", compute)

    def numeric_values(self) -> list[float]:
        """Non-null values parsed as numbers (non-numeric cells dropped)."""

        def compute() -> list[float]:
            view = self._kernel_view()
            if view is not None:
                numbers = colblock.kernel_numeric_values(view)
                if numbers is not None:
                    return numbers
            return coerce_numeric(self.non_null_values())

        return self._memo("numeric", compute)

    def unique_values(self) -> list[str]:
        """Distinct non-null string values, in first-seen order."""
        return list(self.value_counts())

    def unique_fraction(self) -> float:
        """Ratio of distinct values to non-null values (0.0 when empty)."""
        view = self._kernel_view()
        if view is not None:
            fraction = self._memo(
                "kernel_unique_fraction",
                lambda: colblock.kernel_unique_fraction(view),
            )
            if fraction is not None:
                return fraction
        non_null = self.text_values()
        if not non_null:
            return 0.0
        return len(self.value_counts()) / len(non_null)

    def value_counts(self) -> dict[str, int]:
        """Occurrence counts of the non-null string values (cached; do not mutate)."""

        def compute() -> dict[str, int]:
            view = self._kernel_view()
            if view is not None:
                counts = colblock.kernel_value_counts(view)
                if counts is not None:
                    return counts
            counts = {}
            for value in self.text_values():
                counts[value] = counts.get(value, 0) + 1
            return counts

        return self._memo("value_counts", compute)

    def most_frequent_values(self, k: int = 5) -> list[str]:
        """The *k* most frequent values, ties broken by first appearance."""
        counts = self.value_counts()
        order = {value: index for index, value in enumerate(counts)}
        ranked = sorted(counts, key=lambda v: (-counts[v], order[v]))
        return ranked[:k]

    def sample(self, k: int, seed: int | None = None) -> list[object]:
        """A reproducible sample of at most *k* non-null values.

        Seeded samples are deterministic and therefore memoized per
        ``(k, seed)``; unseeded calls stay freshly random on every call.
        """

        def compute() -> list[object]:
            view = self._kernel_view()
            if view is not None:
                indices = colblock.kernel_sample_indices(view, k, seed)
                if indices is not None:
                    values = self.values
                    return [values[i] for i in indices]
            non_null = self.non_null_values()
            if len(non_null) <= k:
                return list(non_null)
            rng = random.Random(seed)
            return rng.sample(non_null, k)

        if seed is None:
            return compute()
        return self._memo(("sample", k, seed), compute)

    def head(self, n: int = 5) -> list[object]:
        """The first *n* raw values."""
        return self.values[:n]

    def rename(self, new_name: str) -> "Column":
        """Return a copy of this column with a different header."""
        return Column(
            name=new_name,
            values=list(self.values),
            semantic_type=self.semantic_type,
            metadata=dict(self.metadata),
        )

    def with_values(self, values: Sequence[object]) -> "Column":
        """Return a copy of this column with replaced values."""
        return Column(
            name=self.name,
            values=list(values),
            semantic_type=self.semantic_type,
            metadata=dict(self.metadata),
        )

    def copy(self) -> "Column":
        """Deep-enough copy (values list and metadata dict are duplicated)."""
        return Column(
            name=self.name,
            values=list(self.values),
            semantic_type=self.semantic_type,
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "values": list(self.values),
            "semantic_type": self.semantic_type,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Column":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload.get("name", "")),
            values=list(payload.get("values", [])),  # type: ignore[arg-type]
            semantic_type=payload.get("semantic_type"),  # type: ignore[arg-type]
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )

    @classmethod
    def from_view(
        cls,
        name: str,
        values: Sequence[object],
        semantic_type: str | None = None,
        metadata: dict[str, object] | None = None,
        block_view: object | None = None,
    ) -> "Column":
        """Build a column over *values* without copying them into a list.

        The zero-copy seam used by :meth:`Table.from_block`: *values* is kept
        as-is (typically a lazy
        :class:`~repro.serving.transport.BlockValues` view decoding cells out
        of a shared-memory segment on access), bypassing the ``list(...)``
        materialization of the normal constructor.  The view must be an
        immutable sequence — in-place mutation plus
        :meth:`invalidate_cache` is only supported for list-backed columns.
        """
        column = object.__new__(cls)
        column.name = name
        column.values = values  # type: ignore[assignment] - deliberate view
        column.semantic_type = semantic_type
        column.metadata = metadata if metadata is not None else {}
        column._data_type = None
        column._derived = {}
        column._content_hash = None
        # An explicit kernel view wins; otherwise resolution stays pending so
        # `_kernel_view` can duck-type one off the values sequence.
        column._block_view = block_view
        column._view_checked = block_view is not None
        return column


class Table:
    """An ordered, rectangular collection of named columns.

    Tables are the unit of work for the whole system: the corpus generators
    emit them, the pipeline annotates them, and the DPBD subsystem derives
    labeling functions from them.
    """

    def __init__(
        self,
        columns: Sequence[Column],
        name: str = "",
        metadata: Mapping[str, object] | None = None,
    ) -> None:
        columns = list(columns)
        if columns:
            lengths = {len(column) for column in columns}
            if len(lengths) > 1:
                raise TableError(
                    f"table {name!r} has ragged columns with lengths {sorted(lengths)}"
                )
        self.name = name
        self.columns: list[Column] = columns
        self.metadata: dict[str, object] = dict(metadata or {})
        # Cached result of to_block(), keyed by the identity of the column
        # list it was built from (see to_block).
        self._block_twin: "Table | None" = None
        self._block_twin_key: tuple | None = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_block_twin"] = None
        state["_block_twin_key"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------ shape
    @property
    def num_rows(self) -> int:
        """Number of rows (0 for a table with no columns)."""
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self.columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_rows, num_columns)``."""
        return (self.num_rows, self.num_columns)

    @property
    def column_names(self) -> list[str]:
        """Headers in column order."""
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, column_name: str) -> bool:
        return any(column.name == column_name for column in self.columns)

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, shape={self.shape})"

    # ----------------------------------------------------------------- access
    def column(self, key: int | str) -> Column:
        """Return a column by positional index or by header name."""
        if isinstance(key, int):
            try:
                return self.columns[key]
            except IndexError as exc:
                raise ColumnNotFoundError(str(key), self.column_names) from exc
        for column in self.columns:
            if column.name == key:
                return column
        raise ColumnNotFoundError(key, self.column_names)

    def __getitem__(self, key: int | str) -> Column:
        return self.column(key)

    def column_index(self, column_name: str) -> int:
        """Positional index of the column with header *column_name*."""
        for index, column in enumerate(self.columns):
            if column.name == column_name:
                return index
        raise ColumnNotFoundError(column_name, self.column_names)

    def row(self, index: int) -> list[object]:
        """The values of row *index* across all columns."""
        if not 0 <= index < self.num_rows:
            raise TableError(f"row index {index} out of range for {self.num_rows} rows")
        return [column.values[index] for column in self.columns]

    def rows(self) -> Iterator[list[object]]:
        """Iterate over rows as lists of cell values."""
        for index in range(self.num_rows):
            yield self.row(index)

    def semantic_types(self) -> list[str | None]:
        """Ground-truth annotations per column (``None`` when unlabelled)."""
        return [column.semantic_type for column in self.columns]

    # ------------------------------------------------------------- mutation-ish
    def add_column(self, column: Column) -> None:
        """Append a column, enforcing the rectangular-shape invariant."""
        if self.columns and len(column) != self.num_rows:
            raise TableError(
                f"cannot add column {column.name!r} with {len(column)} values "
                f"to a table with {self.num_rows} rows"
            )
        self.columns.append(column)
        self._block_twin = None
        self._block_twin_key = None

    def drop_column(self, key: int | str) -> "Table":
        """Return a new table without the addressed column."""
        target = self.column(key)
        remaining = [c for c in self.columns if c is not target]
        return Table([c.copy() for c in remaining], name=self.name, metadata=self.metadata)

    def select_columns(self, keys: Iterable[int | str]) -> "Table":
        """Return a new table restricted to the addressed columns (in order)."""
        selected = [self.column(key).copy() for key in keys]
        return Table(selected, name=self.name, metadata=self.metadata)

    def head(self, n: int = 5) -> "Table":
        """Return a new table with only the first *n* rows."""
        clipped = [column.with_values(column.values[:n]) for column in self.columns]
        return Table(clipped, name=self.name, metadata=self.metadata)

    def sample_rows(self, k: int, seed: int | None = None) -> "Table":
        """Return a new table with a reproducible sample of at most *k* rows."""
        if self.num_rows <= k:
            return self.copy()
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(self.num_rows), k))
        sampled = [
            column.with_values([column.values[i] for i in indices])
            for column in self.columns
        ]
        return Table(sampled, name=self.name, metadata=self.metadata)

    def map_columns(self, transform: Callable[[Column], Column]) -> "Table":
        """Return a new table with *transform* applied to every column."""
        return Table(
            [transform(column) for column in self.columns],
            name=self.name,
            metadata=self.metadata,
        )

    def copy(self) -> "Table":
        """Deep-enough copy of the table."""
        return Table(
            [column.copy() for column in self.columns],
            name=self.name,
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_rows(
        cls,
        header: Sequence[str],
        rows: Iterable[Sequence[object]],
        name: str = "",
        semantic_types: Sequence[str | None] | None = None,
    ) -> "Table":
        """Build a table from a header and an iterable of row tuples."""
        header = list(header)
        materialised = [list(row) for row in rows]
        for row in materialised:
            if len(row) != len(header):
                raise TableError(
                    f"row with {len(row)} cells does not match header of {len(header)}"
                )
        columns = []
        for index, column_name in enumerate(header):
            values = [row[index] for row in materialised]
            annotation = None
            if semantic_types is not None and index < len(semantic_types):
                annotation = semantic_types[index]
            columns.append(Column(column_name, values, semantic_type=annotation))
        return cls(columns, name=name)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Table":
        """Inverse of :meth:`to_dict`."""
        columns = [Column.from_dict(c) for c in payload.get("columns", [])]  # type: ignore[union-attr]
        return cls(
            columns,
            name=str(payload.get("name", "")),
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )

    @classmethod
    def from_block(cls, block, table_index: int) -> "Table":
        """Zero-copy view of one table inside a decoded column block.

        *block* is duck-typed (so the core never imports the serving layer):
        it must expose ``table_name(i)``, ``table_metadata(i)``, and
        ``table_columns(i)`` — the latter yielding
        ``(name, semantic_type, metadata, values)`` per column, where
        ``values`` is a lazy sequence over the block's buffer.  The shm shard
        transport (:class:`repro.serving.transport.ColumnBlock`) is the
        canonical implementation; workers rebuild their shard's tables this
        way without unpickling a single cell.  The returned table is
        read-only in the same sense as the view columns it wraps, and must
        not outlive the block (``block.close()`` invalidates the views).
        """
        columns = [
            Column.from_view(name, values, semantic_type=semantic_type, metadata=metadata)
            for name, semantic_type, metadata, values in block.table_columns(table_index)
        ]
        return cls(
            columns,
            name=block.table_name(table_index),
            metadata=block.table_metadata(table_index),
        )

    def to_block(self) -> "Table":
        """Columnar twin of this table: same cell values, kernel views attached.

        The serial-path adapter of the block-native kernels: each column's
        values are encoded once into the typed tag/offset/blob layout
        (:func:`repro.core.colblock.view_from_values`) and a new
        :class:`Column` is built over the *same* values list with the view
        attached, so profiling and featurization run vectorized while every
        per-value fallback still sees the original Python objects.  Columns
        whose cells fall outside the block vocabulary keep the Python path
        (counted in ``kernel_stats()["encode_fallbacks"]``).

        The twin is cached per column-list identity; :meth:`add_column`
        invalidates it.  Twins share values and metadata with the source —
        mutate-and-invalidate workflows should drop the twin and re-convert.
        When kernels are disabled the table itself is returned unchanged.
        """
        if not colblock.kernels_enabled():
            return self
        # Tables whose columns already resolve views (e.g. built by
        # :meth:`from_block` over a transport segment) are block-native
        # as-is — re-encoding them would only copy buffers.
        resolved = [column._kernel_view() for column in self.columns]
        if all(view is not None for view in resolved):
            return self
        key = tuple(id(column) for column in self.columns)
        if self._block_twin is not None and self._block_twin_key == key:
            return self._block_twin
        columns = []
        for column, existing in zip(self.columns, resolved):
            view = existing if existing is not None else colblock.view_from_values(column.values)
            if view is None:
                colblock.record_encode_fallback()
            columns.append(
                Column.from_view(
                    column.name,
                    column.values,
                    semantic_type=column.semantic_type,
                    metadata=column.metadata,
                    block_view=view,
                )
            )
        twin = Table(columns, name=self.name, metadata=self.metadata)
        self._block_twin = twin
        self._block_twin_key = key
        return twin

    @classmethod
    def from_columns_dict(
        cls,
        data: Mapping[str, Sequence[object]],
        name: str = "",
        semantic_types: Mapping[str, str] | None = None,
    ) -> "Table":
        """Build a table from ``{header: values}`` (insertion order preserved)."""
        semantic_types = dict(semantic_types or {})
        columns = [
            Column(header, list(values), semantic_type=semantic_types.get(header))
            for header, values in data.items()
        ]
        return cls(columns, name=name)

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "metadata": dict(self.metadata),
            "columns": [column.to_dict() for column in self.columns],
        }

    def to_rows(self) -> tuple[list[str], list[list[object]]]:
        """Return ``(header, rows)`` suitable for CSV writing."""
        return self.column_names, [self.row(i) for i in range(self.num_rows)]

    def preview(self, n: int = 5) -> str:
        """A small fixed-width textual rendering for logs and examples."""
        header = self.column_names
        rows = [self.row(i) for i in range(min(n, self.num_rows))]
        rendered_rows = [[("" if is_null(cell) else str(cell)) for cell in row] for row in rows]
        widths = [
            max(len(str(header[i])), *(len(row[i]) for row in rendered_rows), 1)
            if rendered_rows
            else max(len(str(header[i])), 1)
            for i in range(len(header))
        ]
        lines = [
            " | ".join(str(h).ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rendered_rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)
