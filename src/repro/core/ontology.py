"""Semantic type ontology.

SigmaTyper predicts *semantic column types* drawn from an ontology.  The
paper uses the DBpedia ontology (as annotated on GitTables) because of its
broad coverage of enterprise, science, and medical domains.  DBpedia itself
is not available offline, so this module implements an equivalent structure:
a directed acyclic hierarchy of :class:`SemanticType` nodes, each with a
canonical name, a human label, a set of synonyms (used by the header-matching
step), an expected :class:`DataKind`, and an optional parent.

The default ontology — roughly ninety types spanning people, organizations,
locations, commerce, finance, medicine, the web, and generic database
columns — is defined in :mod:`repro.core.ontology_data` and instantiated via
:func:`build_default_ontology`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.errors import OntologyError

__all__ = [
    "DataKind",
    "SemanticType",
    "TypeOntology",
    "build_default_ontology",
    "UNKNOWN_TYPE",
]

#: Reserved semantic type name used for out-of-distribution / abstain outputs.
UNKNOWN_TYPE = "unknown"


class DataKind(str, Enum):
    """Coarse expectation about the structural type of a semantic type."""

    NUMERIC = "numeric"
    TEXTUAL = "textual"
    TEMPORAL = "temporal"
    BOOLEAN = "boolean"
    ANY = "any"


def normalize_type_name(name: str) -> str:
    """Canonicalise a type or synonym string for lookup.

    Lower-cases, strips, and collapses separators so that ``"Zip Code"``,
    ``"zip-code"`` and ``"zip_code"`` all resolve to the same key.
    """
    cleaned = name.strip().lower()
    for separator in (" ", "-", "/", "."):
        cleaned = cleaned.replace(separator, "_")
    while "__" in cleaned:
        cleaned = cleaned.replace("__", "_")
    return cleaned.strip("_")


@dataclass(frozen=True)
class SemanticType:
    """A single node in the semantic type ontology."""

    name: str
    label: str = ""
    parent: str | None = None
    kind: DataKind = DataKind.ANY
    synonyms: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise OntologyError("semantic type name must be non-empty")
        object.__setattr__(self, "name", normalize_type_name(self.name))
        if not self.label:
            object.__setattr__(self, "label", self.name.replace("_", " "))
        if not isinstance(self.kind, DataKind):
            try:
                object.__setattr__(self, "kind", DataKind(str(self.kind)))
            except ValueError as exc:
                raise OntologyError(f"unknown data kind {self.kind!r} for {self.name!r}") from exc

    def all_names(self) -> tuple[str, ...]:
        """Canonical name, label and synonyms (normalised, de-duplicated)."""
        names: dict[str, None] = {}
        for candidate in (self.name, self.label, *self.synonyms):
            names.setdefault(normalize_type_name(candidate), None)
        return tuple(names)


class TypeOntology:
    """A registry of :class:`SemanticType` nodes with hierarchy queries.

    The ontology is the shared vocabulary of the whole system: the corpus
    generators annotate columns with its names, the header matcher compares
    column headers to its labels and synonyms, and the classifier's output
    space is its set of names (plus :data:`UNKNOWN_TYPE`).
    """

    def __init__(self, types: Iterable[SemanticType] = ()) -> None:
        self._types: dict[str, SemanticType] = {}
        self._synonym_index: dict[str, str] = {}
        self._children: dict[str, list[str]] = {}
        for semantic_type in types:
            self.register(semantic_type)

    # ------------------------------------------------------------ registration
    def register(self, semantic_type: SemanticType) -> None:
        """Add a type; parents must be registered before their children."""
        if semantic_type.name in self._types:
            raise OntologyError(f"semantic type {semantic_type.name!r} already registered")
        if semantic_type.parent is not None:
            parent = normalize_type_name(semantic_type.parent)
            if parent not in self._types:
                raise OntologyError(
                    f"parent {parent!r} of {semantic_type.name!r} is not registered"
                )
            self._children.setdefault(parent, []).append(semantic_type.name)
        self._types[semantic_type.name] = semantic_type
        for alias in semantic_type.all_names():
            self._synonym_index.setdefault(alias, semantic_type.name)

    def add_synonym(self, type_name: str, synonym: str) -> None:
        """Attach an extra synonym to an existing type (user customisation)."""
        canonical = self.resolve(type_name)
        if canonical is None:
            raise OntologyError(f"unknown semantic type {type_name!r}")
        self._synonym_index.setdefault(normalize_type_name(synonym), canonical)

    # ----------------------------------------------------------------- lookups
    def __contains__(self, name: str) -> bool:
        return normalize_type_name(name) in self._types

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[SemanticType]:
        return iter(self._types.values())

    @property
    def type_names(self) -> list[str]:
        """Canonical names in registration order."""
        return list(self._types)

    def get(self, name: str) -> SemanticType:
        """Return the type registered under *name* (canonical only)."""
        key = normalize_type_name(name)
        try:
            return self._types[key]
        except KeyError as exc:
            raise OntologyError(f"unknown semantic type {name!r}") from exc

    def resolve(self, name_or_synonym: str) -> str | None:
        """Map a name, label, or synonym to a canonical type name."""
        return self._synonym_index.get(normalize_type_name(name_or_synonym))

    def synonym_index(self) -> Mapping[str, str]:
        """Read-only view of the alias → canonical-name mapping."""
        return dict(self._synonym_index)

    def types_of_kind(self, kind: DataKind) -> list[SemanticType]:
        """All types whose expected data kind is *kind*."""
        return [t for t in self._types.values() if t.kind is kind]

    # --------------------------------------------------------------- hierarchy
    def parent(self, name: str) -> SemanticType | None:
        """The parent type, or ``None`` for roots."""
        semantic_type = self.get(name)
        if semantic_type.parent is None:
            return None
        return self.get(semantic_type.parent)

    def children(self, name: str) -> list[SemanticType]:
        """Direct children of *name*."""
        canonical = self.get(name).name
        return [self.get(child) for child in self._children.get(canonical, [])]

    def ancestors(self, name: str) -> list[SemanticType]:
        """Ancestors from the immediate parent up to the root."""
        chain = []
        current = self.parent(name)
        while current is not None:
            chain.append(current)
            current = self.parent(current.name)
        return chain

    def descendants(self, name: str) -> list[SemanticType]:
        """All transitive children of *name* (depth-first order)."""
        result: list[SemanticType] = []
        stack = [self.get(name).name]
        while stack:
            current = stack.pop()
            for child in self._children.get(current, []):
                result.append(self.get(child))
                stack.append(child)
        return result

    def roots(self) -> list[SemanticType]:
        """Types without a parent."""
        return [t for t in self._types.values() if t.parent is None]

    def is_a(self, name: str, ancestor: str) -> bool:
        """Whether *name* equals or descends from *ancestor*."""
        target = self.get(ancestor).name
        current: str | None = self.get(name).name
        while current is not None:
            if current == target:
                return True
            parent = self._types[current].parent
            current = normalize_type_name(parent) if parent else None
        return False

    def depth(self, name: str) -> int:
        """Number of edges from *name* up to its root."""
        return len(self.ancestors(name))

    def distance(self, first: str, second: str) -> int:
        """Length of the path between two types through their common ancestor.

        Types in disjoint subtrees get the sum of their depths plus two,
        which keeps the measure finite and monotone in dissimilarity.
        """
        first_chain = [self.get(first).name] + [t.name for t in self.ancestors(first)]
        second_chain = [self.get(second).name] + [t.name for t in self.ancestors(second)]
        second_positions = {name: index for index, name in enumerate(second_chain)}
        for first_index, name in enumerate(first_chain):
            if name in second_positions:
                return first_index + second_positions[name]
        return len(first_chain) + len(second_chain)

    # ------------------------------------------------------------ construction
    def subset(self, names: Sequence[str]) -> "TypeOntology":
        """A new ontology restricted to *names* (parents outside are dropped)."""
        keep = {self.get(name).name for name in names}
        subset = TypeOntology()
        for semantic_type in self._types.values():
            if semantic_type.name not in keep:
                continue
            parent = semantic_type.parent
            if parent is not None and normalize_type_name(parent) not in keep:
                parent = None
            subset.register(
                SemanticType(
                    name=semantic_type.name,
                    label=semantic_type.label,
                    parent=parent,
                    kind=semantic_type.kind,
                    synonyms=semantic_type.synonyms,
                    description=semantic_type.description,
                )
            )
        return subset

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation of the ontology."""
        return {
            "types": [
                {
                    "name": t.name,
                    "label": t.label,
                    "parent": t.parent,
                    "kind": t.kind.value,
                    "synonyms": list(t.synonyms),
                    "description": t.description,
                }
                for t in self._types.values()
            ]
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TypeOntology":
        """Inverse of :meth:`to_dict`."""
        ontology = cls()
        for entry in payload.get("types", []):  # type: ignore[union-attr]
            ontology.register(
                SemanticType(
                    name=entry["name"],
                    label=entry.get("label", ""),
                    parent=entry.get("parent"),
                    kind=DataKind(entry.get("kind", "any")),
                    synonyms=tuple(entry.get("synonyms", ())),
                    description=entry.get("description", ""),
                )
            )
        return ontology


def build_default_ontology(include_unknown: bool = True) -> TypeOntology:
    """Construct the built-in DBpedia-style ontology.

    Parameters
    ----------
    include_unknown:
        When true (the default) the reserved :data:`UNKNOWN_TYPE` node is
        added under the root so the classifier can emit it for
        out-of-distribution columns, mirroring Section 4.3 of the paper.
    """
    from repro.core.ontology_data import DEFAULT_TYPE_DEFINITIONS

    ontology = TypeOntology()
    for definition in DEFAULT_TYPE_DEFINITIONS:
        ontology.register(SemanticType(**definition))
    if include_unknown and UNKNOWN_TYPE not in ontology:
        ontology.register(
            SemanticType(
                name=UNKNOWN_TYPE,
                label="unknown",
                parent="thing",
                kind=DataKind.ANY,
                description="Reserved label for out-of-distribution columns.",
            )
        )
    return ontology
