"""The cascading semantic type detection pipeline (Fig. 4).

SigmaTyper predicts the semantic types of a table's columns with a 3-step
pipeline — header matching, value lookup, table embedding — executed in order
of inference cost.  "To minimize overhead, each step in the pipeline is
executed (potentially for a subset of columns) only if a preset confidence
threshold c is not met by the prior step."  After the cascade, the per-step
confidence scores are aggregated (soft majority vote by default) and
predictions below the precision threshold τ are turned into abstentions.

The pipeline is model-agnostic: any object implementing :class:`PipelineStep`
can participate, which is how the global/local model combination and the
baseline ablations reuse the same machinery.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.core.aggregation import Aggregator
from repro.core.errors import ConfigurationError, PipelineError
from repro.core.ontology import UNKNOWN_TYPE
from repro.core.prediction import ColumnPrediction, TablePrediction, TypeScore
from repro.core.table import Table

__all__ = ["PipelineStep", "CascadeConfig", "TypeDetectionPipeline"]


class PipelineStep(ABC):
    """One stage of the cascade.

    Subclasses set :attr:`name` (a stable identifier used in traces, weights,
    and reports) and :attr:`cost_rank` (steps are executed in ascending cost
    order) and implement :meth:`predict_columns`.
    """

    #: Stable identifier of the step ("header_matching", "value_lookup", ...).
    name: str = "step"
    #: Execution order: cheaper steps have lower ranks and run first.
    cost_rank: int = 0

    @abstractmethod
    def predict_columns(
        self, table: Table, column_indices: Sequence[int] | None = None
    ) -> dict[int, list[TypeScore]]:
        """Return ranked candidates for the addressed columns of *table*.

        Implementations must return an entry for every requested index (an
        empty list when the step has nothing to say about a column).  This is
        the batch hot path: the cascade always hands a step *all* of its
        pending columns at once, so implementations should amortise shared
        work across the batch (the learned step runs one model forward per
        call, the header matcher scores each distinct header once).
        """


@dataclass
class CascadeConfig:
    """Behavioural parameters of the cascade."""

    #: Per-step confidence threshold c: a column whose best score from the
    #: steps run so far reaches c is not passed to more expensive steps.
    confidence_threshold: float = 0.85
    #: Precision threshold τ: final predictions below it become abstentions.
    tau: float = 0.50
    #: Number of candidates reported per column.
    top_k: int = 3
    #: When true, every step runs on every column (ablation / latency study).
    always_run_all_steps: bool = False
    #: Aggregation method passed to :class:`~repro.core.aggregation.Aggregator`.
    aggregation_method: str = "soft_majority"

    def validate(self) -> None:
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ConfigurationError("confidence_threshold must be in [0, 1]")
        if not 0.0 <= self.tau <= 1.0:
            raise ConfigurationError("tau must be in [0, 1]")
        if self.top_k < 1:
            raise ConfigurationError("top_k must be at least 1")


class TypeDetectionPipeline:
    """Runs pipeline steps as a confidence-gated cascade and aggregates them."""

    def __init__(
        self,
        steps: Sequence[PipelineStep],
        config: CascadeConfig | None = None,
        aggregator: Aggregator | None = None,
    ) -> None:
        if not steps:
            raise PipelineError("a pipeline needs at least one step")
        names = [step.name for step in steps]
        if len(set(names)) != len(names):
            raise PipelineError(f"pipeline steps must have unique names, got {names}")
        self.config = config or CascadeConfig()
        self.config.validate()
        self.steps: list[PipelineStep] = sorted(steps, key=lambda step: step.cost_rank)
        self.aggregator = aggregator or Aggregator(method=self.config.aggregation_method)

    @property
    def step_names(self) -> list[str]:
        """Step identifiers in execution order."""
        return [step.name for step in self.steps]

    # -------------------------------------------------------------- annotation
    def annotate(self, table: Table) -> TablePrediction:
        """Predict the semantic type of every column in *table*."""
        config = self.config
        all_indices = list(range(table.num_columns))
        pending = list(all_indices)
        step_scores: dict[int, dict[str, list[TypeScore]]] = {index: {} for index in all_indices}
        best_confidence: dict[int, float] = {index: 0.0 for index in all_indices}
        winning_step: dict[int, str] = {index: "" for index in all_indices}

        trace: dict[str, int] = {}
        timings: dict[str, float] = {}
        for step in self.steps:
            targets = all_indices if config.always_run_all_steps else pending
            if not targets:
                break
            started = time.perf_counter()
            results = step.predict_columns(table, targets)
            timings[step.name] = timings.get(step.name, 0.0) + (time.perf_counter() - started)
            trace[step.name] = len(targets)
            for index in targets:
                scores = results.get(index, [])
                step_scores[index][step.name] = list(scores)
                if scores and scores[0].confidence > best_confidence[index]:
                    best_confidence[index] = scores[0].confidence
                    winning_step[index] = step.name
            pending = [
                index for index in pending
                if best_confidence[index] < config.confidence_threshold
            ]

        predictions = []
        for index in all_indices:
            predictions.append(
                self._finalise_column(
                    table=table,
                    column_index=index,
                    per_step=step_scores[index],
                    winning_step=winning_step[index],
                )
            )
        return TablePrediction(
            table_name=table.name,
            columns=predictions,
            step_trace=trace,
            step_seconds=timings,
        )

    def annotate_many(self, tables: Sequence[Table]) -> list[TablePrediction]:
        """Annotate several tables (a convenience for the evaluation harness)."""
        return [self.annotate(table) for table in tables]

    # ----------------------------------------------------------------- helpers
    def _finalise_column(
        self,
        table: Table,
        column_index: int,
        per_step: dict[str, list[TypeScore]],
        winning_step: str,
    ) -> ColumnPrediction:
        raw_combined = self.aggregator.combine(per_step)
        # The unknown/background class never becomes a reported candidate,
        # but when it wins the raw vote that is an explicit OOD signal.
        unknown_won = bool(raw_combined) and raw_combined[0].type_name == UNKNOWN_TYPE
        combined = [score for score in raw_combined if score.type_name != UNKNOWN_TYPE]
        top_scores = combined[: self.config.top_k]
        abstained = (
            unknown_won
            or not top_scores
            or top_scores[0].confidence < self.config.tau
        )
        return ColumnPrediction(
            column_index=column_index,
            column_name=table.columns[column_index].name,
            scores=top_scores,
            source_step=winning_step or "aggregation",
            abstained=abstained,
            step_scores=per_step,
        )
