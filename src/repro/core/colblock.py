"""Block-native columnar kernels over the typed value/offset/tag layout.

PR 5's shard transport (:mod:`repro.serving.transport`) already lays every
column out as three contiguous buffers — one tag byte per cell, ``n+1`` u64
byte offsets, and a packed value blob — but workers then rebuilt Python
objects and the profiler/featurizer walked them cell by cell.  This module
flips that: the typed block becomes the system's *native* columnar
representation, and the hot path (null/distinct counting, numeric moments,
text-length statistics, character-class composition, the ``"Aa+9+"``
template, structural type inference, sampling) runs as vectorized numpy
kernels directly over the buffers.

Layout (shared with ``ColumnBlockCodec``; the tag constants below are the
canonical definition, re-exported by the transport):

- ``tags``: one byte per cell (``TAG_NONE`` .. ``TAG_FALSE``).
- ``offsets``: ``n+1`` monotonically increasing byte offsets into ``blob``;
  cell *i* owns ``blob[offsets[i]:offsets[i+1]]``.
- ``blob``: packed value bytes — UTF-8 text for ``TAG_STR``, 8 little-endian
  bytes for ``TAG_I64``/``TAG_F64``, ASCII decimal for ``TAG_BIGINT``,
  nothing for ``TAG_NONE``/``TAG_TRUE``/``TAG_FALSE``.

Parity contract
---------------
Every kernel is **bit-identical** to the per-value Python path: identical
floats (including ``-0.0`` signs and NaN handling), identical dict insertion
order, identical tie-breaks, identical seeded samples.  Columns the kernels
cannot prove equivalent — non-ASCII text, big integers, mixed text/scalar
cells — fall back to the Python path, and every decision is counted
(:func:`kernel_stats`) so operators can see the fast path being taken.

Two families are kernelized:

- **ascii**: cells are ``None``/``str`` and the blob is pure ASCII.  This is
  the fully vectorized path: stripping, null-token matching, dedupe, numeric
  parsing, character classes, and templates all run on byte arrays without
  materializing a single Python string (only the distinct survivors are
  decoded, lazily).
- **scalar**: cells are ``None``/``bool``/``int64``/``float64``.  Null and
  numeric statistics are vectorized over the tag-masked 8-byte views; text
  statistics run per *distinct* scalar only.

The module deliberately imports nothing above :mod:`repro.core` at module
level (the profiler symbols it needs for constructing results are imported
lazily) so that ``table.py`` and the transport can both import it.
"""

from __future__ import annotations

import os
import random
import statistics as pystats
import struct
import threading
from typing import Sequence

import numpy as np

from repro.core.datatypes import NULL_TOKENS, DataType, infer_value_type, parse_number

__all__ = [
    "TAG_NONE",
    "TAG_STR",
    "TAG_I64",
    "TAG_BIGINT",
    "TAG_F64",
    "TAG_TRUE",
    "TAG_FALSE",
    "ColumnView",
    "view_from_values",
    "view_from_block_buffers",
    "kernel_profile",
    "kernel_data_type",
    "kernel_non_null_indices",
    "kernel_non_null_count",
    "kernel_text_values",
    "kernel_value_counts",
    "kernel_numeric_values",
    "kernel_unique_fraction",
    "kernel_sample_indices",
    "kernel_character_template",
    "kernels_enabled",
    "set_kernels_enabled",
    "kernel_stats",
    "reset_kernel_stats",
    "record_encode_fallback",
]

# --------------------------------------------------------------------- layout

#: Cell tag values.  Canonical here; ``repro.serving.transport`` re-exports
#: them so the wire format and the kernels can never drift apart.
TAG_NONE = 0
TAG_STR = 1
TAG_I64 = 2
TAG_BIGINT = 3
TAG_F64 = 4
TAG_TRUE = 5
TAG_FALSE = 6

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_I64S = struct.Struct("<q")
_F64S = struct.Struct("<d")

#: Guard bytes appended to every view's blob so fixed-width vector gathers
#: (8-byte null-token packs, 18-digit integer windows, 8-byte scalar loads)
#: never index past the end.  Must cover the widest gather.
_BLOB_PAD = 40

#: Stripped values at most this long are deduped via packed u64 sort keys;
#: longer ones fall back to a per-value dict of ``bytes`` keys.
_PACK_MAX = 32

# ------------------------------------------------------------------- tables

_CLS_DIGIT, _CLS_UPPER, _CLS_LOWER, _CLS_WS, _CLS_OTHER = 0, 1, 2, 3, 4

#: ASCII whitespace exactly as ``str.isspace`` / ``str.strip`` see it:
#: ``\t\n\v\f\r``, the C1 separators FS/GS/RS/US, and the space.
_WS_BYTES = (0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x1C, 0x1D, 0x1E, 0x1F, 0x20)

_CLASS_LUT = np.full(256, _CLS_OTHER, dtype=np.uint8)
_CLASS_LUT[ord("0"): ord("9") + 1] = _CLS_DIGIT
_CLASS_LUT[ord("A"): ord("Z") + 1] = _CLS_UPPER
_CLASS_LUT[ord("a"): ord("z") + 1] = _CLS_LOWER
for _b in _WS_BYTES:
    _CLASS_LUT[_b] = _CLS_WS

_LOWER_LUT = np.arange(256, dtype=np.uint8)
_LOWER_LUT[ord("A"): ord("Z") + 1] += 32

#: Character-class template symbols: digit → ``9``, upper → ``A``,
#: lower → ``a``, everything else verbatim (matches ``character_template``).
_TEMPLATE_LUT = np.arange(256, dtype=np.uint8)
_TEMPLATE_LUT[ord("0"): ord("9") + 1] = ord("9")
_TEMPLATE_LUT[ord("A"): ord("Z") + 1] = ord("A")
_TEMPLATE_LUT[ord("a"): ord("z") + 1] = ord("a")

#: Digit-collapse signature (digits → ``9``, everything else verbatim) used
#: by the structural-type kernel; see :func:`_ascii_type_votes`.
_SIG_LUT = np.arange(256, dtype=np.uint8)
_SIG_LUT[ord("0"): ord("9") + 1] = ord("9")

#: Bytes that may appear in a value `float()` can parse directly.  The
#: alphabet deliberately excludes ``_`` (``float("1_0")`` succeeds but the
#: Python path's regex rejects it) and every letter of inf/nan, so on this
#: alphabet ``float(bytes)`` succeeds iff ``parse_number`` succeeds, with the
#: identical result.
_NUMCAND_LUT = np.zeros(256, dtype=bool)
for _c in b"0123456789+-.eE":
    _NUMCAND_LUT[_c] = True

#: Bytes that may appear in *any* value ``parse_number`` accepts (currency,
#: thousands separators, percent, parens, magnitude suffixes, inner
#: whitespace).  Values containing anything else are non-numeric with zero
#: per-value work; values inside this alphabet but outside the `float()`
#: alphabet get one real ``parse_number`` call each.
_MAYBE_NUM_LUT = _NUMCAND_LUT.copy()
for _c in b",%()$kKmMbB":
    _MAYBE_NUM_LUT[_c] = True
for _b in _WS_BYTES:
    _MAYBE_NUM_LUT[_b] = True

#: Regex ``\s`` bytes — the optional single space the currency pattern
#: ``^[\$€£¥]\s?`` consumes.  Narrower than ``str.strip``'s set (no C1
#: file/group/record/unit separators).
_PCRE_WS_LUT = np.zeros(256, dtype=bool)
for _b in (0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x20):
    _PCRE_WS_LUT[_b] = True

#: Bytes whose presence routes a formatted-number span to the real
#: ``parse_number``: the parenthesized-negative shape is rare enough that
#: replicating it vectorized is not worth the parity risk.
_HARDNUM_LUT = np.zeros(256, dtype=bool)
for _c in b"()":
    _HARDNUM_LUT[_c] = True

#: Magnitude suffixes (``5k`` / ``1.2M`` / ``3B``) — also routed to the real
#: ``parse_number`` (the suffix branch re-validates with its own regex).
_MAGNITUDE_BYTES = np.frombuffer(b"kKmMbB", dtype=np.uint8).copy()

_ARANGE8 = np.arange(8, dtype=np.int64)
_SHIFT8 = (np.arange(8, dtype=np.uint64) * np.uint64(8)).astype(np.uint64)
_POW10 = np.array([10**i for i in range(19)], dtype=np.int64)

#: Null tokens packed as (lowercased bytes | length << 56) u64 codes.  Every
#: token is ASCII and at most 7 bytes, so the pack is injective.
assert all(len(tok) <= 7 for tok in NULL_TOKENS)
_NULL_CODES = np.array(
    sorted(
        sum(ch << (8 * j) for j, ch in enumerate(tok.encode("ascii")))
        | (len(tok) << 56)
        for tok in NULL_TOKENS
    ),
    dtype=np.uint64,
)

# ------------------------------------------------------------------ switches

_ENABLED = os.environ.get("REPRO_COLUMNAR_KERNELS", "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)


def kernels_enabled() -> bool:
    """Whether the columnar kernels are active for this process."""

    return _ENABLED


def set_kernels_enabled(enabled: bool) -> bool:
    """Toggle the kernels; returns the previous setting."""

    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


# ------------------------------------------------------------------ counters

_STATS_LOCK = threading.Lock()


def _fresh_stats() -> dict:
    return {
        "kernel_hits": 0,
        "kernel_fallbacks": 0,
        "encode_fallbacks": 0,
        "by_op": {},
        "fallback_reasons": {},
    }


_STATS = _fresh_stats()


def _record(op: str, hit: bool, reason: str = "") -> None:
    with _STATS_LOCK:
        bucket = _STATS["by_op"].setdefault(op, [0, 0])
        if hit:
            _STATS["kernel_hits"] += 1
            bucket[0] += 1
        else:
            _STATS["kernel_fallbacks"] += 1
            bucket[1] += 1
            reasons = _STATS["fallback_reasons"]
            reasons[reason] = reasons.get(reason, 0) + 1


def record_encode_fallback() -> None:
    """Count a column whose values could not be encoded into a view at all."""

    with _STATS_LOCK:
        _STATS["encode_fallbacks"] += 1


def kernel_stats() -> dict:
    """Snapshot of kernel-vs-fallback counters (hits, fallbacks, reasons)."""

    with _STATS_LOCK:
        return {
            "kernel_hits": _STATS["kernel_hits"],
            "kernel_fallbacks": _STATS["kernel_fallbacks"],
            "encode_fallbacks": _STATS["encode_fallbacks"],
            "by_op": {
                op: {"hits": pair[0], "fallbacks": pair[1]}
                for op, pair in sorted(_STATS["by_op"].items())
            },
            "fallback_reasons": dict(_STATS["fallback_reasons"]),
        }


def reset_kernel_stats() -> None:
    global _STATS
    with _STATS_LOCK:
        _STATS = _fresh_stats()


# ---------------------------------------------------------------------- view


class ColumnView:
    """Owned, aligned copies of one column's tag/offset/blob buffers.

    The constructor arrays must already be private copies (the factory
    functions below guarantee it): the view must survive the shared-memory
    segment it was read from being closed, and u64 offsets inside a segment
    are not 8-byte aligned in general.  ``blob`` carries ``_BLOB_PAD`` zero
    guard bytes past the payload.
    """

    __slots__ = ("tags", "offsets", "blob", "_analysis")

    def __init__(self, tags: np.ndarray, offsets: np.ndarray, blob: np.ndarray) -> None:
        self.tags = tags
        self.offsets = offsets
        self.blob = blob
        self._analysis = None

    def __len__(self) -> int:
        return int(self.tags.shape[0])

    @property
    def blob_len(self) -> int:
        return int(self.offsets[-1]) if self.offsets.shape[0] else 0

    def analysis(self) -> "_Analysis":
        if self._analysis is None:
            self._analysis = _analyze(self)
        return self._analysis

    def decode(self, index: int) -> object:
        """Decode one cell to its Python value (mirrors ``BlockValues``)."""

        tag = int(self.tags[index])
        if tag == TAG_NONE:
            return None
        if tag == TAG_TRUE:
            return True
        if tag == TAG_FALSE:
            return False
        start = int(self.offsets[index])
        stop = int(self.offsets[index + 1])
        raw = self.blob[start:stop].tobytes()
        if tag == TAG_STR:
            return raw.decode("utf-8", "surrogatepass")
        if tag == TAG_I64:
            return _I64S.unpack(raw)[0]
        if tag == TAG_F64:
            return _F64S.unpack(raw)[0]
        if tag == TAG_BIGINT:
            return int(raw.decode("ascii"))
        raise ValueError(f"unknown tag {tag} at index {index}")


def _pad_blob(raw: bytes) -> np.ndarray:
    blob = np.zeros(len(raw) + _BLOB_PAD, dtype=np.uint8)
    if raw:
        blob[: len(raw)] = np.frombuffer(raw, dtype=np.uint8)
    return blob


def view_from_values(values: Sequence[object]) -> ColumnView | None:
    """Encode a Python value sequence into a :class:`ColumnView`.

    Returns ``None`` when a cell falls outside the block vocabulary
    (lists, dicts, arbitrary objects) — the caller keeps the Python path.
    """

    n = len(values)
    # Fast path: every cell is a str (the overwhelmingly common CSV shape).
    try:
        joined = "".join(values)  # type: ignore[arg-type]
    except TypeError:
        joined = None
    if joined is not None and joined.isascii():
        lengths = np.fromiter((len(v) for v in values), dtype=np.int64, count=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return ColumnView(
            np.full(n, TAG_STR, dtype=np.uint8), offsets, _pad_blob(joined.encode("ascii"))
        )

    tags = np.empty(n, dtype=np.uint8)
    offsets = np.zeros(n + 1, dtype=np.int64)
    chunks: list[bytes] = []
    position = 0
    for index, value in enumerate(values):
        if value is None:
            tags[index] = TAG_NONE
        else:
            value_type = type(value)
            if value_type is str:
                tags[index] = TAG_STR
                data = value.encode("utf-8", "surrogatepass")
                chunks.append(data)
                position += len(data)
            elif value_type is bool:
                tags[index] = TAG_TRUE if value else TAG_FALSE
            elif value_type is int:
                if _I64_MIN <= value <= _I64_MAX:
                    tags[index] = TAG_I64
                    chunks.append(_I64S.pack(value))
                    position += 8
                else:
                    tags[index] = TAG_BIGINT
                    data = str(value).encode("ascii")
                    chunks.append(data)
                    position += len(data)
            elif value_type is float:
                tags[index] = TAG_F64
                chunks.append(_F64S.pack(value))
                position += 8
            else:
                return None
        offsets[index + 1] = position
    return ColumnView(tags, offsets, _pad_blob(b"".join(chunks)))


def view_from_block_buffers(
    buf, count: int, tags_off: int, offsets_off: int, blob_off: int
) -> ColumnView:
    """Copy one column's buffers out of an encoded block (bytes/memoryview).

    The copies are what let the view outlive the shared-memory segment: no
    numpy export is kept on *buf* once this returns.
    """

    base = np.frombuffer(buf, dtype=np.uint8)
    tags = np.array(base[tags_off: tags_off + count], dtype=np.uint8)
    offset_bytes = np.array(
        base[offsets_off: offsets_off + 8 * (count + 1)], dtype=np.uint8
    )
    offsets = offset_bytes.view("<u8").astype(np.int64)
    blob_len = int(offsets[-1])
    blob = np.zeros(blob_len + _BLOB_PAD, dtype=np.uint8)
    if blob_len:
        blob[:blob_len] = base[blob_off: blob_off + blob_len]
    return ColumnView(tags, offsets, blob)


# ------------------------------------------------------------------ analysis


class _Analysis:
    """Shared intermediate state for one view, computed once and cached."""

    __slots__ = (
        "n",
        "family",  # "ascii" | "scalar" | None (fallback)
        "reason",  # fallback reason when family is None
        "null_mask",
        "nn_idx",  # raw indices of non-null cells, in order
        # ascii family -----------------------------------------------------
        "sstart",  # stripped-span start per non-null cell (blob offset)
        "slen",  # stripped-span length per non-null cell
        # distinct machinery (both families), first-seen order --------------
        "n_distinct",
        "counts",  # occurrences per distinct
        "first_nn",  # non-null position of each distinct's first occurrence
        "inv",  # non-null position -> distinct id
        "dist_start",  # ascii: stripped-span start per distinct
        "dist_len",  # ascii: stripped-span length per distinct
        "texts",  # decoded distinct strings (lazy)
        # scalar family ----------------------------------------------------
        "scalar_numeric_mask",  # over nn: cell is int64/float64
        "scalar_numeric",  # float64 values for those cells
        "scalar_type_counts",  # DataType -> votes
        # numeric leg (ascii, lazy) -----------------------------------------
        "numeric_ready",
        "numeric_mask",  # over nn
        "numeric_vals",  # float64 per nn (garbage where mask is False)
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self.family = None
        self.reason = ""
        self.texts = None
        self.numeric_ready = False


def _group_first_seen(sort_keys: tuple, k: int):
    """Group *k* items by the composite key, reported in first-seen order.

    Returns ``(n_distinct, counts, first_positions, inverse)`` where
    ``inverse[i]`` is the distinct id (first-seen order) of item *i* —
    exactly the insertion order a Python dict scan would produce.
    """

    order = np.lexsort(sort_keys)
    boundary = np.zeros(k, dtype=bool)
    boundary[0] = True
    for key in sort_keys:
        key_sorted = key[order]
        boundary[1:] |= key_sorted[1:] != key_sorted[:-1]
    bounds = np.flatnonzero(boundary)
    group_of_sorted = np.cumsum(boundary) - 1
    counts_sorted = np.diff(np.append(bounds, k))
    first_sorted = np.minimum.reduceat(order, bounds)
    rank = np.argsort(first_sorted, kind="stable")
    remap = np.empty(rank.size, dtype=np.int64)
    remap[rank] = np.arange(rank.size)
    inverse = np.empty(k, dtype=np.int64)
    inverse[order] = remap[group_of_sorted]
    return int(rank.size), counts_sorted[rank], first_sorted[rank], inverse


#: Key-width cap (bytes) for the vectorized weighted-unique helper; longer
#: keys take the per-item Python loop.
_UNIQUE_PACK_MAX = 64


def _weighted_unique_bytes(
    buf: np.ndarray, starts: np.ndarray, lens: np.ndarray, weights: np.ndarray
) -> list[tuple[bytes, int]]:
    """Sum *weights* per unique byte-string ``buf[starts[i]:starts[i]+lens[i]]``.

    The aggregation is order-insensitive (callers sort or sum afterwards), so
    short keys are packed into u64 words and grouped with one lexsort instead
    of a per-item dict loop.  Returns ``(key, total_weight)`` pairs.
    """

    m = int(starts.size)
    if m == 0:
        return []
    max_len = int(lens.max())
    if max_len > _UNIQUE_PACK_MAX:
        raw = buf.tobytes()
        out: dict[bytes, int] = {}
        for i in range(m):
            start = int(starts[i])
            key = raw[start: start + int(lens[i])]
            out[key] = out.get(key, 0) + int(weights[i])
        return list(out.items())
    words = max(1, (max_len + 7) // 8)
    span = words * 8
    padded = np.zeros(buf.size + span, dtype=np.uint8)
    padded[: buf.size] = buf
    gather = starts[:, None] + np.arange(span, dtype=np.int64)[None, :]
    raw = padded[gather].astype(np.uint64)
    raw *= np.arange(span, dtype=np.int64)[None, :] < lens[:, None]
    packed = (raw.reshape(m, words, 8) << _SHIFT8[None, None, :]).sum(
        axis=2, dtype=np.uint64
    )
    keys = tuple(packed[:, w] for w in range(words)) + (lens,)
    n_unique, _, first, inverse = _group_first_seen(keys, m)
    # Integer weights sum exactly in float64 at these magnitudes (< 2**53).
    sums = np.bincount(
        inverse, weights=weights.astype(np.float64), minlength=n_unique
    ).astype(np.int64)
    flat = buf.tobytes()
    result: list[tuple[bytes, int]] = []
    for group in range(n_unique):
        i = int(first[group])
        start = int(starts[i])
        result.append((flat[start: start + int(lens[i])], int(sums[group])))
    return result


def _analyze(view: ColumnView) -> _Analysis:
    analysis = _Analysis(len(view))
    tags = view.tags
    present = set(int(t) for t in np.unique(tags)) if analysis.n else set()
    unknown = present - {TAG_NONE, TAG_STR, TAG_I64, TAG_F64, TAG_TRUE, TAG_FALSE}
    if unknown:
        analysis.reason = (
            "bigint cells" if unknown == {TAG_BIGINT} else "unsupported cell tags"
        )
        return analysis
    has_text = TAG_STR in present
    has_scalar = bool(present & {TAG_I64, TAG_F64, TAG_TRUE, TAG_FALSE})
    if has_text and has_scalar:
        analysis.reason = "mixed text and scalar cells"
        return analysis
    if has_text:
        blob_len = view.blob_len
        if blob_len and int(view.blob[:blob_len].max()) >= 0x80:
            analysis.reason = "non-ascii text"
            return analysis
        _analyze_ascii(view, analysis)
    else:
        _analyze_scalar(view, analysis)
    return analysis


def _analyze_ascii(view: ColumnView, analysis: _Analysis) -> None:
    n = analysis.n
    tags = view.tags
    offsets = view.offsets
    starts = offsets[:-1]
    ends = offsets[1:]
    blob_len = view.blob_len
    blob = view.blob

    # Per-cell stripped span [sstart, sstart+slen): first/last non-whitespace
    # byte inside the cell, computed with sentinel-padded reduceat so empty
    # and all-whitespace cells resolve to zero-length spans.
    if n:
        classes = _CLASS_LUT[blob[:blob_len]]
        is_ws = classes == _CLS_WS
        byte_index = np.arange(blob_len, dtype=np.int64)
        pad_first = np.append(np.where(is_ws, blob_len, byte_index), blob_len)
        pad_last = np.append(np.where(is_ws, np.int64(-1), byte_index), np.int64(-1))
        first_nonws = np.minimum.reduceat(pad_first, starts)
        last_nonws = np.maximum.reduceat(pad_last, starts)
        blank = (first_nonws >= ends) | (first_nonws < starts)
        sstart_all = np.where(blank, starts, first_nonws)
        send_all = np.where(blank, starts, last_nonws + 1)
        slen_all = send_all - sstart_all
    else:
        sstart_all = slen_all = np.empty(0, dtype=np.int64)

    # Null detection: TAG_NONE plus strings whose stripped, lowercased text is
    # a null token.  Tokens are ASCII and <= 7 bytes, so each candidate packs
    # into one u64 (bytes | length<<56) compared against the token codes.
    null_mask = tags == TAG_NONE
    short_text = (tags == TAG_STR) & (slen_all <= 7)
    candidates = np.flatnonzero(short_text)
    if candidates.size:
        gather = sstart_all[candidates][:, None] + _ARANGE8[None, :]
        packed_bytes = _LOWER_LUT[blob[gather]].astype(np.uint64)
        within = _ARANGE8[None, :] < slen_all[candidates][:, None]
        packed_bytes *= within
        codes = (packed_bytes << _SHIFT8[None, :]).sum(axis=1, dtype=np.uint64)
        codes |= slen_all[candidates].astype(np.uint64) << np.uint64(56)
        null_mask[candidates[np.isin(codes, _NULL_CODES)]] = True

    analysis.null_mask = null_mask
    nn_idx = np.flatnonzero(~null_mask)
    analysis.nn_idx = nn_idx
    analysis.sstart = sstart_all[nn_idx]
    analysis.slen = slen_all[nn_idx]
    analysis.family = "ascii"

    k = int(nn_idx.size)
    if k == 0:
        analysis.n_distinct = 0
        analysis.counts = np.empty(0, dtype=np.int64)
        analysis.first_nn = np.empty(0, dtype=np.int64)
        analysis.inv = np.empty(0, dtype=np.int64)
        analysis.dist_start = np.empty(0, dtype=np.int64)
        analysis.dist_len = np.empty(0, dtype=np.int64)
        return

    span_start = analysis.sstart
    span_len = analysis.slen
    max_len = int(span_len.max())
    if max_len <= _PACK_MAX:
        words = max(1, (max_len + 7) // 8)
        gather = span_start[:, None] + np.arange(words * 8, dtype=np.int64)[None, :]
        raw = blob[gather].astype(np.uint64)
        raw *= np.arange(words * 8, dtype=np.int64)[None, :] < span_len[:, None]
        packed = (raw.reshape(k, words, 8) << _SHIFT8[None, None, :]).sum(
            axis=2, dtype=np.uint64
        )
        keys = tuple(packed[:, w] for w in range(words)) + (span_len,)
        n_distinct, counts, first_nn, inverse = _group_first_seen(keys, k)
    else:
        seen: dict[bytes, int] = {}
        counts_list: list[int] = []
        first_list: list[int] = []
        inverse = np.empty(k, dtype=np.int64)
        for position in range(k):
            start = int(span_start[position])
            key = blob[start: start + int(span_len[position])].tobytes()
            group = seen.get(key)
            if group is None:
                group = len(seen)
                seen[key] = group
                counts_list.append(1)
                first_list.append(position)
            else:
                counts_list[group] += 1
            inverse[position] = group
        n_distinct = len(seen)
        counts = np.array(counts_list, dtype=np.int64)
        first_nn = np.array(first_list, dtype=np.int64)

    analysis.n_distinct = n_distinct
    analysis.counts = counts
    analysis.first_nn = first_nn
    analysis.inv = inverse
    analysis.dist_start = span_start[first_nn]
    analysis.dist_len = span_len[first_nn]


def _analyze_scalar(view: ColumnView, analysis: _Analysis) -> None:
    tags = view.tags
    starts = view.offsets[:-1]
    blob = view.blob

    def gather_u64(positions: np.ndarray) -> np.ndarray:
        if positions.size == 0:
            return np.empty(0, dtype=np.uint64)
        gathered = blob[starts[positions][:, None] + _ARANGE8[None, :]].astype(np.uint64)
        return (gathered << _SHIFT8[None, :]).sum(axis=1, dtype=np.uint64)

    i64_pos = np.flatnonzero(tags == TAG_I64)
    f64_pos = np.flatnonzero(tags == TAG_F64)
    i64_vals = gather_u64(i64_pos).view(np.int64)
    f64_vals = gather_u64(f64_pos).view(np.float64)

    null_mask = tags == TAG_NONE
    nan_mask = np.isnan(f64_vals)
    null_mask[f64_pos[nan_mask]] = True
    analysis.null_mask = null_mask
    nn_idx = np.flatnonzero(~null_mask)
    analysis.nn_idx = nn_idx
    analysis.family = "scalar"

    n = analysis.n
    bits_all = np.zeros(n, dtype=np.uint64)
    values_all = np.zeros(n, dtype=np.float64)
    bits_all[i64_pos] = i64_vals.view(np.uint64)
    bits_all[f64_pos] = f64_vals.view(np.uint64)
    values_all[i64_pos] = i64_vals.astype(np.float64)
    values_all[f64_pos] = f64_vals

    k = int(nn_idx.size)
    tags_nn = tags[nn_idx]
    if k:
        n_distinct, counts, first_nn, inverse = _group_first_seen(
            (bits_all[nn_idx], tags_nn), k
        )
    else:
        n_distinct = 0
        counts = first_nn = inverse = np.empty(0, dtype=np.int64)
    analysis.n_distinct = n_distinct
    analysis.counts = counts
    analysis.first_nn = first_nn
    analysis.inv = inverse

    numeric_mask = (tags_nn == TAG_I64) | (tags_nn == TAG_F64)
    analysis.scalar_numeric_mask = numeric_mask
    analysis.scalar_numeric = values_all[nn_idx][numeric_mask]

    type_counts: dict[DataType, int] = {}
    integers = int((tags_nn == TAG_I64).sum())
    floats = int((tags_nn == TAG_F64).sum())
    booleans = int(((tags_nn == TAG_TRUE) | (tags_nn == TAG_FALSE)).sum())
    if integers:
        type_counts[DataType.INTEGER] = integers
    if floats:
        type_counts[DataType.FLOAT] = floats
    if booleans:
        type_counts[DataType.BOOLEAN] = booleans
    analysis.scalar_type_counts = type_counts


# ------------------------------------------------------------- ascii numeric


def _numeric_ascii(view: ColumnView, analysis: _Analysis) -> None:
    """Vectorized ``parse_number`` over the distinct stripped spans.

    Three tiers: values on the ``float()``-safe alphabet are parsed with a
    digit-polynomial kernel (<= 18 digits) or one direct ``float(bytes)``
    call; values touching currency/percent/separator bytes get one real
    ``parse_number`` call each; anything else is non-numeric with zero work.
    Parsing is a pure function of the stripped bytes — the dedupe key — so
    each distinct value is parsed once and repeated cells reuse the result.
    """

    if analysis.numeric_ready:
        return
    # Cells sharing stripped bytes parse identically, so every tier runs per
    # *distinct* span and the result is broadcast back over the inverse map.
    span_start = analysis.dist_start
    span_len = analysis.dist_len
    k = int(span_len.size)
    mask = np.zeros(k, dtype=bool)
    vals = np.zeros(k, dtype=np.float64)
    analysis.numeric_ready = True
    if k == 0:
        analysis.numeric_mask = np.zeros(analysis.nn_idx.size, dtype=bool)
        analysis.numeric_vals = np.zeros(analysis.nn_idx.size, dtype=np.float64)
        return

    blob = view.blob
    blob_len = view.blob_len
    nonempty = np.flatnonzero(span_len > 0)
    if nonempty.size == 0:
        analysis.numeric_mask = mask[analysis.inv]
        analysis.numeric_vals = vals[analysis.inv]
        return

    # Map every byte inside a stripped span back to its owning cell: spans are
    # disjoint and ordered, so the running count of span-starts minus one is
    # the rank of the owning (non-empty) span.
    marker = np.zeros(blob_len + 1, dtype=np.int64)
    marker[span_start[nonempty]] = 1
    owner_rank = np.cumsum(marker[:-1]) - 1
    delta = np.zeros(blob_len + 1, dtype=np.int64)
    np.add.at(delta, span_start[nonempty], 1)
    np.add.at(delta, span_start[nonempty] + span_len[nonempty], -1)
    inside_positions = np.flatnonzero(np.cumsum(delta[:-1]) > 0)
    owner = nonempty[owner_rank[inside_positions]]
    inside_bytes = blob[inside_positions]

    non_candidate = np.bincount(owner[~_NUMCAND_LUT[inside_bytes]], minlength=k)
    non_maybe = np.bincount(owner[~_MAYBE_NUM_LUT[inside_bytes]], minlength=k)
    digit_count = np.bincount(
        owner[_CLASS_LUT[inside_bytes] == _CLS_DIGIT], minlength=k
    )
    is_candidate = (non_candidate == 0) & (span_len > 0)
    is_maybe = (non_maybe == 0) & (span_len > 0)

    first_byte = blob[span_start]
    signed = (first_byte == ord("+")) | (first_byte == ord("-"))
    digits_only = (
        is_candidate & (digit_count >= 1) & (digit_count == span_len - signed)
    )
    small_int = digits_only & ((span_len - signed) <= 18)

    int_rows = np.flatnonzero(small_int)
    if int_rows.size:
        digit_start = span_start[int_rows] + signed[int_rows]
        digit_len = span_len[int_rows] - signed[int_rows]
        window = np.arange(18, dtype=np.int64)
        gather = digit_start[:, None] + window[None, :]
        digits = blob[gather].astype(np.int64) - ord("0")
        within = window[None, :] < digit_len[:, None]
        powers = _POW10[np.clip(digit_len[:, None] - 1 - window[None, :], 0, 18)]
        magnitude = (np.where(within, digits, 0) * np.where(within, powers, 0)).sum(
            axis=1
        )
        # Negate in float64 so "-0" parses to -0.0 exactly like float("-0").
        as_float = magnitude.astype(np.float64)
        vals[int_rows] = np.where(
            first_byte[int_rows] == ord("-"), -as_float, as_float
        )
        mask[int_rows] = True

    residual = np.flatnonzero(is_candidate & ~small_int)
    if residual.size:
        payload = blob[:blob_len].tobytes()
        for row in residual.tolist():
            start = int(span_start[row])
            piece = payload[start: start + int(span_len[row])]
            try:
                vals[row] = float(piece)
                mask[row] = True
            except ValueError:
                pass

    slow = np.flatnonzero(is_maybe & ~is_candidate)
    if slow.size:
        payload = blob[:blob_len].tobytes()
        # Replicate parse_number's formatted-number pipeline byte-for-byte on
        # the common shapes (currency prefix, thousands commas, trailing
        # percents), leaving one float() per distinct; parens and magnitude
        # suffixes stay on the real parse_number.  Mirrors datatypes.py:
        #   sub(^[$€£¥]\s?) -> parens -> rstrip("%").strip() -> suffix ->
        #   replace(",", "") -> fullmatch(number) -> float()
        # Only "$" of the currency set is ASCII, the parens branch is routed
        # to Python below, and on the remaining alphabet float(bytes)
        # succeeds iff the fullmatch regex does, with the identical value.
        hard_bytes = np.bincount(
            owner[_HARDNUM_LUT[inside_bytes]], minlength=k
        )
        s_start = span_start[slow].astype(np.int64)
        s_end = s_start + span_len[slow]
        has_cur = blob[s_start] == ord("$")
        s_start = s_start + has_cur
        # ^[$€£¥]\s? — at most one regex-\s byte after the symbol (\s does
        # NOT include the C1 separators str.strip removes).
        skip_ws = has_cur & (s_start < s_end) & _PCRE_WS_LUT[blob[s_start]]
        s_start = s_start + skip_ws
        # rstrip("%"): peel the trailing percent run only.
        while True:
            trim = (s_start < s_end) & (blob[s_end - 1] == ord("%"))
            if not trim.any():
                break
            s_end = s_end - trim
        # .strip(): both ends, full str.strip whitespace set.
        while True:
            trim = (s_start < s_end) & (_CLASS_LUT[blob[s_end - 1]] == _CLS_WS)
            if not trim.any():
                break
            s_end = s_end - trim
        while True:
            trim = (s_start < s_end) & (_CLASS_LUT[blob[s_start]] == _CLS_WS)
            if not trim.any():
                break
            s_start = s_start + trim
        empty_now = s_start >= s_end
        suffix = np.isin(blob[np.maximum(s_end - 1, 0)], _MAGNITUDE_BYTES)
        hard = (hard_bytes[slow] > 0) | (~empty_now & suffix)
        for i, row in enumerate(slow.tolist()):
            if hard[i]:
                start = int(span_start[row])
                text = payload[start: start + int(span_len[row])].decode("ascii")
                number = parse_number(text)
                if number is not None:
                    vals[row] = number
                    mask[row] = True
                continue
            if empty_now[i]:
                continue
            piece = payload[int(s_start[i]): int(s_end[i])]
            if b"," in piece:
                piece = piece.replace(b",", b"")
            try:
                vals[row] = float(piece)
                mask[row] = True
            except ValueError:
                pass

    analysis.numeric_mask = mask[analysis.inv]
    analysis.numeric_vals = vals[analysis.inv]


# ----------------------------------------------------------- decoded strings


def _distinct_texts(view: ColumnView, analysis: _Analysis) -> list[str]:
    """Decoded distinct stripped strings, first-seen order (cached)."""

    if analysis.texts is None:
        if analysis.family == "ascii":
            payload = view.blob[: view.blob_len].tobytes()
            starts = analysis.dist_start
            lens = analysis.dist_len
            analysis.texts = [
                payload[int(starts[d]): int(starts[d]) + int(lens[d])].decode("ascii")
                for d in range(analysis.n_distinct)
            ]
        else:
            nn_idx = analysis.nn_idx
            analysis.texts = [
                str(view.decode(int(nn_idx[int(first)]))).strip()
                for first in analysis.first_nn
            ]
    return analysis.texts


def _most_frequent(view: ColumnView, analysis: _Analysis, k_top: int) -> list[str]:
    """Top-k distinct values ranked by (-count, first appearance)."""

    n_distinct = analysis.n_distinct
    if n_distinct == 0:
        return []
    order = np.lexsort(
        (np.arange(n_distinct, dtype=np.int64), -analysis.counts)
    )
    top = order[: k_top]
    if analysis.texts is not None:
        return [analysis.texts[int(d)] for d in top]
    if analysis.family == "ascii":
        blob = view.blob
        result = []
        for d in top:
            start = int(analysis.dist_start[int(d)])
            length = int(analysis.dist_len[int(d)])
            result.append(blob[start: start + length].tobytes().decode("ascii"))
        return result
    return [_distinct_texts(view, analysis)[int(d)] for d in top]


# ------------------------------------------------------------------ template


def _ascii_templates(
    view: ColumnView, analysis: _Analysis, max_templates: int, max_run: int = 3
) -> list[str]:
    """Per-distinct ``character_template`` via byte LUT + vectorized RLE."""

    n_distinct = analysis.n_distinct
    if n_distinct == 0:
        return []
    dist_start = analysis.dist_start
    dist_len = analysis.dist_len
    counts = analysis.counts
    total = int(dist_len.sum())
    template_counts: dict[bytes, int] = {}
    if total == 0:
        template_counts[b""] = int(counts.sum())
    else:
        seg_offsets = np.zeros(n_distinct + 1, dtype=np.int64)
        np.cumsum(dist_len, out=seg_offsets[1:])
        flat = (
            np.repeat(dist_start - seg_offsets[:-1], dist_len)
            + np.arange(total, dtype=np.int64)
        )
        symbols = _TEMPLATE_LUT[view.blob[flat]]
        seg_id = np.repeat(np.arange(n_distinct, dtype=np.int64), dist_len)
        boundary = np.ones(total, dtype=bool)
        boundary[1:] = (symbols[1:] != symbols[:-1]) | (seg_id[1:] != seg_id[:-1])
        run_start = np.flatnonzero(boundary)
        run_id = np.cumsum(boundary) - 1
        run_offset = np.arange(total, dtype=np.int64) - run_start[run_id]
        keep = run_offset <= max_run
        emitted = np.where(run_offset == max_run, np.uint8(ord("+")), symbols)[keep]
        emitted_seg = seg_id[keep]
        out_len = np.bincount(emitted_seg, minlength=n_distinct)
        out_offsets = np.zeros(n_distinct + 1, dtype=np.int64)
        np.cumsum(out_len, out=out_offsets[1:])
        template_counts = dict(
            _weighted_unique_bytes(emitted, out_offsets[:-1], out_len, counts)
        )
    # ASCII bytes compare exactly like the str they decode to, so the seed's
    # (-count, template) ranking is preserved.
    ranked = sorted(template_counts.items(), key=lambda item: (-item[1], item[0]))
    return [key.decode("ascii") for key, _ in ranked[:max_templates]]


def kernel_character_template(value: str, max_run: int = 3) -> str | None:
    """Byte-level ``character_template`` of one string (``None`` = fallback).

    Exposed for the parity test-suite; production code goes through
    :func:`kernel_profile`, which amortizes the work across all distinct
    values at once.
    """

    if not value.isascii():
        return None
    raw = value.encode("ascii")
    view = ColumnView(
        np.full(1, TAG_STR, dtype=np.uint8),
        np.array([0, len(raw)], dtype=np.int64),
        _pad_blob(raw),
    )
    analysis = _Analysis(1)
    # Template parity is defined over the exact input, not the stripped span.
    analysis.family = "ascii"
    analysis.null_mask = np.zeros(1, dtype=bool)
    analysis.nn_idx = np.zeros(1, dtype=np.int64)
    analysis.n_distinct = 1
    analysis.counts = np.ones(1, dtype=np.int64)
    analysis.first_nn = np.zeros(1, dtype=np.int64)
    analysis.inv = np.zeros(1, dtype=np.int64)
    analysis.dist_start = np.zeros(1, dtype=np.int64)
    analysis.dist_len = np.array([len(raw)], dtype=np.int64)
    templates = _ascii_templates(view, analysis, max_templates=1, max_run=max_run)
    return templates[0] if templates else ""


# ------------------------------------------------------------ structural type


#: Process-wide cache mapping digit-collapsed value signatures to their
#: structural type; cleared wholesale when it outgrows the cap.
_SIG_CACHE: dict[bytes, DataType] = {}
_SIG_CACHE_MAX = 1 << 17


def _sig_type(signature: bytes) -> DataType:
    cached = _SIG_CACHE.get(signature)
    if cached is None:
        if len(_SIG_CACHE) >= _SIG_CACHE_MAX:
            _SIG_CACHE.clear()
        cached = infer_value_type(signature.decode("ascii"))
        _SIG_CACHE[signature] = cached
    return cached


def _ascii_type_votes(view: ColumnView, analysis: _Analysis) -> dict[DataType, int]:
    """Structural-type votes per distinct value via digit-collapse signatures.

    ``infer_value_type`` is invariant under mapping every digit to ``9`` for
    ASCII text: null/bool tokens are digit-free (and ``"0"``/``"1"`` map to
    the same ``parse_bool`` special case as ``"9"``), while the date/number
    grammars only test digit *positions*.  Collapsing makes the per-signature
    cache hit rate enormous (every "123.45" shares one signature).
    """

    signatures = _SIG_LUT[view.blob[: view.blob_len]]
    votes: dict[DataType, int] = {}
    for key, weight in _weighted_unique_bytes(
        signatures, analysis.dist_start, analysis.dist_len, analysis.counts
    ):
        value_type = _sig_type(key)
        if value_type is DataType.EMPTY:  # unreachable: nulls were filtered
            continue
        votes[value_type] = votes.get(value_type, 0) + weight
    return votes


def _decide_column_type(
    counts: dict[DataType, int], total: int, threshold: float = 0.9
) -> DataType:
    """Replica of ``infer_column_type``'s vote cascade (identical arithmetic)."""

    if total == 0:
        return DataType.EMPTY

    def fraction(*types: DataType) -> float:
        return sum(counts.get(t, 0) for t in types) / total

    if fraction(DataType.INTEGER) >= threshold:
        return DataType.INTEGER
    if fraction(DataType.INTEGER, DataType.FLOAT) >= threshold:
        return DataType.FLOAT
    if fraction(DataType.BOOLEAN) >= threshold:
        return DataType.BOOLEAN
    if fraction(DataType.DATETIME) >= threshold:
        return DataType.DATETIME
    if fraction(DataType.DATE, DataType.DATETIME) >= threshold:
        return DataType.DATE
    if fraction(DataType.TEXT) >= threshold:
        return DataType.TEXT
    return DataType.MIXED


# ---------------------------------------------------------------- public ops


def kernel_data_type(view: ColumnView) -> DataType | None:
    analysis = view.analysis()
    if analysis.family is None:
        _record("data_type", False, analysis.reason)
        return None
    _record("data_type", True)
    if analysis.family == "ascii":
        votes = _ascii_type_votes(view, analysis)
    else:
        votes = analysis.scalar_type_counts
    return _decide_column_type(votes, sum(votes.values()))


def kernel_non_null_indices(view: ColumnView) -> list[int] | None:
    analysis = view.analysis()
    if analysis.family is None:
        _record("non_null", False, analysis.reason)
        return None
    _record("non_null", True)
    return analysis.nn_idx.tolist()


def kernel_non_null_count(view: ColumnView) -> int | None:
    analysis = view.analysis()
    if analysis.family is None:
        _record("null_fraction", False, analysis.reason)
        return None
    _record("null_fraction", True)
    return int(analysis.nn_idx.size)


def kernel_text_values(view: ColumnView) -> list[str] | None:
    analysis = view.analysis()
    if analysis.family is None:
        _record("text_values", False, analysis.reason)
        return None
    _record("text_values", True)
    texts = _distinct_texts(view, analysis)
    return [texts[g] for g in analysis.inv.tolist()]


def kernel_value_counts(view: ColumnView) -> dict[str, int] | None:
    analysis = view.analysis()
    if analysis.family is None:
        _record("value_counts", False, analysis.reason)
        return None
    _record("value_counts", True)
    texts = _distinct_texts(view, analysis)
    counts = analysis.counts
    return {texts[d]: int(counts[d]) for d in range(analysis.n_distinct)}


def kernel_unique_fraction(view: ColumnView) -> float | None:
    analysis = view.analysis()
    if analysis.family is None:
        _record("unique_fraction", False, analysis.reason)
        return None
    _record("unique_fraction", True)
    k = int(analysis.nn_idx.size)
    if k == 0:
        return 0.0
    return analysis.n_distinct / k


def kernel_numeric_values(view: ColumnView) -> list[float] | None:
    analysis = view.analysis()
    if analysis.family is None:
        _record("numeric_values", False, analysis.reason)
        return None
    _record("numeric_values", True)
    if analysis.family == "scalar":
        return analysis.scalar_numeric.tolist()
    _numeric_ascii(view, analysis)
    return analysis.numeric_vals[analysis.numeric_mask].tolist()


def kernel_sample_indices(view: ColumnView, k: int, seed: int | None) -> list[int] | None:
    """Raw indices replicating ``rng.sample(non_null, k)`` draw-for-draw."""

    analysis = view.analysis()
    if analysis.family is None:
        _record("sample", False, analysis.reason)
        return None
    _record("sample", True)
    nn_idx = analysis.nn_idx
    if int(nn_idx.size) <= k:
        return nn_idx.tolist()
    rng = random.Random(seed)
    # random.sample draws positions identically for any sequence of the same
    # length, so sampling positions and gathering matches the Python path.
    positions = rng.sample(range(int(nn_idx.size)), k)
    return [int(nn_idx[p]) for p in positions]


def kernel_profile(
    view: ColumnView,
    column_name: str,
    data_type: DataType,
    max_frequent: int,
    max_templates: int,
):
    """Block-native ``ColumnStatistics`` (``None`` = use the Python path)."""

    analysis = view.analysis()
    if analysis.family is None:
        _record("profile", False, analysis.reason)
        return None
    _record("profile", True)
    from repro.profiler.statistics import ColumnStatistics, _quantile

    n = analysis.n
    k = int(analysis.nn_idx.size)
    profile = ColumnStatistics(
        column_name=column_name,
        data_type=data_type,
        row_count=n,
        null_count=n - k,
        distinct_count=analysis.n_distinct,
        most_frequent_values=_most_frequent(view, analysis, max_frequent),
    )

    if analysis.family == "scalar":
        numeric = analysis.scalar_numeric.tolist()
    else:
        _numeric_ascii(view, analysis)
        numeric = analysis.numeric_vals[analysis.numeric_mask].tolist()
    if numeric and len(numeric) >= max(3, int(0.5 * k)):
        # Python's stable sorted() — not np.sort — so bit-distinct equal
        # floats (-0.0/0.0) land exactly where the seed path puts them.
        ordered = sorted(numeric)
        profile.minimum = float(ordered[0])
        profile.maximum = float(ordered[-1])
        profile.mean = float(pystats.fmean(ordered))
        profile.median = float(_quantile(ordered, 0.5))
        profile.quartile_1 = float(_quantile(ordered, 0.25))
        profile.quartile_3 = float(_quantile(ordered, 0.75))
        profile.std_dev = float(pystats.pstdev(ordered)) if len(ordered) > 1 else 0.0

    if k:
        if analysis.family == "ascii":
            _profile_text_ascii(view, analysis, profile, max_templates)
        else:
            _profile_text_scalar(view, analysis, profile, max_templates)
    return profile


def _profile_text_ascii(view, analysis, profile, max_templates: int) -> None:
    k = int(analysis.nn_idx.size)
    profile.min_length = int(analysis.dist_len.min())
    profile.max_length = int(analysis.dist_len.max())
    total_chars = int(analysis.slen.sum())
    profile.mean_length = total_chars / k
    denominator = total_chars or 1

    # Character classes over every byte inside a stripped span, counted via
    # a +1/-1 delta cumsum (duplicates contribute their own spans, so the
    # per-occurrence totals are integer-exact).
    blob_len = view.blob_len
    span_start = analysis.sstart
    span_len = analysis.slen
    nonempty = np.flatnonzero(span_len > 0)
    if nonempty.size:
        delta = np.zeros(blob_len + 1, dtype=np.int64)
        np.add.at(delta, span_start[nonempty], 1)
        np.add.at(delta, span_start[nonempty] + span_len[nonempty], -1)
        inside = np.cumsum(delta[:-1]) > 0
        class_totals = np.bincount(
            _CLASS_LUT[view.blob[:blob_len]][inside], minlength=5
        )
    else:
        class_totals = np.zeros(5, dtype=np.int64)
    digits = int(class_totals[_CLS_DIGIT])
    alphas = int(class_totals[_CLS_UPPER] + class_totals[_CLS_LOWER])
    spaces = int(class_totals[_CLS_WS])
    profile.digit_fraction = digits / denominator
    profile.alpha_fraction = alphas / denominator
    profile.whitespace_fraction = spaces / denominator
    profile.punctuation_fraction = max(
        0.0,
        1.0
        - profile.digit_fraction
        - profile.alpha_fraction
        - profile.whitespace_fraction,
    )
    profile.common_templates = _ascii_templates(view, analysis, max_templates)


def _profile_text_scalar(view, analysis, profile, max_templates: int) -> None:
    from repro.profiler.statistics import character_template

    texts = _distinct_texts(view, analysis)
    counts = analysis.counts
    k = int(analysis.nn_idx.size)
    lengths = [len(text) for text in texts]
    profile.min_length = min(lengths)
    profile.max_length = max(lengths)
    total_chars = sum(
        lengths[d] * int(counts[d]) for d in range(analysis.n_distinct)
    )
    profile.mean_length = total_chars / k
    denominator = total_chars or 1
    digits = alphas = spaces = 0
    template_counts: dict[str, int] = {}
    for d, text in enumerate(texts):
        count = int(counts[d])
        digits += count * sum(char.isdigit() for char in text)
        alphas += count * sum(char.isalpha() for char in text)
        spaces += count * sum(char.isspace() for char in text)
        template = character_template(text)
        template_counts[template] = template_counts.get(template, 0) + count
    profile.digit_fraction = digits / denominator
    profile.alpha_fraction = alphas / denominator
    profile.whitespace_fraction = spaces / denominator
    profile.punctuation_fraction = max(
        0.0,
        1.0
        - profile.digit_fraction
        - profile.alpha_fraction
        - profile.whitespace_fraction,
    )
    ranked = sorted(template_counts.items(), key=lambda item: (-item[1], item[0]))
    profile.common_templates = [template for template, _ in ranked[:max_templates]]
