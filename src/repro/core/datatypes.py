"""Primitive (structural) data types and inference over raw cell values.

Semantic column type detection (the paper's task) sits on top of a much more
basic capability: deciding whether a column holds integers, floats, dates,
booleans, or free text.  Commercial systems such as Trifacta and Tableau call
these *data types* as opposed to *semantic types*; SigmaTyper uses them to
route columns to the right labeling functions and featurizers (numeric
profilers for numeric columns, text features for textual columns).

The functions here operate on *raw cell strings* exactly as they would arrive
from a CSV export of a database table: values may carry currency symbols,
thousands separators, surrounding whitespace, or be missing entirely.
"""

from __future__ import annotations

import math
import re
from enum import Enum
from typing import Iterable, Sequence

__all__ = [
    "DataType",
    "NULL_TOKENS",
    "is_null",
    "parse_bool",
    "parse_number",
    "parse_date",
    "infer_value_type",
    "infer_column_type",
    "coerce_numeric",
]


class DataType(str, Enum):
    """Structural type of a column, inferred from its raw values."""

    TEXT = "text"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"
    DATETIME = "datetime"
    EMPTY = "empty"
    MIXED = "mixed"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type can be treated as numbers."""
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_temporal(self) -> bool:
        """Whether values of this type encode points in time."""
        return self in (DataType.DATE, DataType.DATETIME)


#: Cell contents treated as missing values during inference and profiling.
NULL_TOKENS = frozenset(
    {"", "na", "n/a", "nan", "null", "none", "nil", "-", "--", "?", "missing", "#n/a"}
)

_TRUE_TOKENS = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_TOKENS = frozenset({"false", "f", "no", "n", "0"})

_INT_RE = re.compile(r"^[+-]?\d{1,3}(,\d{3})*$|^[+-]?\d+$")
_FLOAT_RE = re.compile(
    r"^[+-]?(\d{1,3}(,\d{3})*|\d+)?(\.\d+)?([eE][+-]?\d+)?%?$"
)
_CURRENCY_RE = re.compile(r"^[\$€£¥]\s?")
_DATE_RES = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}$"),
    re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$"),
    re.compile(r"^\d{1,2}-\d{1,2}-\d{2,4}$"),
    re.compile(r"^\d{4}/\d{1,2}/\d{1,2}$"),
    re.compile(
        r"^\d{1,2}\s+(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\s+\d{4}$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\s+\d{1,2},?\s+\d{4}$",
        re.IGNORECASE,
    ),
)
_DATETIME_RE = re.compile(
    r"^\d{4}-\d{1,2}-\d{1,2}[ T]\d{1,2}:\d{2}(:\d{2})?(\.\d+)?(Z|[+-]\d{2}:?\d{2})?$"
)
_TIME_RE = re.compile(r"^\d{1,2}:\d{2}(:\d{2})?$")


def is_null(value: object) -> bool:
    """Return ``True`` when *value* should be treated as a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    text = str(value).strip().lower()
    return text in NULL_TOKENS


def parse_bool(value: object) -> bool | None:
    """Parse a cell as a boolean, returning ``None`` when it is not one.

    Bare ``"0"``/``"1"`` are *not* treated as booleans here because integer id
    and count columns would otherwise be mis-typed; column-level inference
    handles the purely-binary-numeric case separately.
    """
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("0", "1"):
        return None
    if text in _TRUE_TOKENS:
        return True
    if text in _FALSE_TOKENS:
        return False
    return None


def parse_number(value: object) -> float | None:
    """Parse a cell as a number, tolerating currency symbols and separators.

    Returns ``None`` when the value cannot be interpreted numerically.
    Percentages (``"12.5%"``) are returned as their face value (``12.5``).
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return None if isinstance(value, float) and math.isnan(value) else float(value)
    text = str(value).strip()
    if not text or text.lower() in NULL_TOKENS:
        return None
    text = _CURRENCY_RE.sub("", text)
    negative = False
    if text.startswith("(") and text.endswith(")"):
        negative = True
        text = text[1:-1]
    text = text.rstrip("%").strip()
    # Magnitude suffixes common in enterprise exports: 50K, 3.2M, 1B.
    multiplier = 1.0
    if text and text[-1] in "kKmMbB" and len(text) > 1:
        suffix = text[-1].lower()
        candidate = text[:-1]
        if re.fullmatch(r"[+-]?[\d,]*\.?\d+", candidate):
            multiplier = {"k": 1e3, "m": 1e6, "b": 1e9}[suffix]
            text = candidate
    text = text.replace(",", "")
    if not re.fullmatch(r"[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?", text):
        return None
    try:
        number = float(text) * multiplier
    except ValueError:  # pragma: no cover - regex should prevent this
        return None
    return -number if negative else number


def parse_date(value: object) -> str | None:
    """Return a normalized marker (``"date"``/``"datetime"``) or ``None``.

    SigmaTyper only needs to know *that* a value is temporal, not its exact
    timestamp, so this parser classifies rather than converts.
    """
    text = str(value).strip()
    if not text:
        return None
    if _DATETIME_RE.match(text):
        return "datetime"
    for pattern in _DATE_RES:
        if pattern.match(text):
            return "date"
    return None


def infer_value_type(value: object) -> DataType:
    """Infer the structural type of a single cell value."""
    if is_null(value):
        return DataType.EMPTY
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    text = str(value).strip()
    if parse_bool(text) is not None:
        return DataType.BOOLEAN
    temporal = parse_date(text)
    if temporal == "datetime":
        return DataType.DATETIME
    if temporal == "date":
        return DataType.DATE
    number = parse_number(text)
    if number is not None:
        stripped = _CURRENCY_RE.sub("", text).replace(",", "").rstrip("%")
        if re.fullmatch(r"[+-]?\d+", stripped):
            return DataType.INTEGER
        return DataType.FLOAT
    return DataType.TEXT


def infer_column_type(values: Sequence[object], threshold: float = 0.9) -> DataType:
    """Infer the structural type of a column from its values.

    A column is assigned a non-text type when at least *threshold* of its
    non-null values agree on that type; integer and float votes are merged
    into :data:`DataType.FLOAT` when both are present.  Columns whose values
    disagree are :data:`DataType.MIXED`; columns with no non-null values are
    :data:`DataType.EMPTY`.
    """
    counts: dict[DataType, int] = {}
    total = 0
    for value in values:
        value_type = infer_value_type(value)
        if value_type is DataType.EMPTY:
            continue
        counts[value_type] = counts.get(value_type, 0) + 1
        total += 1
    if total == 0:
        return DataType.EMPTY

    def fraction(*types: DataType) -> float:
        return sum(counts.get(t, 0) for t in types) / total

    if fraction(DataType.INTEGER) >= threshold:
        return DataType.INTEGER
    if fraction(DataType.INTEGER, DataType.FLOAT) >= threshold:
        return DataType.FLOAT
    if fraction(DataType.BOOLEAN) >= threshold:
        return DataType.BOOLEAN
    if fraction(DataType.DATETIME) >= threshold:
        return DataType.DATETIME
    if fraction(DataType.DATE, DataType.DATETIME) >= threshold:
        return DataType.DATE
    if fraction(DataType.TEXT) >= threshold:
        return DataType.TEXT
    return DataType.MIXED


def coerce_numeric(values: Iterable[object]) -> list[float]:
    """Return the numeric interpretations of *values*, dropping non-numbers."""
    numbers = []
    for value in values:
        number = parse_number(value)
        if number is not None:
            numbers.append(number)
    return numbers
