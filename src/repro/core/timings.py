"""Per-stage wall-clock attribution for the annotation cascade.

``stage("profile")`` context-manages a named stage; totals are *exclusive*:
time spent inside a nested stage is subtracted from the enclosing one, so
``classify`` does not double-count the ``featurize`` work it triggers, and
re-entrant same-stage nesting (``match`` calling ``match``) sums to the true
elapsed time exactly once.

The accumulator is process-global and thread-safe (per-thread stage stacks,
locked totals), so threaded backends attribute correctly.  Multiprocess
workers accumulate in their own process; the parent's snapshot covers the
parent-side stages only.

``SigmaTyper.summary()["timings"]`` surfaces :func:`stage_timings`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["StageTimer", "stage", "stage_timings", "reset_stage_timings"]


class StageTimer:
    """Accumulates exclusive seconds and call counts per named stage."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._totals: dict[str, list[float]] = {}  # name -> [seconds, calls]
        self._local = threading.local()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        # frame = [start, child_seconds]
        frame = [time.perf_counter(), 0.0]
        stack.append(frame)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - frame[0]
            stack.pop()
            if stack:
                stack[-1][1] += elapsed
            exclusive = elapsed - frame[1]
            with self._lock:
                bucket = self._totals.setdefault(name, [0.0, 0])
                bucket[0] += exclusive
                bucket[1] += 1

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        with self._lock:
            return {
                name: {"seconds": bucket[0], "calls": int(bucket[1])}
                for name, bucket in sorted(self._totals.items())
            }

    def reset(self) -> None:
        with self._lock:
            self._totals.clear()


_GLOBAL_TIMER = StageTimer()


def stage(name: str):
    """Context manager: attribute the enclosed wall-clock to ``name``."""

    return _GLOBAL_TIMER.stage(name)


def stage_timings() -> dict[str, dict[str, float | int]]:
    """Snapshot of per-stage exclusive seconds and call counts."""

    return _GLOBAL_TIMER.snapshot()


def reset_stage_timings() -> None:
    _GLOBAL_TIMER.reset()
