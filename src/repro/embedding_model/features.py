"""Column and table-context featurization for the learned model.

The paper's third pipeline step embeds the table with a pretrained TaBERT
model finetuned for column type detection.  The offline substitute keeps the
same contract — "a learned, high-capacity model that looks at the column's
values *and* the surrounding table" — but computes the representation
explicitly, in the spirit of Sherlock (per-column statistics and character
features plus value text embeddings) and Sato (table-context features):

* distributional statistics from the profiler (null/unique fractions, numeric
  moments on a log scale, text length statistics, character-class mix),
* a structural data-type one-hot,
* boolean shape flags over sampled values (looks like an email, URL, date,
  currency amount, code, ...),
* a subword embedding of the sampled values (and optionally the header),
* table-context aggregates over the *other* columns of the table.

The featurizer produces a fixed-length ``float64`` vector regardless of
whether table context is available, so one trained model serves both
single-column and full-table inference.
"""

from __future__ import annotations

import hashlib
import math
import re
from dataclasses import dataclass

import numpy as np

from repro.core.datatypes import DataType
from repro.core.table import Column, Table
from repro.core.timings import stage
from repro.matching.embeddings import SubwordEmbedder
from repro.profiler.statistics import profile_column

__all__ = ["FeaturizerConfig", "ColumnFeaturizer"]

_DATA_TYPES = list(DataType)

_SHAPE_PATTERNS: list[tuple[str, re.Pattern[str]]] = [
    ("email", re.compile(r"[^@\s]+@[^@\s]+\.[a-zA-Z]{2,}")),
    ("url", re.compile(r"https?://")),
    ("numeric", re.compile(r"^-?[\d,]+(\.\d+)?$")),
    ("currency", re.compile(r"^[\$€£¥]")),
    ("percent", re.compile(r"%$")),
    ("date_like", re.compile(r"^\d{4}-\d{2}-\d{2}")),
    ("slash_date", re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$")),
    ("time_like", re.compile(r"\d{1,2}:\d{2}")),
    ("code_like", re.compile(r"^[A-Z0-9][A-Z0-9\-_/]{1,14}$")),
    ("uuid_like", re.compile(r"^[0-9a-f]{8}-[0-9a-f]{4}")),
    ("phone_like", re.compile(r"^[+(]?\d[\d\s().-]{6,}$")),
    ("ip_like", re.compile(r"^(\d{1,3}\.){3}\d{1,3}$")),
    ("has_space", re.compile(r"\s")),
    ("title_case", re.compile(r"^[A-Z][a-z]+( [A-Z][a-z]+)*$")),
    ("all_upper", re.compile(r"^[A-Z]{2,}$")),
    ("single_char", re.compile(r"^.$")),
]

#: Cap on the per-featurizer shape-mask cache (cleared wholesale when full).
_SHAPE_MASK_CACHE_MAX = 65536


def _signed_log(value: float) -> float:
    """Compress unbounded numeric statistics onto a well-behaved scale."""
    return math.copysign(math.log1p(abs(value)), value)


@dataclass
class FeaturizerConfig:
    """Tuning knobs of :class:`ColumnFeaturizer`."""

    #: How many non-null values are sampled for the shape and embedding features.
    value_sample_size: int = 20
    #: Include the subword embedding of the column header.
    include_header: bool = True
    #: Include table-context aggregates over the other columns.
    include_table_context: bool = True
    #: Sampling seed (fixed so featurization is deterministic).
    seed: int = 11


class ColumnFeaturizer:
    """Turns a column (plus optional table context) into a fixed-length vector."""

    def __init__(
        self,
        embedder: SubwordEmbedder | None = None,
        config: FeaturizerConfig | None = None,
    ) -> None:
        self.config = config or FeaturizerConfig()
        self.embedder = embedder or SubwordEmbedder()
        self._embedding_dim = self.embedder.dim
        self._statistical_dim = 22
        self._type_dim = len(_DATA_TYPES)
        self._shape_dim = len(_SHAPE_PATTERNS)
        self._context_dim = 8 if self.config.include_table_context else 0
        self._header_dim = self._embedding_dim if self.config.include_header else 0
        #: value → 0/1 pattern-hit vector; values repeat across columns and
        #: tables, so shape matching mostly becomes a dictionary lookup.
        self._shape_mask_cache: dict[str, np.ndarray] = {}
        #: Lazily computed digest namespacing this featurizer's memoized
        #: per-column feature vectors inside the column's derived-state cache
        #: (and therefore inside a shared profile store).  See
        #: :meth:`cache_token`.
        self._cache_token: str | None = None
        self._cache_token_fingerprint: tuple | None = None

    def cache_token(self) -> str:
        """A stable digest of everything (besides column content) the memoized
        feature prefix depends on: the embedder's structure and learned word
        vectors plus the shape/statistics code contract.

        Two featurizers with byte-identical embedder state produce identical
        feature vectors, so they *should* share warm profile-store entries —
        including entries persisted to disk by an earlier process.  That is
        what makes a :class:`~repro.serving.profile_store.PersistentProfileStore`
        useful across restarts: deterministic pretraining rebuilds the same
        embedder, the token matches, and the stored feature vectors are served
        instead of recomputed.  Featurizers with different learned state never
        collide.  The token is recomputed if the embedder is refit in place
        (callers should still ``clear()`` any active store after retraining,
        as its other derived entries may be stale too).
        """
        embedder = self.embedder
        fingerprint = (
            embedder.is_fitted,
            len(embedder._word_vectors),  # noqa: SLF001
            getattr(embedder, "_fit_version", 0),
        )
        if self._cache_token is None or self._cache_token_fingerprint != fingerprint:
            hasher = hashlib.blake2b(digest_size=8)
            hasher.update(
                repr(
                    (
                        embedder.ngram_dim,
                        embedder.context_dim,
                        embedder.ngram_range,
                        embedder.is_fitted,
                    )
                ).encode("utf-8")
            )
            for token in sorted(embedder._word_vectors):  # noqa: SLF001
                hasher.update(token.encode("utf-8", "surrogatepass"))
                hasher.update(np.ascontiguousarray(embedder._word_vectors[token]).tobytes())  # noqa: SLF001
            self._cache_token = hasher.hexdigest()
            self._cache_token_fingerprint = fingerprint
        return self._cache_token

    # ------------------------------------------------------------------- shape
    @property
    def dim(self) -> int:
        """Length of the produced feature vectors."""
        return (
            self._statistical_dim
            + self._type_dim
            + self._shape_dim
            + self._embedding_dim
            + self._header_dim
            + self._context_dim
        )

    @property
    def feature_groups(self) -> dict[str, int]:
        """Named feature blocks and their widths (documentation/debugging aid)."""
        groups = {
            "statistics": self._statistical_dim,
            "data_type": self._type_dim,
            "value_shapes": self._shape_dim,
            "value_embedding": self._embedding_dim,
        }
        if self.config.include_header:
            groups["header_embedding"] = self._header_dim
        if self.config.include_table_context:
            groups["table_context"] = self._context_dim
        return groups

    # ----------------------------------------------------------------- extract
    def extract(self, column: Column, table: Table | None = None) -> np.ndarray:
        """Featurize one column (optionally in its table context).

        The column-local blocks (everything except table context) are a pure
        function of the column's content and this featurizer's configuration,
        so they are memoized on the column — and shared across short-lived
        column instances when a profile store is active.  Only the cheap
        context block depends on the surrounding table.
        """
        with stage("featurize"):
            blocks = [self._column_features(column)]
            if self.config.include_table_context:
                blocks.append(self._context_features(column, table))
            return np.concatenate(blocks)

    def _column_features(self, column: Column) -> np.ndarray:
        """The memoized table-independent feature prefix (treat as read-only)."""
        key = (
            "column_features",
            self.cache_token(),
            self.config.value_sample_size,
            self.config.seed,
            self.config.include_header,
        )
        return column._memo(key, lambda: self._compute_column_features(column))  # noqa: SLF001

    def _compute_column_features(self, column: Column) -> np.ndarray:
        # Sample once and share between the shape and embedding blocks (the
        # sample itself is additionally memoized on the column).
        values = self._sample_values(column)
        blocks = [
            self._statistical_features(column),
            self._data_type_features(column),
            self._shape_features(values),
            self._value_embedding(values),
        ]
        if self.config.include_header:
            blocks.append(self.embedder.embed_text(column.name))
        return np.concatenate(blocks)

    def extract_many(
        self, columns: list[tuple[Column, Table | None]]
    ) -> np.ndarray:
        """Featurize a batch of ``(column, table)`` pairs into one matrix.

        The batch path assembles exactly the same per-column blocks as
        :meth:`extract` (rows are bitwise identical), but amortises the shared
        work: column profiles are memoized, values are sampled once per
        column, per-value shape masks and phrase embeddings are cached across
        the whole batch, and a single allocation holds the output matrix.
        """
        with stage("featurize"):
            if not columns:
                return np.zeros((0, self.dim), dtype=np.float64)
            matrix = np.empty((len(columns), self.dim), dtype=np.float64)
            for row, (column, table) in enumerate(columns):
                matrix[row] = self.extract(column, table)
            return matrix

    # ----------------------------------------------------------------- blocks
    def _statistical_features(self, column: Column) -> np.ndarray:
        profile = profile_column(column)
        numeric = [
            profile.minimum, profile.maximum, profile.mean, profile.median,
            profile.std_dev, profile.quartile_1, profile.quartile_3,
        ]
        numeric_features = [
            _signed_log(value) if value is not None else 0.0 for value in numeric
        ]
        return np.array(
            [
                profile.null_fraction,
                profile.unique_fraction,
                math.log1p(profile.distinct_count),
                math.log1p(profile.row_count),
                1.0 if profile.is_numeric else 0.0,
                *numeric_features,
                math.log1p(profile.min_length),
                math.log1p(profile.max_length),
                math.log1p(profile.mean_length),
                profile.digit_fraction,
                profile.alpha_fraction,
                profile.whitespace_fraction,
                profile.punctuation_fraction,
                1.0 if profile.looks_categorical else 0.0,
                1.0 if profile.looks_like_identifier else 0.0,
                float(len(profile.common_templates)),
            ],
            dtype=np.float64,
        )

    def _data_type_features(self, column: Column) -> np.ndarray:
        encoded = np.zeros(self._type_dim, dtype=np.float64)
        encoded[_DATA_TYPES.index(column.data_type)] = 1.0
        return encoded

    def _sample_values(self, column: Column) -> list[str]:
        sample = column.sample(self.config.value_sample_size, seed=self.config.seed)
        return [str(value).strip() for value in sample]

    def _shape_mask(self, value: str) -> np.ndarray:
        """0/1 hits of *value* against every shape pattern (cached per value)."""
        mask = self._shape_mask_cache.get(value)
        if mask is None:
            mask = np.fromiter(
                (1.0 if pattern.search(value) else 0.0 for _, pattern in _SHAPE_PATTERNS),
                dtype=np.float64,
                count=self._shape_dim,
            )
            if len(self._shape_mask_cache) >= _SHAPE_MASK_CACHE_MAX:
                self._shape_mask_cache.clear()
            self._shape_mask_cache[value] = mask
        return mask

    def _shape_features(self, values: list[str]) -> np.ndarray:
        if not values:
            return np.zeros(self._shape_dim, dtype=np.float64)
        # Summing cached 0/1 masks is integer-exact, so this matches the
        # original per-pattern counting loop bitwise.
        stacked = np.vstack([self._shape_mask(value) for value in values])
        return stacked.sum(axis=0) / len(values)

    def _value_embedding(self, values: list[str]) -> np.ndarray:
        if not values:
            return np.zeros(self._embedding_dim, dtype=np.float64)
        embeddings = [self.embedder.embed_text(value) for value in values]
        mean = np.mean(embeddings, axis=0)
        norm = np.linalg.norm(mean)
        return mean / norm if norm > 0 else mean

    def _context_features(self, column: Column, table: Table | None) -> np.ndarray:
        features = np.zeros(self._context_dim, dtype=np.float64)
        if table is None or table.num_columns <= 1:
            return features
        neighbors = [other for other in table.columns if other is not column]
        if not neighbors:
            return features
        type_counts = {data_type: 0 for data_type in _DATA_TYPES}
        unique_fractions = []
        null_fractions = []
        for neighbor in neighbors:
            type_counts[neighbor.data_type] += 1
            unique_fractions.append(neighbor.unique_fraction())
            null_fractions.append(neighbor.null_fraction())
        total = len(neighbors)
        features[0] = math.log1p(table.num_columns)
        features[1] = math.log1p(table.num_rows)
        features[2] = (type_counts[DataType.INTEGER] + type_counts[DataType.FLOAT]) / total
        features[3] = type_counts[DataType.TEXT] / total
        features[4] = (type_counts[DataType.DATE] + type_counts[DataType.DATETIME]) / total
        features[5] = type_counts[DataType.BOOLEAN] / total
        features[6] = float(np.mean(unique_fractions))
        features[7] = float(np.mean(null_fractions))
        return features
