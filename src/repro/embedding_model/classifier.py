"""The learned table-embedding column type classifier (step 3 of Fig. 4).

This is the offline stand-in for "a pretrained TaBERT model [whose]
parameters [were trained] towards GitTables and finetuned to enable semantic
column type detection": a feature-based table encoder feeding a numpy MLP.
It keeps the three properties the pipeline relies on:

* it covers the whole ontology (high coverage, learned from the corpus);
* it produces calibrated-ish class probabilities used as confidences;
* it has an explicit ``unknown`` background class for out-of-distribution
  columns (Section 4.3), trained from a background corpus.

The classifier can be *finetuned* with additional weakly-labeled examples
(warm-start training), which is how the DPBD loop adapts local models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ModelNotTrainedError
from repro.core.ontology import UNKNOWN_TYPE
from repro.core.prediction import TypeScore
from repro.core.table import Column, Table
from repro.core.timings import stage
from repro.corpus.collection import TableCorpus
from repro.embedding_model.dataset import ColumnDataset, LabelVocabulary, build_dataset
from repro.embedding_model.features import ColumnFeaturizer
from repro.nn.model import MLPClassifier, MLPConfig

__all__ = ["TableEmbeddingClassifier"]


@dataclass
class _FitReport:
    """Summary of one fit/finetune call (returned for logging and tests)."""

    num_examples: int
    num_classes: int
    epochs: int
    final_train_accuracy: float
    final_validation_accuracy: float | None


class TableEmbeddingClassifier:
    """Featurizer + MLP classifier over the semantic type vocabulary."""

    def __init__(
        self,
        featurizer: ColumnFeaturizer | None = None,
        mlp_config: MLPConfig | None = None,
    ) -> None:
        self.featurizer = featurizer or ColumnFeaturizer()
        self.mlp_config = mlp_config or MLPConfig()
        self.vocabulary: LabelVocabulary | None = None
        self.model: MLPClassifier | None = None
        self.last_fit_report: _FitReport | None = None

    # ---------------------------------------------------------------- training
    def fit(
        self,
        corpus: TableCorpus,
        background_corpus: TableCorpus | None = None,
        vocabulary: LabelVocabulary | None = None,
        backend=None,
    ) -> "_FitReport":
        """Train from scratch on an annotated corpus.

        ``background_corpus`` columns are labeled ``unknown`` so the model
        learns an explicit out-of-distribution class.  ``backend`` optionally
        shards the corpus featurization pass across an execution backend
        (features stay bit-identical to the serial pass).
        """
        dataset = build_dataset(
            corpus,
            self.featurizer,
            vocabulary=vocabulary,
            background_corpus=background_corpus,
            backend=backend,
        )
        return self._fit_dataset(dataset, warm_start=False)

    def finetune(
        self,
        examples: Sequence[tuple[Column, Table | None, str]],
        epochs: int = 10,
    ) -> "_FitReport":
        """Continue training on weakly-labeled ``(column, table, label)`` triples.

        Labels outside the existing vocabulary are mapped to ``unknown`` when
        that class exists and are dropped otherwise; extending the label space
        itself is the job of the local model's labeling functions, not of the
        neural classifier (see :mod:`repro.adaptation`).
        """
        if self.model is None or self.vocabulary is None:
            raise ModelNotTrainedError("finetune called before fit")
        rows: list[tuple[Column, Table | None]] = []
        labels: list[int] = []
        for column, table, label in examples:
            if label in self.vocabulary:
                labels.append(self.vocabulary.index_of(label))
            elif self.vocabulary.unknown_index is not None:
                labels.append(self.vocabulary.unknown_index)
            else:
                continue
            rows.append((column, table))
        if not rows:
            return _FitReport(0, len(self.vocabulary), 0, 0.0, None)
        features = self.featurizer.extract_many(rows)
        history = self.model.fit(
            features, np.asarray(labels, dtype=np.int64), warm_start=True, max_epochs=epochs
        )
        report = _FitReport(
            num_examples=len(rows),
            num_classes=len(self.vocabulary),
            epochs=history.epochs,
            final_train_accuracy=history.train_accuracy[-1] if history.train_accuracy else 0.0,
            final_validation_accuracy=(
                history.validation_accuracy[-1] if history.validation_accuracy else None
            ),
        )
        self.last_fit_report = report
        return report

    def _fit_dataset(self, dataset: ColumnDataset, warm_start: bool) -> "_FitReport":
        self.vocabulary = dataset.vocabulary
        self.model = MLPClassifier(
            num_features=self.featurizer.dim,
            num_classes=max(len(dataset.vocabulary), 2),
            config=self.mlp_config,
        )
        history = self.model.fit(dataset.features, dataset.labels, warm_start=warm_start)
        report = _FitReport(
            num_examples=len(dataset),
            num_classes=len(dataset.vocabulary),
            epochs=history.epochs,
            final_train_accuracy=history.train_accuracy[-1] if history.train_accuracy else 0.0,
            final_validation_accuracy=(
                history.validation_accuracy[-1] if history.validation_accuracy else None
            ),
        )
        self.last_fit_report = report
        return report

    # --------------------------------------------------------------- inference
    @property
    def is_fitted(self) -> bool:
        """Whether the classifier has been trained."""
        return self.model is not None and self.model.is_fitted

    def _require_fitted(self) -> tuple[MLPClassifier, LabelVocabulary]:
        if self.model is None or self.vocabulary is None or not self.model.is_fitted:
            raise ModelNotTrainedError("TableEmbeddingClassifier used before fit")
        return self.model, self.vocabulary

    def predict_proba(self, column: Column, table: Table | None = None) -> dict[str, float]:
        """Class probabilities for one column as ``{type: probability}``."""
        with stage("classify"):
            model, vocabulary = self._require_fitted()
            features = self.featurizer.extract(column, table)
            probabilities = model.predict_proba(features[None, :])[0]
            return {
                vocabulary.type_at(index): float(p) for index, p in enumerate(probabilities)
            }

    def predict_proba_batch(
        self, rows: Sequence[tuple[Column, Table | None]]
    ) -> np.ndarray:
        """Class probabilities for a batch of ``(column, table)`` pairs.

        Featurizes the whole batch with
        :meth:`~repro.embedding_model.features.ColumnFeaturizer.extract_many`
        and issues **one** MLP forward pass, returning an array of shape
        ``(len(rows), num_classes)`` whose column order follows the label
        vocabulary.  This is the pipeline's hot path: one forward per table
        instead of one per column.
        """
        with stage("classify"):
            model, _ = self._require_fitted()
            if not rows:
                return np.zeros((0, len(self.vocabulary or [])), dtype=np.float64)
            features = self.featurizer.extract_many(list(rows))
            return model.predict_proba(features)

    def predict_columns_batch(
        self, rows: Sequence[tuple[Column, Table | None]], top_k: int = 5
    ) -> list[list[TypeScore]]:
        """Ranked :class:`TypeScore` candidates for a batch of columns.

        Semantics match calling :meth:`predict_column` per column (same
        ranking and tie-breaking), but all probabilities come from a single
        batched forward pass.
        """
        _, vocabulary = self._require_fitted()
        probabilities = self.predict_proba_batch(rows)
        types = list(vocabulary.types)
        ranked_rows: list[list[TypeScore]] = []
        for row in probabilities:
            scores = [
                TypeScore(confidence=float(probability), type_name=type_name)
                for type_name, probability in zip(types, row)
            ]
            scores.sort(key=lambda s: (-s.confidence, s.type_name))
            ranked_rows.append(scores[:top_k])
        return ranked_rows

    def predict_logits(self, column: Column, table: Table | None = None) -> np.ndarray:
        """Raw logits for one column (used by the energy-based OOD score)."""
        model, _ = self._require_fitted()
        features = self.featurizer.extract(column, table)
        return model.predict_logits(features[None, :])[0]

    def predict_column(
        self, column: Column, table: Table | None = None, top_k: int = 5
    ) -> list[TypeScore]:
        """Ranked :class:`TypeScore` candidates for one column."""
        probabilities = self.predict_proba(column, table)
        scores = [
            TypeScore(confidence=probability, type_name=type_name)
            for type_name, probability in probabilities.items()
        ]
        scores.sort(key=lambda s: (-s.confidence, s.type_name))
        return scores[:top_k]

    def predict_type(self, column: Column, table: Table | None = None) -> str:
        """Single best type (may be :data:`UNKNOWN_TYPE`)."""
        scores = self.predict_column(column, table, top_k=1)
        return scores[0].type_name if scores else UNKNOWN_TYPE

    def known_types(self) -> list[str]:
        """The semantic types the classifier can output."""
        _, vocabulary = self._require_fitted()
        return list(vocabulary.types)

    # ----------------------------------------------------------------- weights
    def snapshot_weights(self) -> list[np.ndarray]:
        """Copy of the underlying network weights (for local-model cloning)."""
        model, _ = self._require_fitted()
        return model.get_weights()

    def restore_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Restore weights captured with :meth:`snapshot_weights`."""
        model, _ = self._require_fitted()
        model.set_weights(list(weights))
