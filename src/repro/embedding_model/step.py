"""Table-embedding pipeline step (step 3 of Fig. 4).

The slowest, highest-coverage step of the cascade: it wraps a trained
:class:`~repro.embedding_model.classifier.TableEmbeddingClassifier` and is
only executed for the columns whose confidence from header matching and value
lookup stayed below the cascade threshold.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ModelNotTrainedError
from repro.core.pipeline import PipelineStep
from repro.core.prediction import TypeScore
from repro.core.table import Table
from repro.embedding_model.classifier import TableEmbeddingClassifier

__all__ = ["TableEmbeddingStep"]


class TableEmbeddingStep(PipelineStep):
    """Learned model over column features and table context."""

    name = "table_embedding"
    cost_rank = 2

    def __init__(self, classifier: TableEmbeddingClassifier, top_k: int = 5) -> None:
        if not classifier.is_fitted:
            raise ModelNotTrainedError(
                "TableEmbeddingStep requires an already-trained TableEmbeddingClassifier"
            )
        self.classifier = classifier
        self.top_k = top_k

    def predict_columns(
        self, table: Table, column_indices: Sequence[int] | None = None
    ) -> dict[int, list[TypeScore]]:
        """Predict ranked candidates for the addressed columns of *table*.

        All addressed columns are featurized together and classified with a
        single batched MLP forward pass instead of one forward per column.
        """
        indices = (
            list(range(table.num_columns)) if column_indices is None else list(column_indices)
        )
        rows = [(table.columns[index], table) for index in indices]
        ranked = self.classifier.predict_columns_batch(rows, top_k=self.top_k)
        return dict(zip(indices, ranked))
