"""Out-of-distribution detection for the learned classifier.

Challenge 2.3 of the paper: "Upon encountering tables and labels that are far
from the training data, the system should avoid inferring labels for it."
SigmaTyper handles this in two complementary ways, both implemented here:

* the classifier is trained with an explicit ``unknown`` background class
  (see :mod:`repro.embedding_model.dataset`), and
* confidence-based scores over the classifier's outputs — maximum softmax
  probability, predictive entropy, and the energy score — are thresholded by
  an :class:`OODDetector` calibrated on held-out in-distribution columns.

The module also provides a numpy AUROC implementation used by the OOD
benchmark (E7 in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import ConfigurationError, ModelNotTrainedError
from repro.core.ontology import UNKNOWN_TYPE
from repro.core.table import Column, Table
from repro.embedding_model.classifier import TableEmbeddingClassifier

__all__ = [
    "max_softmax_score",
    "entropy_score",
    "energy_score",
    "auroc",
    "OODDetector",
]


def max_softmax_score(probabilities: Sequence[float]) -> float:
    """Maximum softmax probability; low values indicate OOD inputs."""
    values = list(probabilities)
    if not values:
        return 0.0
    return float(max(values))


def entropy_score(probabilities: Sequence[float]) -> float:
    """Normalised predictive entropy in ``[0, 1]``; high values indicate OOD."""
    values = [p for p in probabilities if p > 0.0]
    if len(values) <= 1:
        return 0.0
    entropy = -sum(p * math.log(p) for p in values)
    return float(entropy / math.log(len(probabilities)))


def energy_score(logits: Sequence[float], temperature: float = 1.0) -> float:
    """Energy score ``-T * logsumexp(logits / T)``; high values indicate OOD."""
    if temperature <= 0:
        raise ConfigurationError("temperature must be positive")
    array = np.asarray(list(logits), dtype=np.float64)
    if array.size == 0:
        return 0.0
    scaled = array / temperature
    maximum = float(scaled.max())
    log_sum_exp = maximum + math.log(float(np.exp(scaled - maximum).sum()))
    return float(-temperature * log_sum_exp)


def auroc(in_distribution_scores: Iterable[float], ood_scores: Iterable[float]) -> float:
    """Area under the ROC curve for "higher score ⇒ more out-of-distribution".

    Computed with the Mann–Whitney U statistic (ties counted as half).
    Returns 0.5 when either side is empty.
    """
    positives = np.asarray(list(ood_scores), dtype=np.float64)
    negatives = np.asarray(list(in_distribution_scores), dtype=np.float64)
    if positives.size == 0 or negatives.size == 0:
        return 0.5
    greater = (positives[:, None] > negatives[None, :]).sum()
    ties = (positives[:, None] == negatives[None, :]).sum()
    return float((greater + 0.5 * ties) / (positives.size * negatives.size))


@dataclass
class _Calibration:
    method: str
    threshold: float


class OODDetector:
    """Flags columns the learned classifier should not label.

    The detector combines the classifier's own ``unknown`` class with a
    thresholded confidence score.  The threshold is calibrated from held-out
    in-distribution columns so that a target fraction of them (default 95%)
    is accepted, mirroring the usual TPR-at-95 convention.
    """

    METHODS = ("max_softmax", "entropy", "energy")

    def __init__(
        self,
        classifier: TableEmbeddingClassifier,
        method: str = "max_softmax",
        accept_fraction: float = 0.95,
    ) -> None:
        if method not in self.METHODS:
            raise ConfigurationError(f"unknown OOD method {method!r}; expected one of {self.METHODS}")
        if not 0.5 <= accept_fraction < 1.0:
            raise ConfigurationError("accept_fraction must be in [0.5, 1)")
        self.classifier = classifier
        self.method = method
        self.accept_fraction = accept_fraction
        self._calibration: _Calibration | None = None

    # ------------------------------------------------------------------ scores
    def score(self, column: Column, table: Table | None = None) -> float:
        """The OOD score of one column (higher ⇒ more out-of-distribution)."""
        if not self.classifier.is_fitted:
            raise ModelNotTrainedError("the underlying classifier is not fitted")
        if self.method == "energy":
            return energy_score(self.classifier.predict_logits(column, table))
        probabilities = self.classifier.predict_proba(column, table)
        values = list(probabilities.values())
        if self.method == "max_softmax":
            # Negated so that "higher means more OOD" holds for every method.
            return 1.0 - max_softmax_score(values)
        return entropy_score(values)

    # -------------------------------------------------------------- calibration
    def calibrate(self, columns: Sequence[tuple[Column, Table | None]]) -> float:
        """Choose the threshold from in-distribution validation columns.

        The threshold is set at the ``accept_fraction`` quantile of the
        in-distribution scores, so that fraction of known-good columns stays
        accepted.  Returns the chosen threshold.
        """
        if not columns:
            raise ConfigurationError("calibration needs at least one in-distribution column")
        scores = sorted(self.score(column, table) for column, table in columns)
        index = min(int(math.ceil(self.accept_fraction * len(scores))) - 1, len(scores) - 1)
        threshold = scores[max(index, 0)]
        self._calibration = _Calibration(method=self.method, threshold=threshold)
        return threshold

    @property
    def threshold(self) -> float | None:
        """The calibrated threshold, or ``None`` before calibration."""
        return self._calibration.threshold if self._calibration else None

    # --------------------------------------------------------------- decisions
    def is_out_of_distribution(self, column: Column, table: Table | None = None) -> bool:
        """Whether the detector recommends abstaining for *column*.

        A column is flagged when the classifier's own top prediction is the
        ``unknown`` background class, or when its OOD score exceeds the
        calibrated threshold (if calibration has been performed).
        """
        predicted = self.classifier.predict_type(column, table)
        if predicted == UNKNOWN_TYPE:
            return True
        if self._calibration is None:
            return False
        return self.score(column, table) > self._calibration.threshold
