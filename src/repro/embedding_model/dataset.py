"""Dataset assembly for the learned column-type classifier.

Turns annotated :class:`~repro.corpus.collection.TableCorpus` objects into
``(features, labels)`` numpy arrays, maintaining the label vocabulary shared
between training and inference.  Per Section 4.3 of the paper, the classifier
is additionally trained on a *background dataset* whose columns are labeled
with the reserved ``unknown`` type so the model learns to flag
out-of-distribution columns instead of forcing a known label onto them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.ontology import UNKNOWN_TYPE
from repro.core.table import Column, Table
from repro.corpus.collection import TableCorpus
from repro.embedding_model.features import ColumnFeaturizer

__all__ = ["LabelVocabulary", "ColumnDataset", "build_dataset"]


@dataclass
class LabelVocabulary:
    """A bidirectional mapping between semantic type names and class indices."""

    types: list[str] = field(default_factory=list)
    _index: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        deduplicated: list[str] = []
        for type_name in self.types:
            if type_name not in deduplicated:
                deduplicated.append(type_name)
        self.types = deduplicated
        self._index = {type_name: index for index, type_name in enumerate(self.types)}

    @classmethod
    def from_labels(cls, labels: Iterable[str], include_unknown: bool = True) -> "LabelVocabulary":
        """Build a vocabulary from observed labels (sorted for determinism)."""
        unique = sorted({label for label in labels if label})
        if include_unknown and UNKNOWN_TYPE not in unique:
            unique.append(UNKNOWN_TYPE)
        return cls(types=unique)

    def __len__(self) -> int:
        return len(self.types)

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._index

    def __iter__(self):
        return iter(self.types)

    def index_of(self, type_name: str) -> int:
        """Class index of *type_name*."""
        try:
            return self._index[type_name]
        except KeyError as exc:
            raise ConfigurationError(f"label {type_name!r} is not in the vocabulary") from exc

    def type_at(self, index: int) -> str:
        """Type name of class *index*."""
        if not 0 <= index < len(self.types):
            raise ConfigurationError(f"class index {index} out of range")
        return self.types[index]

    @property
    def unknown_index(self) -> int | None:
        """Index of the reserved unknown class, if present."""
        return self._index.get(UNKNOWN_TYPE)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {"types": list(self.types)}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "LabelVocabulary":
        """Inverse of :meth:`to_dict`."""
        return cls(types=list(payload.get("types", [])))  # type: ignore[arg-type]


@dataclass
class ColumnDataset:
    """Featurized training examples plus their provenance."""

    features: np.ndarray
    labels: np.ndarray
    vocabulary: LabelVocabulary
    #: ``(table_name, column_name)`` per row, for error analysis.
    provenance: list[tuple[str, str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.labels)

    def class_counts(self) -> dict[str, int]:
        """Number of examples per semantic type."""
        counts: dict[str, int] = {}
        for index in self.labels:
            type_name = self.vocabulary.type_at(int(index))
            counts[type_name] = counts.get(type_name, 0) + 1
        return counts

    def merged_with(self, other: "ColumnDataset") -> "ColumnDataset":
        """Concatenate two datasets that share the same vocabulary."""
        if self.vocabulary.types != other.vocabulary.types:
            raise ConfigurationError("cannot merge datasets with different vocabularies")
        return ColumnDataset(
            features=np.vstack([self.features, other.features]),
            labels=np.concatenate([self.labels, other.labels]),
            vocabulary=self.vocabulary,
            provenance=self.provenance + other.provenance,
        )


def _iter_labeled_columns(
    corpus: TableCorpus,
    override_label: str | None = None,
) -> Iterable[tuple[Column, Table, str]]:
    for entry in corpus.columns():
        label = override_label if override_label is not None else entry.label
        if label is None:
            continue
        yield entry.column, entry.table, label


def build_dataset(
    corpus: TableCorpus,
    featurizer: ColumnFeaturizer,
    vocabulary: LabelVocabulary | None = None,
    background_corpus: TableCorpus | None = None,
    extra_examples: Sequence[tuple[Column, Table | None, str]] = (),
    backend=None,
) -> ColumnDataset:
    """Featurize every labeled column of *corpus* into a training dataset.

    Parameters
    ----------
    vocabulary:
        When provided, examples whose label is outside the vocabulary are
        mapped to the ``unknown`` class if present, otherwise dropped.  When
        omitted, the vocabulary is built from the observed labels.
    background_corpus:
        Columns of this corpus are added with the ``unknown`` label — the
        background-dataset trick the paper uses for OOD awareness.
    extra_examples:
        Additional ``(column, table, label)`` triples, used for the weakly
        labeled data generated by DPBD.
    backend:
        Optional execution backend (spec string or
        :class:`~repro.serving.backends.ExecutionBackend`) that shards the
        featurization pass.  Rows stay in corpus order and are bit-identical
        to the serial pass, so the trained model is unchanged.
    """
    triples = list(_iter_labeled_columns(corpus))
    triples.extend((column, table, label) for column, table, label in extra_examples if label)
    background_triples: list[tuple[Column, Table, str]] = []
    if background_corpus is not None:
        background_triples = list(_iter_labeled_columns(background_corpus, override_label=UNKNOWN_TYPE))

    if vocabulary is None:
        observed = [label for _, _, label in triples]
        include_unknown = bool(background_triples)
        vocabulary = LabelVocabulary.from_labels(observed, include_unknown=include_unknown)

    rows: list[tuple[Column, Table | None]] = []
    labels: list[int] = []
    provenance: list[tuple[str, str]] = []
    for column, table, label in triples + background_triples:
        if label not in vocabulary:
            if vocabulary.unknown_index is None:
                continue
            class_index = vocabulary.unknown_index
        else:
            class_index = vocabulary.index_of(label)
        rows.append((column, table))
        labels.append(class_index)
        provenance.append((table.name if table is not None else "", column.name))

    if backend is None:
        features = featurizer.extract_many(rows)
    else:
        from repro.serving.backends import resolve_backend

        # Shards are contiguous runs of (column, table) pairs, so a table's
        # columns mostly land in one shard and its pickled payload carries
        # each table once.  Rows come back in order; stacking them reproduces
        # the serial feature matrix bit-for-bit.
        row_features = resolve_backend(backend).map_shards(featurizer.extract_many, rows)
        features = (
            np.vstack(row_features)
            if row_features
            else np.zeros((0, featurizer.dim), dtype=np.float64)
        )
    return ColumnDataset(
        features=features,
        labels=np.asarray(labels, dtype=np.int64),
        vocabulary=vocabulary,
        provenance=provenance,
    )
