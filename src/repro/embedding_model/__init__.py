"""Learned table-embedding model: featurization, dataset assembly, the MLP
classifier with an unknown background class, OOD detection, and the pipeline
step wrapping it (step 3 of Fig. 4)."""

from repro.embedding_model.classifier import TableEmbeddingClassifier
from repro.embedding_model.dataset import ColumnDataset, LabelVocabulary, build_dataset
from repro.embedding_model.features import ColumnFeaturizer, FeaturizerConfig
from repro.embedding_model.ood import (
    OODDetector,
    auroc,
    energy_score,
    entropy_score,
    max_softmax_score,
)
from repro.embedding_model.step import TableEmbeddingStep

__all__ = [
    "ColumnFeaturizer",
    "FeaturizerConfig",
    "LabelVocabulary",
    "ColumnDataset",
    "build_dataset",
    "TableEmbeddingClassifier",
    "TableEmbeddingStep",
    "OODDetector",
    "max_softmax_score",
    "entropy_score",
    "energy_score",
    "auroc",
]
