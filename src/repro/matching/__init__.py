"""Header matching: fuzzy string similarity, subword embeddings, and the
header-matching pipeline step (step 1 of Fig. 4)."""

from repro.matching.embeddings import SubwordEmbedder, cosine_similarity
from repro.matching.fuzzy import (
    combined_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_ratio,
    normalize_header,
    token_set_ratio,
    tokenize_header,
)
from repro.matching.header_matcher import HeaderMatcher, HeaderMatcherConfig

__all__ = [
    "SubwordEmbedder",
    "cosine_similarity",
    "levenshtein_distance",
    "levenshtein_ratio",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "token_set_ratio",
    "combined_similarity",
    "normalize_header",
    "tokenize_header",
    "HeaderMatcher",
    "HeaderMatcherConfig",
]
