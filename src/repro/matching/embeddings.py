"""Subword text embeddings — an offline FastText substitute.

The paper's header-matching step computes FastText embeddings for column
names and for the ontology's semantic types, and uses their cosine similarity
as a prediction confidence.  Pretrained FastText vectors cannot be shipped in
this offline reproduction, so :class:`SubwordEmbedder` provides the same
interface with two components:

* a **character n-gram hashing** component (the core FastText idea): every
  word is the normalised bag of its character 3–5 grams, each hashed into a
  fixed-dimensional vector with deterministic signs, which makes the
  embedding compositional and robust to abbreviations and misspellings;
* an optional **distributional** component learned with a truncated SVD of a
  word/context co-occurrence matrix built from training "sentences" (here:
  the ontology's labels and synonyms grouped per type, plus corpus headers
  grouped per ground-truth type).  This is what lets ``income`` land near
  ``salary`` even though they share no subwords.

Vectors are L2-normalised so cosine similarity is a dot product.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.matching.fuzzy import tokenize_header

__all__ = ["SubwordEmbedder", "cosine_similarity"]

#: Shared gram → 64-bit hash cache.  Grams repeat heavily across words (and
#: across embedder instances), and the blake2b call is the hot spot of the
#: n-gram component, so hashes are computed once per distinct gram.
_HASH_CACHE: dict[str, int] = {}
_HASH_CACHE_MAX = 1 << 20


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> float:
    """Cosine similarity of two vectors, 0.0 when either is all-zero."""
    norm_a = float(np.linalg.norm(first))
    norm_b = float(np.linalg.norm(second))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(first, second) / (norm_a * norm_b))


def _stable_hash(text: str) -> int:
    """A process-independent 64-bit hash (Python's ``hash`` is salted)."""
    cached = _HASH_CACHE.get(text)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "little")
    if len(_HASH_CACHE) < _HASH_CACHE_MAX:
        _HASH_CACHE[text] = value
    return value


class SubwordEmbedder:
    """Character n-gram hashing embeddings with an optional learned component.

    Parameters
    ----------
    ngram_dim:
        Dimensionality of the hashed character n-gram component.
    context_dim:
        Dimensionality of the learned distributional component (used only
        after :meth:`fit`).
    ngram_range:
        Inclusive range of character n-gram lengths.
    """

    def __init__(
        self,
        ngram_dim: int = 96,
        context_dim: int = 32,
        ngram_range: tuple[int, int] = (3, 5),
    ) -> None:
        if ngram_dim <= 0 or context_dim < 0:
            raise ConfigurationError("embedding dimensions must be positive")
        if ngram_range[0] < 2 or ngram_range[1] < ngram_range[0]:
            raise ConfigurationError(f"invalid ngram_range {ngram_range}")
        self.ngram_dim = ngram_dim
        self.context_dim = context_dim
        self.ngram_range = ngram_range
        self._word_vectors: dict[str, np.ndarray] = {}
        self._ngram_cache: dict[str, np.ndarray] = {}
        # LRU cache of whole-phrase embeddings.  Cell values and headers
        # repeat constantly across a corpus, so most embed_text calls are hits.
        # Cached vectors are shared with callers and must not be mutated.
        self._phrase_cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self._phrase_cache_max = 8192
        # Cached embedded candidate matrices for most_similar (see below).
        self._candidate_cache: OrderedDict[tuple, tuple[list[str], np.ndarray]] = OrderedDict()
        self._candidate_cache_max = 32
        self._fitted = False
        #: Bumped by every :meth:`fit` so consumers caching state derived from
        #: the learned vectors (e.g. the featurizer's cache token) can detect
        #: an in-place refit even when the vocabulary size happens to match.
        self._fit_version = 0

    # ------------------------------------------------------------- n-gram part
    def _char_ngrams(self, word: str) -> list[str]:
        padded = f"<{word}>"
        low, high = self.ngram_range
        grams = []
        for size in range(low, high + 1):
            if len(padded) < size:
                continue
            grams.extend(padded[i : i + size] for i in range(len(padded) - size + 1))
        # The whole (padded) word is always one feature, as in FastText.
        grams.append(padded)
        return grams

    def _ngram_vector(self, word: str) -> np.ndarray:
        cached = self._ngram_cache.get(word)
        if cached is not None:
            return cached
        # Bulk-hash the grams and scatter-add all ±1 contributions at once;
        # the additions are integer-valued, so the result is order-independent
        # and identical to accumulating gram by gram.
        hashes = np.fromiter(
            (_stable_hash(gram) for gram in self._char_ngrams(word)),
            dtype=np.uint64,
        )
        indices = (hashes % np.uint64(self.ngram_dim)).astype(np.intp)
        signs = np.where((hashes >> np.uint64(32)) % np.uint64(2) == 0, 1.0, -1.0)
        vector = np.zeros(self.ngram_dim, dtype=np.float64)
        np.add.at(vector, indices, signs)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        self._ngram_cache[word] = vector
        return vector

    # ----------------------------------------------------------- learned part
    @property
    def is_fitted(self) -> bool:
        """Whether a distributional component has been trained."""
        return self._fitted

    @property
    def vocabulary(self) -> list[str]:
        """Words with a learned distributional vector."""
        return list(self._word_vectors)

    def fit(self, sentences: Iterable[Sequence[str]]) -> "SubwordEmbedder":
        """Learn the distributional component from groups of related terms.

        Each *sentence* is a list of strings that belong together (for the
        header matcher: all labels/synonyms/observed headers of one semantic
        type).  Words are embedded by a truncated SVD of the word-by-sentence
        incidence matrix, so words that share sentences get similar vectors.
        """
        tokenised: list[list[str]] = []
        vocabulary: dict[str, int] = {}
        for sentence in sentences:
            tokens: list[str] = []
            for term in sentence:
                tokens.extend(tokenize_header(str(term)))
            if not tokens:
                continue
            tokenised.append(tokens)
            for token in tokens:
                vocabulary.setdefault(token, len(vocabulary))

        self._word_vectors = {}
        # Fitting changes the embedding dimensionality and the learned part:
        # every derived phrase/candidate cache is stale.
        self._phrase_cache.clear()
        self._candidate_cache.clear()
        self._fit_version += 1
        if not tokenised or not vocabulary:
            self._fitted = False
            return self

        counts = np.zeros((len(vocabulary), len(tokenised)), dtype=np.float64)
        for sentence_index, tokens in enumerate(tokenised):
            for token in tokens:
                counts[vocabulary[token], sentence_index] += 1.0

        # Dampen high-frequency words (log counts) and weight rare words up
        # (an IDF-style column/row weighting), then reduce with SVD.
        weighted = np.log1p(counts)
        document_frequency = np.count_nonzero(counts, axis=1).astype(np.float64)
        idf = np.log((1.0 + counts.shape[1]) / (1.0 + document_frequency)) + 1.0
        weighted *= idf[:, None]

        rank = min(self.context_dim, min(weighted.shape))
        if rank == 0:
            self._fitted = False
            return self
        left, singular_values, _ = np.linalg.svd(weighted, full_matrices=False)
        components = left[:, :rank] * singular_values[:rank]
        if rank < self.context_dim:
            padding = np.zeros((components.shape[0], self.context_dim - rank))
            components = np.hstack([components, padding])

        for token, row_index in vocabulary.items():
            vector = components[row_index]
            norm = np.linalg.norm(vector)
            self._word_vectors[token] = vector / norm if norm > 0 else vector
        self._fitted = True
        return self

    # --------------------------------------------------------------- embedding
    @property
    def dim(self) -> int:
        """Total dimensionality of produced embeddings."""
        return self.ngram_dim + (self.context_dim if self._fitted else 0)

    def embed_word(self, word: str) -> np.ndarray:
        """Embed one token: hashed n-grams, plus the learned part when fitted."""
        word = word.lower()
        ngram_part = self._ngram_vector(word)
        if not self._fitted:
            return ngram_part
        learned = self._word_vectors.get(word)
        if learned is None:
            learned = np.zeros(self.context_dim, dtype=np.float64)
        return np.concatenate([ngram_part, learned])

    def embed_text(self, text: str) -> np.ndarray:
        """Embed a phrase as the L2-normalised mean of its token embeddings.

        Results are LRU-cached per phrase (shared with callers — treat the
        returned vector as read-only).
        """
        cached = self._phrase_cache.get(text)
        if cached is not None:
            # Threaded serving shares this cache; a concurrent eviction
            # between the get and the LRU touch is harmless — the vector in
            # hand stays valid.
            try:
                self._phrase_cache.move_to_end(text)
            except KeyError:
                pass
            return cached
        tokens = tokenize_header(text)
        if not tokens:
            vector = np.zeros(self.dim, dtype=np.float64)
        else:
            stacked = np.vstack([self.embed_word(token) for token in tokens])
            mean = stacked.mean(axis=0)
            norm = np.linalg.norm(mean)
            vector = mean / norm if norm > 0 else mean
        self._phrase_cache[text] = vector
        if len(self._phrase_cache) > self._phrase_cache_max:
            try:
                self._phrase_cache.popitem(last=False)
            except KeyError:
                pass
        return vector

    def similarity(self, first: str, second: str) -> float:
        """Cosine similarity of two phrases in ``[-1, 1]`` (usually ``[0, 1]``)."""
        return cosine_similarity(self.embed_text(first), self.embed_text(second))

    def most_similar(
        self, query: str, candidates: Mapping[str, str] | Sequence[str], top_k: int = 5
    ) -> list[tuple[str, float]]:
        """Rank *candidates* by similarity to *query*.

        ``candidates`` may be a sequence of strings (compared directly) or a
        mapping ``{key: text}`` where similarity is computed on the text and
        the key is returned.
        """
        if isinstance(candidates, Mapping):
            items = tuple(candidates.items())
        else:
            items = tuple((candidate, candidate) for candidate in candidates)
        cached = self._candidate_cache.get(items)
        if cached is not None:
            try:
                self._candidate_cache.move_to_end(items)
            except KeyError:  # concurrently evicted; the tuple in hand is valid
                pass
            keys, matrix = cached
        else:
            keys = [key for key, _ in items]
            matrix = (
                np.vstack([self.embed_text(text) for _, text in items])
                if items
                else np.zeros((0, self.dim), dtype=np.float64)
            )
            self._candidate_cache[items] = (keys, matrix)
            if len(self._candidate_cache) > self._candidate_cache_max:
                try:
                    self._candidate_cache.popitem(last=False)
                except KeyError:
                    pass
        # embed_text outputs are L2-normalised (or all-zero), so a plain
        # matrix-vector product gives the cosine similarities directly.
        query_vector = self.embed_text(query)
        similarities = matrix @ query_vector
        ranked = [(key, float(s)) for key, s in zip(keys, similarities)]
        ranked.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranked[:top_k]
