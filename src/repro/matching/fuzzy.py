"""String similarity primitives for syntactic header matching.

The first step of SigmaTyper's pipeline compares column headers against the
labels and synonyms in the type ontology "using fuzzy matching".  This module
implements the standard similarity measures from scratch (no external fuzzy
matching dependency): Levenshtein edit distance/ratio, Jaro and Jaro–Winkler
similarity, and token-based set ratios that are robust to word reordering.

All similarity functions return floats in ``[0, 1]`` where ``1`` means an
exact match, and are case-insensitive after :func:`normalize_header`
tokenisation.
"""

from __future__ import annotations

import re

__all__ = [
    "normalize_header",
    "tokenize_header",
    "levenshtein_distance",
    "levenshtein_ratio",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "token_set_ratio",
    "combined_similarity",
]

_CAMEL_CASE_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_ALNUM_RE = re.compile(r"[^a-z0-9]+")

#: Header tokens that carry no semantic information on their own.
_STOP_TOKENS = frozenset({"the", "of", "a", "an", "de", "der", "no"})


def normalize_header(header: str) -> str:
    """Lower-case a header and collapse camelCase/punctuation to spaces.

    ``"OrderDate"``, ``"order_date"``, ``"ORDER-DATE"`` and ``"Order Date"``
    all normalise to ``"order date"``.
    """
    if not header:
        return ""
    spaced = _CAMEL_CASE_RE.sub(" ", header)
    lowered = spaced.lower()
    cleaned = _NON_ALNUM_RE.sub(" ", lowered)
    return " ".join(cleaned.split())


def tokenize_header(header: str) -> list[str]:
    """Split a header into informative lower-case tokens."""
    return [token for token in normalize_header(header).split() if token not in _STOP_TOKENS]


def levenshtein_distance(first: str, second: str) -> int:
    """Minimum number of single-character edits turning *first* into *second*."""
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    if len(first) < len(second):
        first, second = second, first
    previous = list(range(len(second) + 1))
    for i, char_a in enumerate(first, start=1):
        current = [i]
        for j, char_b in enumerate(second, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (char_a != char_b)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_ratio(first: str, second: str) -> float:
    """Normalised edit similarity in ``[0, 1]``."""
    if not first and not second:
        return 1.0
    longest = max(len(first), len(second))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(first, second) / longest


def jaro_similarity(first: str, second: str) -> float:
    """Jaro similarity in ``[0, 1]``."""
    if first == second:
        return 1.0
    if not first or not second:
        return 0.0
    match_window = max(len(first), len(second)) // 2 - 1
    match_window = max(match_window, 0)
    first_matches = [False] * len(first)
    second_matches = [False] * len(second)

    matches = 0
    for i, char in enumerate(first):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(second))
        for j in range(start, end):
            if second_matches[j] or second[j] != char:
                continue
            first_matches[i] = True
            second_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, matched in enumerate(first_matches):
        if not matched:
            continue
        while not second_matches[j]:
            j += 1
        if first[i] != second[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(first)
        + matches / len(second)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(first: str, second: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity: Jaro boosted for a shared prefix (≤ 4 chars)."""
    jaro = jaro_similarity(first, second)
    prefix_length = 0
    for char_a, char_b in zip(first[:4], second[:4]):
        if char_a != char_b:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_scale * (1.0 - jaro)


def token_set_ratio(first: str, second: str) -> float:
    """Similarity of the *token sets* of two headers.

    Robust to word order (``"date of birth"`` vs ``"birth date"``) and to one
    header being a subset of the other (``"customer name"`` vs ``"name"``).
    Tokens that do not match exactly contribute their best pairwise
    Levenshtein ratio, so small misspellings degrade gracefully.
    """
    tokens_a = set(tokenize_header(first))
    tokens_b = set(tokenize_header(second))
    if not tokens_a or not tokens_b:
        return 1.0 if tokens_a == tokens_b else 0.0
    if tokens_a == tokens_b:
        return 1.0
    shared = tokens_a & tokens_b
    remaining_a = tokens_a - shared
    remaining_b = tokens_b - shared
    score = len(shared)
    for token in remaining_a:
        best = max((levenshtein_ratio(token, other) for other in remaining_b), default=0.0)
        score += best if best >= 0.75 else 0.0
    denominator = max(len(tokens_a), len(tokens_b))
    return min(score / denominator, 1.0)


def combined_similarity(first: str, second: str) -> float:
    """The syntactic similarity used by the header-matching step.

    The maximum of character-level (Jaro–Winkler, Levenshtein ratio) and
    token-level similarity on the normalised headers: character measures
    handle abbreviations (``cust_nm`` vs ``customer name``) poorly but
    reordering well, token measures the reverse, so the max is a robust
    compromise for short header strings.
    """
    normalized_a = normalize_header(first)
    normalized_b = normalize_header(second)
    if not normalized_a or not normalized_b:
        return 0.0
    if normalized_a == normalized_b:
        return 1.0
    return max(
        jaro_winkler_similarity(normalized_a, normalized_b),
        levenshtein_ratio(normalized_a, normalized_b),
        token_set_ratio(normalized_a, normalized_b),
    )
