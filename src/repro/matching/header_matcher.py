"""Header-matching pipeline step (step 1 of Fig. 4).

The cheapest and fastest step of SigmaTyper's cascade: the column header is
compared against the labels and synonyms of the semantic type ontology.

* **Syntactic matching** uses the fuzzy string similarities from
  :mod:`repro.matching.fuzzy`; per the paper, an (essentially) exact match
  sets the confidence to the maximum of 100%.
* **Semantic matching** embeds the column name and the ontology labels with
  the :class:`~repro.matching.embeddings.SubwordEmbedder` (the FastText
  substitute) and uses cosine similarity as the confidence.

The step optionally filters candidates whose expected data kind contradicts
the column's structural type (a numeric column is never a ``city``), one of
the pragmatic, transparent heuristics the framework advocates combining with
learned models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.datatypes import DataType
from repro.core.errors import ConfigurationError
from repro.core.ontology import DataKind, SemanticType, TypeOntology, UNKNOWN_TYPE
from repro.core.pipeline import PipelineStep
from repro.core.prediction import TypeScore
from repro.core.table import Column, Table
from repro.core.timings import stage
from repro.matching.embeddings import SubwordEmbedder
from repro.matching.fuzzy import combined_similarity, normalize_header, tokenize_header

__all__ = ["HeaderMatcherConfig", "HeaderMatcher"]

#: Normalised headers only contain lower-case letters, digits, and spaces.
_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789 "
_CHAR_INDEX = {char: index for index, char in enumerate(_ALPHABET)}


def _char_counts(text: str) -> np.ndarray:
    """Character histogram of a normalised string over the header alphabet."""
    counts = np.zeros(len(_ALPHABET), dtype=np.float64)
    for char in text:
        index = _CHAR_INDEX.get(char)
        if index is not None:
            counts[index] += 1.0
    return counts


@dataclass
class HeaderMatcherConfig:
    """Tuning knobs for the header-matching step."""

    #: Similarity above which a syntactic match is reported at all.
    syntactic_threshold: float = 0.72
    #: Similarity treated as an exact syntactic match (confidence 1.0).
    exact_threshold: float = 0.95
    #: Minimum cosine similarity for the semantic (embedding) channel.
    semantic_threshold: float = 0.55
    #: Keep at most this many candidates per column.
    top_k: int = 5
    #: Drop candidates whose expected data kind contradicts the column values.
    filter_by_data_kind: bool = True

    def validate(self) -> None:
        if not 0.0 <= self.syntactic_threshold <= 1.0:
            raise ConfigurationError("syntactic_threshold must be in [0, 1]")
        if not 0.0 <= self.semantic_threshold <= 1.0:
            raise ConfigurationError("semantic_threshold must be in [0, 1]")
        if self.exact_threshold < self.syntactic_threshold:
            raise ConfigurationError("exact_threshold must be >= syntactic_threshold")
        if self.top_k < 1:
            raise ConfigurationError("top_k must be at least 1")


_KIND_COMPATIBILITY: dict[DataKind, frozenset[DataType]] = {
    DataKind.NUMERIC: frozenset({DataType.INTEGER, DataType.FLOAT, DataType.MIXED, DataType.EMPTY}),
    DataKind.TEXTUAL: frozenset({DataType.TEXT, DataType.MIXED, DataType.EMPTY, DataType.BOOLEAN}),
    DataKind.TEMPORAL: frozenset({DataType.DATE, DataType.DATETIME, DataType.INTEGER, DataType.TEXT, DataType.MIXED, DataType.EMPTY}),
    DataKind.BOOLEAN: frozenset({DataType.BOOLEAN, DataType.INTEGER, DataType.TEXT, DataType.MIXED, DataType.EMPTY}),
}


class HeaderMatcher(PipelineStep):
    """Syntactic + semantic matching of column headers against the ontology."""

    name = "header_matching"
    cost_rank = 0

    def __init__(
        self,
        ontology: TypeOntology,
        embedder: SubwordEmbedder | None = None,
        config: HeaderMatcherConfig | None = None,
    ) -> None:
        self.ontology = ontology
        self.config = config or HeaderMatcherConfig()
        self.config.validate()
        self.embedder = embedder
        self._candidate_types = self._leaf_types(ontology)
        self._alias_index: dict[str, list[str]] = {}
        for semantic_type in self._candidate_types:
            for alias in semantic_type.all_names():
                self._alias_index.setdefault(alias, []).append(semantic_type.name)
        self._build_alias_screen()
        self._type_embeddings: dict[str, object] = {}
        #: Matrix form of the type embeddings: row i is the L2-normalised
        #: embedding of ``self._type_names[i]``.  One matrix-vector product
        #: scores a header against every ontology type at once.
        self._type_names: list[str] = []
        self._type_matrix: np.ndarray | None = None
        if self.embedder is not None:
            self._compute_type_embeddings()
        # Header matching is pure string work: identical (header, data type)
        # pairs always produce the same candidates, and real corpora repeat
        # headers constantly, so a small cache makes this step as cheap as its
        # position at the front of the cascade assumes.  The raw channel
        # scores additionally cache on the header alone, so the same header
        # over columns of different data types shares the string matching.
        self._cache: dict[tuple[str, object], list[TypeScore]] = {}
        self._score_cache: dict[str, dict[str, float]] = {}

    # ---------------------------------------------------------------- factory
    @classmethod
    def with_trained_embedder(
        cls,
        ontology: TypeOntology,
        extra_sentences: Iterable[Sequence[str]] = (),
        config: HeaderMatcherConfig | None = None,
    ) -> "HeaderMatcher":
        """Build a matcher whose embedder is fitted on the ontology vocabulary.

        Each semantic type contributes one training "sentence" containing its
        label and synonyms; callers can add extra sentences (e.g. observed
        corpus headers grouped by ground-truth type) to enrich the space.
        """
        sentences: list[list[str]] = []
        for semantic_type in cls._leaf_types(ontology):
            sentences.append([semantic_type.label, *semantic_type.synonyms, semantic_type.name])
        sentences.extend([list(sentence) for sentence in extra_sentences])
        embedder = SubwordEmbedder().fit(sentences)
        return cls(ontology, embedder=embedder, config=config)

    @staticmethod
    def _leaf_types(ontology: TypeOntology) -> list[SemanticType]:
        """Predictable candidates: leaf types, excluding the reserved unknown."""
        leaves = []
        for semantic_type in ontology:
            if semantic_type.name == UNKNOWN_TYPE:
                continue
            if ontology.children(semantic_type.name):
                continue
            leaves.append(semantic_type)
        return leaves

    def _build_alias_screen(self) -> None:
        """Precompute per-alias data for the vectorized candidate screen.

        For every alias the normalised form, its length, its character
        histogram, its 4-character prefix, and its token set are computed
        once; the distinct alias *tokens* additionally get their own
        histogram matrix.  Scoring a header then starts with vectorized
        character-overlap computations that yield *exact upper bounds* on all
        three syntactic similarity measures; ``combined_similarity`` only
        runs for the few aliases whose bound clears the syntactic threshold,
        which cannot change the result.
        """
        token_index: dict[str, int] = {}
        token_histograms: list[np.ndarray] = []
        token_lengths: list[int] = []
        entries: list[tuple[str, list[str], frozenset[str], np.ndarray]] = []
        lengths: list[int] = []
        histograms: list[np.ndarray] = []
        prefixes: list[list[int]] = []
        for alias, type_names in self._alias_index.items():
            normalized = normalize_header(alias)
            if not normalized:
                continue  # combined_similarity is 0.0 against everything
            tokens = frozenset(tokenize_header(normalized))
            for token in tokens:
                if token not in token_index:
                    token_index[token] = len(token_index)
                    token_histograms.append(_char_counts(token))
                    token_lengths.append(len(token))
            indices = np.array(sorted(token_index[token] for token in tokens), dtype=np.intp)
            entries.append((normalized, type_names, tokens, indices))
            lengths.append(len(normalized))
            histograms.append(_char_counts(normalized))
            codes = [ord(char) for char in normalized[:4]]
            prefixes.append(codes + [-1] * (4 - len(codes)))
        self._alias_entries = entries
        self._alias_lengths = np.array(lengths, dtype=np.float64)
        self._alias_histograms = (
            np.vstack(histograms)
            if histograms
            else np.zeros((0, len(_ALPHABET)), dtype=np.float64)
        )
        self._alias_prefixes = np.array(prefixes, dtype=np.int32).reshape(len(entries), 4)
        self._token_histograms = (
            np.vstack(token_histograms)
            if token_histograms
            else np.zeros((0, len(_ALPHABET)), dtype=np.float64)
        )
        self._token_lengths = np.array(token_lengths, dtype=np.float64)

    def _char_screen(self, header: str) -> np.ndarray:
        """Vectorized upper bound on the character-level similarity measures.

        * Levenshtein: ``distance >= max_len - common_chars``, so the ratio is
          at most ``common_chars / max_len``.
        * Jaro: matches ``m <= common_chars`` and ``(m - t)/m <= 1``; the
          Winkler boost uses the *actual* shared prefix length (cheap to
          compute exactly, and usually 0).
        """
        header_length = len(header)
        overlaps = np.minimum(self._alias_histograms, _char_counts(header)).sum(axis=1)
        lev_bound = overlaps / np.maximum(self._alias_lengths, header_length)
        jaro_bound = np.minimum(
            (overlaps / header_length + overlaps / self._alias_lengths + 1.0) / 3.0, 1.0
        )
        header_prefix = np.full(4, -2, dtype=np.int32)
        for position, char in enumerate(header[:4]):
            header_prefix[position] = ord(char)
        matches = self._alias_prefixes == header_prefix
        prefix_lengths = np.argmin(
            np.concatenate([matches, np.zeros((len(matches), 1), dtype=bool)], axis=1), axis=1
        ).astype(np.float64)
        jw_bound = np.where(
            overlaps > 0, jaro_bound + 0.1 * prefix_lengths * (1.0 - jaro_bound), 0.0
        )
        return np.maximum(lev_bound, jw_bound)

    def _syntactic_scores(self, header: str) -> dict[str, float]:
        """Best syntactic confidence per type for one normalised header.

        Identical to scoring ``combined_similarity(header, alias)`` against
        every alias: the screen only skips pairs whose provable upper bound is
        below the reporting threshold, and every surviving pair is scored with
        the original (unmodified) similarity function.
        """
        if not self._alias_entries:
            return {}
        threshold = self.config.syntactic_threshold
        header_tokens = frozenset(tokenize_header(header))
        char_bound = self._char_screen(header)
        # Upper bound on each header token's best Levenshtein ratio against
        # every distinct alias token (token-set contributions need >= 0.75).
        token_bounds: dict[str, np.ndarray] = {}
        if header_tokens and len(self._token_lengths):
            for token in header_tokens:
                token_bounds[token] = np.minimum(
                    self._token_histograms, _char_counts(token)
                ).sum(axis=1) / np.maximum(self._token_lengths, len(token))

        best: dict[str, float] = {}
        for index, (alias, type_names, alias_tokens, alias_token_ids) in enumerate(
            self._alias_entries
        ):
            if header == alias:
                similarity = 1.0
            else:
                if char_bound[index] < threshold and not self._token_screen(
                    header_tokens, alias_tokens, alias_token_ids, token_bounds, threshold
                ):
                    continue
                similarity = combined_similarity(header, alias)
                if similarity < threshold:
                    continue
            confidence = 1.0 if similarity >= self.config.exact_threshold else similarity
            for type_name in type_names:
                if confidence > best.get(type_name, 0.0):
                    best[type_name] = confidence
        return best

    @staticmethod
    def _token_screen(
        header_tokens: frozenset[str],
        alias_tokens: frozenset[str],
        alias_token_ids: np.ndarray,
        token_bounds: dict[str, np.ndarray],
        threshold: float,
    ) -> bool:
        """Whether the token-set ratio could reach *threshold* (upper bound).

        Mirrors ``token_set_ratio``: shared tokens score 1 each, every
        non-shared header token contributes at most its best per-token
        Levenshtein-ratio bound, and only when that bound reaches the 0.75
        contribution cut-off.
        """
        if not header_tokens or not alias_tokens:
            return header_tokens == alias_tokens
        if header_tokens == alias_tokens:
            return True
        score_bound = float(len(header_tokens & alias_tokens))
        for token in header_tokens:
            if token in alias_tokens:
                continue
            bounds = token_bounds.get(token)
            if bounds is None or not alias_token_ids.size:
                continue
            best_bound = float(bounds[alias_token_ids].max())
            if best_bound >= 0.75:
                score_bound += min(best_bound, 1.0)
        ratio_bound = score_bound / max(len(header_tokens), len(alias_tokens))
        return ratio_bound >= threshold

    def _compute_type_embeddings(self) -> None:
        assert self.embedder is not None
        for semantic_type in self._candidate_types:
            text = " ".join([semantic_type.label, *semantic_type.synonyms])
            self._type_embeddings[semantic_type.name] = self.embedder.embed_text(text)
        self._type_names = list(self._type_embeddings)
        self._type_matrix = (
            np.vstack([self._type_embeddings[name] for name in self._type_names])
            if self._type_names
            else np.zeros((0, self.embedder.dim), dtype=np.float64)
        )

    # ------------------------------------------------------------- prediction
    def predict_column(self, column: Column, table: Table | None = None) -> list[TypeScore]:
        """Rank candidate types for one column based on its header alone."""
        with stage("match"):
            header = normalize_header(column.name)
            if not header:
                return []
            cache_key = (
                header, column.data_type if self.config.filter_by_data_kind else None
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                return list(cached)
            best = dict(self._channel_scores(header))

            if self.config.filter_by_data_kind and best:
                best = self._filter_by_kind(column, best)

            scores = [TypeScore(confidence=c, type_name=t) for t, c in best.items()]
            scores.sort(key=lambda s: (-s.confidence, s.type_name))
            result = scores[: self.config.top_k]
            self._cache[cache_key] = result
            return list(result)

    def predict_columns(
        self, table: Table, column_indices: Sequence[int] | None = None
    ) -> dict[int, list[TypeScore]]:
        """Predict candidates for the addressed columns of *table*."""
        with stage("match"):
            indices = range(table.num_columns) if column_indices is None else column_indices
            return {
                index: self.predict_column(table.columns[index], table) for index in indices
            }

    # ----------------------------------------------------------------- helpers
    def _channel_scores(self, header: str) -> dict[str, float]:
        """Merged syntactic + semantic scores for one normalised header.

        Cached per header (the channels do not depend on the column values),
        so columns repeating a header — even with different data types — do
        the string and embedding work once.
        """
        cached = self._score_cache.get(header)
        if cached is not None:
            return cached

        best = self._syntactic_scores(header)

        # Semantic channel: embeddings are L2-normalised, so one
        # matrix-vector product against the precomputed type matrix yields
        # every cosine similarity at once.
        if self.embedder is not None and self._type_matrix is not None and len(self._type_names):
            header_vector = self.embedder.embed_text(header)
            similarities = self._type_matrix @ header_vector
            for type_name, raw in zip(self._type_names, similarities):
                similarity = max(float(raw), 0.0)
                if similarity < self.config.semantic_threshold:
                    continue
                if similarity > best.get(type_name, 0.0):
                    best[type_name] = similarity

        self._score_cache[header] = best
        return best

    def _filter_by_kind(self, column: Column, candidates: dict[str, float]) -> dict[str, float]:
        """Drop candidates whose expected data kind contradicts the values."""
        column_type = column.data_type
        if column_type is DataType.EMPTY:
            return candidates
        filtered: dict[str, float] = {}
        for type_name, confidence in candidates.items():
            kind = self.ontology.get(type_name).kind
            allowed = _KIND_COMPATIBILITY.get(kind)
            if allowed is None or column_type in allowed:
                filtered[type_name] = confidence
        return filtered
