"""Header-matching pipeline step (step 1 of Fig. 4).

The cheapest and fastest step of SigmaTyper's cascade: the column header is
compared against the labels and synonyms of the semantic type ontology.

* **Syntactic matching** uses the fuzzy string similarities from
  :mod:`repro.matching.fuzzy`; per the paper, an (essentially) exact match
  sets the confidence to the maximum of 100%.
* **Semantic matching** embeds the column name and the ontology labels with
  the :class:`~repro.matching.embeddings.SubwordEmbedder` (the FastText
  substitute) and uses cosine similarity as the confidence.

The step optionally filters candidates whose expected data kind contradicts
the column's structural type (a numeric column is never a ``city``), one of
the pragmatic, transparent heuristics the framework advocates combining with
learned models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.datatypes import DataType
from repro.core.errors import ConfigurationError
from repro.core.ontology import DataKind, SemanticType, TypeOntology, UNKNOWN_TYPE
from repro.core.pipeline import PipelineStep
from repro.core.prediction import TypeScore
from repro.core.table import Column, Table
from repro.matching.embeddings import SubwordEmbedder, cosine_similarity
from repro.matching.fuzzy import combined_similarity, normalize_header

__all__ = ["HeaderMatcherConfig", "HeaderMatcher"]


@dataclass
class HeaderMatcherConfig:
    """Tuning knobs for the header-matching step."""

    #: Similarity above which a syntactic match is reported at all.
    syntactic_threshold: float = 0.72
    #: Similarity treated as an exact syntactic match (confidence 1.0).
    exact_threshold: float = 0.95
    #: Minimum cosine similarity for the semantic (embedding) channel.
    semantic_threshold: float = 0.55
    #: Keep at most this many candidates per column.
    top_k: int = 5
    #: Drop candidates whose expected data kind contradicts the column values.
    filter_by_data_kind: bool = True

    def validate(self) -> None:
        if not 0.0 <= self.syntactic_threshold <= 1.0:
            raise ConfigurationError("syntactic_threshold must be in [0, 1]")
        if not 0.0 <= self.semantic_threshold <= 1.0:
            raise ConfigurationError("semantic_threshold must be in [0, 1]")
        if self.exact_threshold < self.syntactic_threshold:
            raise ConfigurationError("exact_threshold must be >= syntactic_threshold")
        if self.top_k < 1:
            raise ConfigurationError("top_k must be at least 1")


_KIND_COMPATIBILITY: dict[DataKind, frozenset[DataType]] = {
    DataKind.NUMERIC: frozenset({DataType.INTEGER, DataType.FLOAT, DataType.MIXED, DataType.EMPTY}),
    DataKind.TEXTUAL: frozenset({DataType.TEXT, DataType.MIXED, DataType.EMPTY, DataType.BOOLEAN}),
    DataKind.TEMPORAL: frozenset({DataType.DATE, DataType.DATETIME, DataType.INTEGER, DataType.TEXT, DataType.MIXED, DataType.EMPTY}),
    DataKind.BOOLEAN: frozenset({DataType.BOOLEAN, DataType.INTEGER, DataType.TEXT, DataType.MIXED, DataType.EMPTY}),
}


class HeaderMatcher(PipelineStep):
    """Syntactic + semantic matching of column headers against the ontology."""

    name = "header_matching"
    cost_rank = 0

    def __init__(
        self,
        ontology: TypeOntology,
        embedder: SubwordEmbedder | None = None,
        config: HeaderMatcherConfig | None = None,
    ) -> None:
        self.ontology = ontology
        self.config = config or HeaderMatcherConfig()
        self.config.validate()
        self.embedder = embedder
        self._candidate_types = self._leaf_types(ontology)
        self._alias_index: dict[str, list[str]] = {}
        for semantic_type in self._candidate_types:
            for alias in semantic_type.all_names():
                self._alias_index.setdefault(alias, []).append(semantic_type.name)
        self._type_embeddings: dict[str, object] = {}
        if self.embedder is not None:
            self._compute_type_embeddings()
        # Header matching is pure string work: identical (header, data type)
        # pairs always produce the same candidates, and real corpora repeat
        # headers constantly, so a small cache makes this step as cheap as its
        # position at the front of the cascade assumes.
        self._cache: dict[tuple[str, object], list[TypeScore]] = {}

    # ---------------------------------------------------------------- factory
    @classmethod
    def with_trained_embedder(
        cls,
        ontology: TypeOntology,
        extra_sentences: Iterable[Sequence[str]] = (),
        config: HeaderMatcherConfig | None = None,
    ) -> "HeaderMatcher":
        """Build a matcher whose embedder is fitted on the ontology vocabulary.

        Each semantic type contributes one training "sentence" containing its
        label and synonyms; callers can add extra sentences (e.g. observed
        corpus headers grouped by ground-truth type) to enrich the space.
        """
        sentences: list[list[str]] = []
        for semantic_type in cls._leaf_types(ontology):
            sentences.append([semantic_type.label, *semantic_type.synonyms, semantic_type.name])
        sentences.extend([list(sentence) for sentence in extra_sentences])
        embedder = SubwordEmbedder().fit(sentences)
        return cls(ontology, embedder=embedder, config=config)

    @staticmethod
    def _leaf_types(ontology: TypeOntology) -> list[SemanticType]:
        """Predictable candidates: leaf types, excluding the reserved unknown."""
        leaves = []
        for semantic_type in ontology:
            if semantic_type.name == UNKNOWN_TYPE:
                continue
            if ontology.children(semantic_type.name):
                continue
            leaves.append(semantic_type)
        return leaves

    def _compute_type_embeddings(self) -> None:
        assert self.embedder is not None
        for semantic_type in self._candidate_types:
            text = " ".join([semantic_type.label, *semantic_type.synonyms])
            self._type_embeddings[semantic_type.name] = self.embedder.embed_text(text)

    # ------------------------------------------------------------- prediction
    def predict_column(self, column: Column, table: Table | None = None) -> list[TypeScore]:
        """Rank candidate types for one column based on its header alone."""
        header = normalize_header(column.name)
        if not header:
            return []
        cache_key = (header, column.data_type if self.config.filter_by_data_kind else None)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return list(cached)
        best: dict[str, float] = {}

        # Syntactic channel.
        for alias, type_names in self._alias_index.items():
            similarity = combined_similarity(header, alias)
            if similarity < self.config.syntactic_threshold:
                continue
            confidence = 1.0 if similarity >= self.config.exact_threshold else similarity
            for type_name in type_names:
                if confidence > best.get(type_name, 0.0):
                    best[type_name] = confidence

        # Semantic channel.
        if self.embedder is not None:
            header_vector = self.embedder.embed_text(header)
            for type_name, type_vector in self._type_embeddings.items():
                similarity = max(cosine_similarity(header_vector, type_vector), 0.0)
                if similarity < self.config.semantic_threshold:
                    continue
                if similarity > best.get(type_name, 0.0):
                    best[type_name] = similarity

        if self.config.filter_by_data_kind and best:
            best = self._filter_by_kind(column, best)

        scores = [TypeScore(confidence=c, type_name=t) for t, c in best.items()]
        scores.sort(key=lambda s: (-s.confidence, s.type_name))
        result = scores[: self.config.top_k]
        self._cache[cache_key] = result
        return list(result)

    def predict_columns(
        self, table: Table, column_indices: Sequence[int] | None = None
    ) -> dict[int, list[TypeScore]]:
        """Predict candidates for the addressed columns of *table*."""
        indices = range(table.num_columns) if column_indices is None else column_indices
        return {index: self.predict_column(table.columns[index], table) for index in indices}

    # ----------------------------------------------------------------- helpers
    def _filter_by_kind(self, column: Column, candidates: dict[str, float]) -> dict[str, float]:
        """Drop candidates whose expected data kind contradicts the values."""
        column_type = column.data_type
        if column_type is DataType.EMPTY:
            return candidates
        filtered: dict[str, float] = {}
        for type_name, confidence in candidates.items():
            kind = self.ontology.get(type_name).kind
            allowed = _KIND_COMPATIBILITY.get(kind)
            if allowed is None or column_type in allowed:
                filtered[type_name] = confidence
        return filtered
