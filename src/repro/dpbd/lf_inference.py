"""Inferring labeling functions from a relabelled column (Fig. 3, step ②).

Given the column a user just corrected, SigmaTyper derives labeling functions
for the new type: for numeric columns it "captures statistics of the data
distribution using a data profiler", for textual columns it "extracts textual
features, e.g. the most frequent values and the number of unique values", and
for both it "infers functions to indicate co-occurring columns based on the
other detected types".  The header itself becomes a rule too (LF4 in Fig. 3).

The output is a list of :class:`~repro.lookup.labeling_functions.LabelingFunction`
objects tagged with ``source="local"`` (or ``"user"``), ready to be added to a
customer's local model and to drive weak-label generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.table import Column, Table
from repro.lookup.labeling_functions import (
    CoOccurrenceLF,
    ExpectationSuiteLF,
    HeaderMatchLF,
    LabelingFunction,
    MeanRangeLF,
    ValueRangeLF,
    ValueSetLF,
)
from repro.profiler.expectations import build_expectation_suite
from repro.profiler.statistics import profile_column

__all__ = ["LFInferenceConfig", "infer_labeling_functions"]


@dataclass
class LFInferenceConfig:
    """Knobs controlling which labeling functions are derived from feedback."""

    #: Relative widening applied to observed numeric ranges (LF1).
    range_margin: float = 0.25
    #: The mean-range rule (LF2) spans mean ± ``mean_margin_stds`` · std.
    mean_margin_stds: float = 1.5
    #: Columns with at most this many distinct values yield a value-set rule.
    max_set_size: int = 30
    #: Derive a co-occurrence rule when at least this many neighbour types are known.
    min_cooccurring_types: int = 1
    #: Cap on the number of neighbour types included in the co-occurrence rule.
    max_cooccurring_types: int = 3
    #: Source tag attached to the produced labeling functions.
    source: str = "local"
    #: Include the expectation-suite LF for non-numeric columns.
    include_expectation_suite: bool = True
    #: Include the header rule (LF4).
    include_header_rule: bool = True


def infer_labeling_functions(
    column: Column,
    target_type: str,
    table: Table | None = None,
    neighbor_types: list[str] | None = None,
    config: LFInferenceConfig | None = None,
) -> list[LabelingFunction]:
    """Derive labeling functions for *target_type* from a demonstration column.

    Parameters
    ----------
    column:
        The column the user labelled (e.g. "Income" in Fig. 3).
    target_type:
        The corrected semantic type (e.g. ``salary``).
    table:
        The table containing the column, used for co-occurrence rules.
    neighbor_types:
        Types of the *other* columns, when known (ground truth or the
        system's current predictions).  Falls back to the other columns'
        ground-truth annotations when available on the table.
    """
    config = config or LFInferenceConfig()
    # Memoized on the column — shared with the featurizer and the expectation
    # profiler, which inspect the same columns during a feedback round.
    statistics = profile_column(column)
    functions: list[LabelingFunction] = []
    base_kwargs = {"source": config.source}

    # LF1 + LF2: numeric distribution rules.
    if statistics.is_numeric and statistics.minimum is not None and statistics.maximum is not None:
        span = max(abs(statistics.maximum - statistics.minimum), abs(statistics.maximum), 1e-9)
        margin = config.range_margin * span
        functions.append(
            ValueRangeLF(
                target_type,
                low=statistics.minimum - margin,
                high=statistics.maximum + margin,
                name=f"value_range:{target_type}:{column.name}",
                **base_kwargs,
            )
        )
        if statistics.mean is not None:
            std = statistics.std_dev or 0.0
            mean_margin = max(config.mean_margin_stds * std, 0.1 * abs(statistics.mean), 1e-9)
            functions.append(
                MeanRangeLF(
                    target_type,
                    low=statistics.mean - mean_margin,
                    high=statistics.mean + mean_margin,
                    name=f"mean_range:{target_type}:{column.name}",
                    **base_kwargs,
                )
            )
    else:
        # Textual rules: closed vocabulary when the column is categorical,
        # otherwise a profile-derived expectation suite (templates, lengths).
        if statistics.looks_categorical and 0 < statistics.distinct_count <= config.max_set_size:
            functions.append(
                ValueSetLF(
                    target_type,
                    values=sorted(set(column.text_values())),
                    name=f"value_set:{target_type}:{column.name}",
                    **base_kwargs,
                )
            )
        elif config.include_expectation_suite and column.text_values():
            suite = build_expectation_suite(column, statistics)
            functions.append(
                ExpectationSuiteLF(
                    target_type,
                    suite=suite,
                    name=f"profile:{target_type}:{column.name}",
                    **base_kwargs,
                )
            )

    # LF3: co-occurring column types.
    context_types = list(neighbor_types or [])
    if not context_types and table is not None:
        context_types = [
            other.semantic_type
            for other in table.columns
            if other is not column and other.semantic_type
        ]
    context_types = [t for t in dict.fromkeys(context_types) if t and t != target_type]
    if table is not None and len(context_types) >= config.min_cooccurring_types:
        functions.append(
            CoOccurrenceLF(
                target_type,
                required_types=context_types[: config.max_cooccurring_types],
                name=f"co_occurrence:{target_type}:{column.name}",
                weight=0.7,
                **base_kwargs,
            )
        )

    # LF4: the header itself.
    if config.include_header_rule and column.name.strip():
        functions.append(
            HeaderMatchLF(
                target_type,
                headers=[column.name],
                name=f"header:{target_type}:{column.name}",
                **base_kwargs,
            )
        )
    return functions
