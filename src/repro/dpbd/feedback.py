"""User feedback events for data programming by demonstration.

Section 4.2 of the paper: the user's feedback may be *explicit* (relabelling a
column, as in Fig. 3 where "Income" is corrected from ``revenue`` to
``salary``) or *implicit* (leaving the remaining predictions as-is and
continuing the analysis, which the system interprets as approval).  The
product UI is out of scope here; these dataclasses are the programmatic
contract a UI (or a test, or an example script) uses to deliver feedback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.errors import FeedbackError
from repro.core.table import Column, Table

__all__ = ["ColumnRelabel", "ImplicitApproval", "ExplicitApproval", "FeedbackEvent", "FeedbackLog"]

_EVENT_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class ColumnRelabel:
    """Explicit feedback: the user corrected a column's predicted type."""

    table: Table
    column_name: str
    corrected_type: str
    previous_type: str | None = None
    event_id: int = field(default_factory=lambda: next(_EVENT_COUNTER))

    def __post_init__(self) -> None:
        if not self.corrected_type:
            raise FeedbackError("a relabel needs a corrected semantic type")
        if self.column_name not in self.table:
            raise FeedbackError(
                f"column {self.column_name!r} does not exist in table {self.table.name!r}"
            )

    @property
    def column(self) -> Column:
        """The column the feedback refers to."""
        return self.table.column(self.column_name)

    @property
    def kind(self) -> str:
        return "relabel"


@dataclass(frozen=True)
class ExplicitApproval:
    """Explicit feedback: the user confirmed a predicted type is correct."""

    table: Table
    column_name: str
    approved_type: str
    event_id: int = field(default_factory=lambda: next(_EVENT_COUNTER))

    def __post_init__(self) -> None:
        if not self.approved_type:
            raise FeedbackError("an approval needs the approved semantic type")
        if self.column_name not in self.table:
            raise FeedbackError(
                f"column {self.column_name!r} does not exist in table {self.table.name!r}"
            )

    @property
    def column(self) -> Column:
        """The column the feedback refers to."""
        return self.table.column(self.column_name)

    @property
    def kind(self) -> str:
        return "approval"


@dataclass(frozen=True)
class ImplicitApproval:
    """Implicit feedback: the user kept a prediction and moved on.

    Carries the same information as :class:`ExplicitApproval` but is treated
    with lower weight by the adaptation logic, since the user never actively
    confirmed the label.
    """

    table: Table
    column_name: str
    approved_type: str
    event_id: int = field(default_factory=lambda: next(_EVENT_COUNTER))

    def __post_init__(self) -> None:
        if not self.approved_type:
            raise FeedbackError("an implicit approval needs the kept semantic type")
        if self.column_name not in self.table:
            raise FeedbackError(
                f"column {self.column_name!r} does not exist in table {self.table.name!r}"
            )

    @property
    def column(self) -> Column:
        """The column the feedback refers to."""
        return self.table.column(self.column_name)

    @property
    def kind(self) -> str:
        return "implicit_approval"


FeedbackEvent = ColumnRelabel | ExplicitApproval | ImplicitApproval


class FeedbackLog:
    """Ordered record of the feedback a customer has provided."""

    def __init__(self) -> None:
        self._events: list[FeedbackEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FeedbackEvent]:
        return iter(self._events)

    def record(self, event: FeedbackEvent) -> None:
        """Append an event to the log."""
        self._events.append(event)

    def relabels(self) -> list[ColumnRelabel]:
        """All explicit corrections, in order."""
        return [event for event in self._events if isinstance(event, ColumnRelabel)]

    def approvals(self) -> list[ExplicitApproval | ImplicitApproval]:
        """All approvals (explicit and implicit), in order."""
        return [
            event for event in self._events
            if isinstance(event, (ExplicitApproval, ImplicitApproval))
        ]

    def events_for_type(self, semantic_type: str) -> list[FeedbackEvent]:
        """Events whose (corrected or approved) type equals *semantic_type*."""
        matched = []
        for event in self._events:
            label = getattr(event, "corrected_type", None) or getattr(event, "approved_type", None)
            if label == semantic_type:
                matched.append(event)
        return matched

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
