"""Data programming by demonstration (DPBD): feedback events, labeling
function inference, label models, weak-label generation, and the session loop
that ties them together (Fig. 3 / Section 4.2)."""

from repro.dpbd.data_generator import WeakLabel, WeakLabelingConfig, generate_weak_labels
from repro.dpbd.feedback import (
    ColumnRelabel,
    ExplicitApproval,
    FeedbackEvent,
    FeedbackLog,
    ImplicitApproval,
)
from repro.dpbd.label_model import (
    AgreementWeightedLabelModel,
    LabelModel,
    MajorityVoteLabelModel,
)
from repro.dpbd.lf_inference import LFInferenceConfig, infer_labeling_functions
from repro.dpbd.session import AdaptationUpdate, DPBDSession

__all__ = [
    "ColumnRelabel",
    "ExplicitApproval",
    "ImplicitApproval",
    "FeedbackEvent",
    "FeedbackLog",
    "LFInferenceConfig",
    "infer_labeling_functions",
    "LabelModel",
    "MajorityVoteLabelModel",
    "AgreementWeightedLabelModel",
    "WeakLabel",
    "WeakLabelingConfig",
    "generate_weak_labels",
    "AdaptationUpdate",
    "DPBDSession",
]
