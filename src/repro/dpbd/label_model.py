"""Label models for combining weak labeling-function votes.

Data programming (Ratner et al., cited by the paper) combines the noisy votes
of many labeling functions into probabilistic training labels.  Two label
models are provided:

* :class:`MajorityVoteLabelModel` — the weighted soft majority vote: each LF
  contributes its confidence, scaled by its weight, to its target type.
* :class:`AgreementWeightedLabelModel` — re-estimates each LF's reliability
  from how often it agrees with its peers (a lightweight, EM-flavoured
  approximation of the Snorkel generative model), then applies the weighted
  vote with the learned reliabilities.

Both return, per column, a distribution over candidate types that the weak
label generator thresholds into training examples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.table import Column, Table
from repro.lookup.labeling_functions import LabelingFunction, LFContext

__all__ = ["LabelModel", "MajorityVoteLabelModel", "AgreementWeightedLabelModel"]


@dataclass(frozen=True)
class _VoteMatrix:
    """Raw LF outputs for a batch of columns: ``votes[i][j]`` is LF *j* on column *i*."""

    votes: list[list[float]]
    functions: list[LabelingFunction]

    @property
    def num_columns(self) -> int:
        return len(self.votes)

    @property
    def num_functions(self) -> int:
        return len(self.functions)


def _build_vote_matrix(
    functions: Sequence[LabelingFunction],
    columns: Sequence[tuple[Column, Table | None]],
) -> _VoteMatrix:
    votes = []
    for column, table in columns:
        context = LFContext(table=table)
        votes.append([function.apply(column, context) for function in functions])
    return _VoteMatrix(votes=votes, functions=list(functions))


class LabelModel(ABC):
    """Combines labeling-function outputs into per-type label distributions."""

    @abstractmethod
    def label_distributions(
        self,
        functions: Sequence[LabelingFunction],
        columns: Sequence[tuple[Column, Table | None]],
    ) -> list[dict[str, float]]:
        """Per column, a ``{type: probability-like score}`` distribution."""

    def label_column(
        self,
        functions: Sequence[LabelingFunction],
        column: Column,
        table: Table | None = None,
    ) -> dict[str, float]:
        """Convenience wrapper for a single column."""
        return self.label_distributions(functions, [(column, table)])[0]


class MajorityVoteLabelModel(LabelModel):
    """Weight-scaled soft majority vote over the LF confidences.

    Following data-programming semantics, a labeling function that outputs
    0.0 *abstains* rather than votes against: only firing functions enter the
    per-type average, so a single decisive rule (e.g. an exact header match)
    is not diluted by unrelated rules that simply do not apply to the column.
    """

    def label_distributions(
        self,
        functions: Sequence[LabelingFunction],
        columns: Sequence[tuple[Column, Table | None]],
    ) -> list[dict[str, float]]:
        if not functions:
            return [{} for _ in columns]
        matrix = _build_vote_matrix(functions, columns)
        distributions = []
        for row in matrix.votes:
            totals: dict[str, float] = {}
            weights: dict[str, float] = {}
            for function, vote in zip(matrix.functions, row):
                if vote <= 0.0:
                    continue
                totals[function.target_type] = totals.get(function.target_type, 0.0) + function.weight * vote
                weights[function.target_type] = weights.get(function.target_type, 0.0) + function.weight
            distributions.append(
                {
                    type_name: totals[type_name] / weights[type_name]
                    for type_name in totals
                    if weights[type_name] > 0
                }
            )
        return distributions


class AgreementWeightedLabelModel(LabelModel):
    """Majority vote with LF reliabilities estimated from pairwise agreement.

    Each labeling function's reliability is estimated as the average
    agreement of its firing decisions with the other functions that target
    the same type (functions that fire when their peers fire are deemed more
    reliable), smoothed towards 1.0 so lone functions are not penalised.
    """

    def __init__(self, smoothing: float = 0.5, iterations: int = 2):
        if not 0.0 <= smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in [0, 1]")
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        self.smoothing = smoothing
        self.iterations = iterations
        #: Reliability per LF name after the last call (exposed for inspection).
        self.last_reliabilities: dict[str, float] = {}

    def label_distributions(
        self,
        functions: Sequence[LabelingFunction],
        columns: Sequence[tuple[Column, Table | None]],
    ) -> list[dict[str, float]]:
        if not functions:
            return [{} for _ in columns]
        matrix = _build_vote_matrix(functions, columns)
        reliabilities = [1.0] * matrix.num_functions

        for _ in range(self.iterations):
            reliabilities = self._update_reliabilities(matrix, reliabilities)

        self.last_reliabilities = {
            function.name: reliability
            for function, reliability in zip(matrix.functions, reliabilities)
        }

        distributions = []
        for row in matrix.votes:
            totals: dict[str, float] = {}
            weights: dict[str, float] = {}
            for function, vote, reliability in zip(matrix.functions, row, reliabilities):
                if vote <= 0.0:
                    continue
                effective_weight = function.weight * reliability
                totals[function.target_type] = totals.get(function.target_type, 0.0) + effective_weight * vote
                weights[function.target_type] = weights.get(function.target_type, 0.0) + effective_weight
            distributions.append(
                {
                    type_name: totals[type_name] / weights[type_name]
                    for type_name in totals
                    if weights[type_name] > 0
                }
            )
        return distributions

    def _update_reliabilities(self, matrix: _VoteMatrix, current: list[float]) -> list[float]:
        fired = [[vote >= 0.5 for vote in row] for row in matrix.votes]
        updated = []
        for j, function in enumerate(matrix.functions):
            peers = [
                k for k, other in enumerate(matrix.functions)
                if k != j and other.target_type == function.target_type
            ]
            if not peers or matrix.num_columns == 0:
                updated.append(1.0)
                continue
            agreements = []
            for i in range(matrix.num_columns):
                peer_votes = [fired[i][k] for k in peers]
                if not any(peer_votes) and not fired[i][j]:
                    continue
                agreement = sum(1 for vote in peer_votes if vote == fired[i][j]) / len(peer_votes)
                agreements.append(agreement)
            raw = sum(agreements) / len(agreements) if agreements else 1.0
            updated.append(self.smoothing * 1.0 + (1.0 - self.smoothing) * raw)
        del current
        return updated
