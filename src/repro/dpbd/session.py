"""DPBD session: feedback in, labeling functions and training data out.

This module wires the DPBD pieces together into the loop of Fig. 3: a
feedback event (explicit relabel or approval) is profiled into labeling
functions, the labeling functions mine the source corpus for weakly labeled
training data, and the caller (a customer's local model) receives both as an
:class:`AdaptationUpdate` to apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.collection import TableCorpus
from repro.dpbd.data_generator import WeakLabel, WeakLabelingConfig, generate_weak_labels
from repro.dpbd.feedback import (
    ColumnRelabel,
    ExplicitApproval,
    FeedbackEvent,
    FeedbackLog,
    ImplicitApproval,
)
from repro.dpbd.label_model import AgreementWeightedLabelModel, LabelModel
from repro.dpbd.lf_inference import LFInferenceConfig, infer_labeling_functions
from repro.lookup.labeling_functions import LabelingFunction

__all__ = ["AdaptationUpdate", "DPBDSession"]


@dataclass
class AdaptationUpdate:
    """Everything produced from one feedback event.

    The local model applies this update by adding the labeling functions to
    its store, adding the demonstration column and weak labels to its
    training data, and bumping its per-type weight.
    """

    event: FeedbackEvent
    target_type: str
    labeling_functions: list[LabelingFunction] = field(default_factory=list)
    weak_labels: list[WeakLabel] = field(default_factory=list)

    @property
    def num_training_examples(self) -> int:
        """Weak labels plus the demonstration column itself."""
        return len(self.weak_labels) + 1

    def training_examples(self) -> list[tuple]:
        """``(column, table, label)`` triples: the demonstration plus weak labels."""
        demonstration = (self.event.column, self.event.table, self.target_type)
        return [demonstration] + [weak.as_training_example() for weak in self.weak_labels]


class DPBDSession:
    """Per-customer data-programming-by-demonstration loop."""

    def __init__(
        self,
        source_corpus: TableCorpus | None = None,
        lf_config: LFInferenceConfig | None = None,
        weak_label_config: WeakLabelingConfig | None = None,
        label_model: LabelModel | None = None,
    ) -> None:
        self.source_corpus = source_corpus or TableCorpus(name="empty")
        self.lf_config = lf_config or LFInferenceConfig()
        self.weak_label_config = weak_label_config or WeakLabelingConfig()
        self.label_model = label_model or AgreementWeightedLabelModel()
        self.log = FeedbackLog()

    # ---------------------------------------------------------------- feedback
    def process(self, event: FeedbackEvent) -> AdaptationUpdate:
        """Turn one feedback event into labeling functions and training data."""
        self.log.record(event)
        if isinstance(event, ColumnRelabel):
            target_type = event.corrected_type
        elif isinstance(event, (ExplicitApproval, ImplicitApproval)):
            target_type = event.approved_type
        else:  # pragma: no cover - the union type is closed
            raise TypeError(f"unsupported feedback event {type(event).__name__}")

        functions = infer_labeling_functions(
            column=event.column,
            target_type=target_type,
            table=event.table,
            config=self.lf_config,
        )
        # Implicit approvals are softer evidence: down-weight their rules so a
        # user who merely did not object never outweighs one who corrected.
        if isinstance(event, ImplicitApproval):
            for function in functions:
                function.weight = min(function.weight, 0.5)

        weak_labels = generate_weak_labels(
            corpus=self.source_corpus,
            functions=functions,
            label_model=self.label_model,
            config=self.weak_label_config,
        )
        # Only keep weak labels for the type this event is about; rules for
        # other types are owned by their own feedback events.
        weak_labels = [weak for weak in weak_labels if weak.label == target_type]
        return AdaptationUpdate(
            event=event,
            target_type=target_type,
            labeling_functions=functions,
            weak_labels=weak_labels,
        )

    def relabel(
        self,
        table,
        column_name: str,
        corrected_type: str,
        previous_type: str | None = None,
    ) -> AdaptationUpdate:
        """Convenience wrapper: record and process an explicit correction."""
        return self.process(
            ColumnRelabel(
                table=table,
                column_name=column_name,
                corrected_type=corrected_type,
                previous_type=previous_type,
            )
        )

    def approve(self, table, column_name: str, approved_type: str, implicit: bool = False) -> AdaptationUpdate:
        """Convenience wrapper: record and process an approval."""
        event_class = ImplicitApproval if implicit else ExplicitApproval
        return self.process(
            event_class(table=table, column_name=column_name, approved_type=approved_type)
        )
