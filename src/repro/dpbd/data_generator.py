"""Weak-label generation from the source corpus (Fig. 3, steps ③ and ④).

Once labeling functions have been inferred for a new or corrected type, DPBD
"uses the LFs to extract customized training data from the source corpus into
customized weakly labeled training data" for that type.  This module scans a
corpus, applies the labeling functions through a label model, and returns the
columns whose weak-label score clears a threshold, as ``(column, table,
label, confidence)`` examples ready for finetuning the local model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.table import Column, Table
from repro.corpus.collection import TableCorpus
from repro.dpbd.label_model import LabelModel, MajorityVoteLabelModel
from repro.lookup.labeling_functions import LabelingFunction

__all__ = ["WeakLabel", "WeakLabelingConfig", "generate_weak_labels"]


@dataclass(frozen=True)
class WeakLabel:
    """One weakly labeled training example extracted from the corpus."""

    column: Column
    table: Table | None
    label: str
    confidence: float
    source_table_name: str = ""

    def as_training_example(self) -> tuple[Column, Table | None, str]:
        """The ``(column, table, label)`` triple consumed by finetuning."""
        return (self.column, self.table, self.label)


@dataclass
class WeakLabelingConfig:
    """Parameters of the weak-label extraction pass."""

    #: Minimum combined LF score for a column to become a training example.
    min_confidence: float = 0.5
    #: At most this many examples are kept per target type (best first).
    max_examples_per_type: int = 200
    #: Skip columns that already carry a ground-truth label for another type.
    respect_existing_labels: bool = True

    def validate(self) -> None:
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigurationError("min_confidence must be in [0, 1]")
        if self.max_examples_per_type < 1:
            raise ConfigurationError("max_examples_per_type must be >= 1")


def generate_weak_labels(
    corpus: TableCorpus,
    functions: Sequence[LabelingFunction],
    label_model: LabelModel | None = None,
    config: WeakLabelingConfig | None = None,
) -> list[WeakLabel]:
    """Extract weakly labeled columns from *corpus* using *functions*.

    Parameters
    ----------
    corpus:
        The source corpus to mine (the paper mines the GitTables pretraining
        corpus; customers could equally point this at their own warehouse).
    functions:
        Labeling functions, typically the output of
        :func:`repro.dpbd.lf_inference.infer_labeling_functions`.
    label_model:
        How LF votes are combined; defaults to the weighted majority vote.
    """
    config = config or WeakLabelingConfig()
    config.validate()
    if not functions:
        return []
    label_model = label_model or MajorityVoteLabelModel()

    entries = list(corpus.columns())
    columns = [(entry.column, entry.table) for entry in entries]
    distributions = label_model.label_distributions(functions, columns)

    by_type: dict[str, list[WeakLabel]] = {}
    for entry, distribution in zip(entries, distributions):
        if not distribution:
            continue
        label, confidence = max(distribution.items(), key=lambda item: item[1])
        if confidence < config.min_confidence:
            continue
        if (
            config.respect_existing_labels
            and entry.label is not None
            and entry.label != label
        ):
            continue
        by_type.setdefault(label, []).append(
            WeakLabel(
                column=entry.column,
                table=entry.table,
                label=label,
                confidence=confidence,
                source_table_name=entry.table.name,
            )
        )

    selected: list[WeakLabel] = []
    for label, weak_labels in by_type.items():
        weak_labels.sort(key=lambda example: -example.confidence)
        selected.extend(weak_labels[: config.max_examples_per_type])
    return selected
