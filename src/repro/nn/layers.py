"""Layers of the numpy MLP: dense, ReLU, and (inverted) dropout.

Each layer implements ``forward``/``backward`` with explicitly cached
activations, and exposes its parameters and gradients so the optimizer can
update them in place.  The layers are deliberately minimal — just enough to
train the table-embedding classifier — but fully tested and reusable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.errors import ConfigurationError
from repro.nn.functional import relu, relu_grad

__all__ = ["Layer", "Dense", "ReLU", "Dropout"]


class Layer(ABC):
    """A differentiable transformation with optional parameters."""

    @abstractmethod
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching whatever ``backward`` needs."""

    @abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate the gradient to the layer input; store parameter grads."""

    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays (empty for parameter-free layers)."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`parameters`."""
        return []


class Dense(Layer):
    """Fully connected layer ``y = xW + b`` with He-style initialisation."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, l2: float = 0.0):
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("Dense layer sizes must be positive")
        scale = np.sqrt(2.0 / in_features)
        self.weights = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features, dtype=np.float64)
        self.l2 = float(l2)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weights.shape[0]

    @property
    def out_features(self) -> int:
        return self.weights.shape[1]

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._inputs = inputs
        return inputs @ self.weights + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise ConfigurationError("backward called before a training forward pass")
        self.grad_weights = self._inputs.T @ grad_output
        if self.l2 > 0.0:
            self.grad_weights += self.l2 * self.weights
        self.grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weights.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]

    def l2_penalty(self) -> float:
        """Current L2 regularisation term (added to the reported loss)."""
        if self.l2 <= 0.0:
            return 0.0
        return 0.5 * self.l2 * float((self.weights ** 2).sum())


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._inputs = inputs
        return relu(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise ConfigurationError("backward called before a training forward pass")
        return grad_output * relu_grad(self._inputs)


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep_probability = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep_probability) / keep_probability
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
