"""Optimizers for the numpy MLP.

Adam is the workhorse used by the table-embedding classifier; plain SGD with
momentum is kept for the optimizer-comparison tests and as a simpler
fallback.  Optimizers update parameter arrays in place, matching how the
layers expose their parameters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigurationError

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Updates a fixed set of parameter arrays from their gradients."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    @abstractmethod
    def step(self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        """Apply one update; ``parameters[i]`` is modified in place."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] | None = None

    def step(self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        if len(parameters) != len(gradients):
            raise ConfigurationError("parameters and gradients must align")
        if self._velocity is None:
            self._velocity = [np.zeros_like(parameter) for parameter in parameters]
        for parameter, gradient, velocity in zip(parameters, gradients, self._velocity):
            velocity *= self.momentum
            velocity -= self.learning_rate * gradient
            parameter += velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("Adam betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._step_count = 0
        self._first_moment: list[np.ndarray] | None = None
        self._second_moment: list[np.ndarray] | None = None

    def step(self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        if len(parameters) != len(gradients):
            raise ConfigurationError("parameters and gradients must align")
        if self._first_moment is None:
            self._first_moment = [np.zeros_like(parameter) for parameter in parameters]
            self._second_moment = [np.zeros_like(parameter) for parameter in parameters]
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        assert self._second_moment is not None
        for parameter, gradient, first, second in zip(
            parameters, gradients, self._first_moment, self._second_moment
        ):
            first *= self.beta1
            first += (1.0 - self.beta1) * gradient
            second *= self.beta2
            second += (1.0 - self.beta2) * gradient ** 2
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter -= self.learning_rate * corrected_first / (np.sqrt(corrected_second) + self.epsilon)
