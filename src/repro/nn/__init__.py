"""Numpy neural-network substrate: layers, optimizers, and an MLP classifier."""

from repro.nn.functional import (
    accuracy,
    cross_entropy,
    cross_entropy_grad,
    log_softmax,
    minibatches,
    one_hot,
    relu,
    relu_grad,
    softmax,
)
from repro.nn.layers import Dense, Dropout, Layer, ReLU
from repro.nn.model import MLPClassifier, MLPConfig, TrainingHistory
from repro.nn.optimizers import SGD, Adam, Optimizer

__all__ = [
    "relu",
    "relu_grad",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "cross_entropy_grad",
    "one_hot",
    "accuracy",
    "minibatches",
    "Layer",
    "Dense",
    "ReLU",
    "Dropout",
    "Optimizer",
    "SGD",
    "Adam",
    "MLPClassifier",
    "MLPConfig",
    "TrainingHistory",
]
