"""A multilayer-perceptron classifier built on the numpy layer substrate.

This is the learned model inside the table-embedding pipeline step (the
paper's TaBERT substitute), but it is deliberately generic: features in,
class probabilities out, with mini-batch Adam training, dropout, L2 weight
decay, class weighting for imbalanced corpora, early stopping on a validation
split, and optional warm-start finetuning (used when a local model adapts to
weakly-labeled DPBD data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigurationError, ModelNotTrainedError
from repro.nn.functional import accuracy, cross_entropy, cross_entropy_grad, minibatches, softmax
from repro.nn.layers import Dense, Dropout, Layer, ReLU
from repro.nn.optimizers import Adam

__all__ = ["MLPConfig", "TrainingHistory", "MLPClassifier"]


@dataclass
class MLPConfig:
    """Hyper-parameters of the MLP classifier."""

    hidden_sizes: tuple[int, ...] = (128, 64)
    dropout: float = 0.2
    l2: float = 1e-4
    learning_rate: float = 1e-3
    batch_size: int = 64
    max_epochs: int = 60
    #: Stop when the validation loss has not improved for this many epochs.
    patience: int = 8
    validation_fraction: float = 0.15
    #: Weight classes inversely to their frequency (helps rare semantic types).
    balance_classes: bool = True
    seed: int = 0

    def validate(self) -> None:
        if any(size <= 0 for size in self.hidden_sizes):
            raise ConfigurationError("hidden layer sizes must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigurationError("dropout must be in [0, 1)")
        if not 0.0 <= self.validation_fraction < 0.5:
            raise ConfigurationError("validation_fraction must be in [0, 0.5)")
        if self.batch_size < 1 or self.max_epochs < 1 or self.patience < 1:
            raise ConfigurationError("batch_size, max_epochs and patience must be >= 1")


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded during :meth:`MLPClassifier.fit`."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)
    validation_accuracy: list[float] = field(default_factory=list)
    stopped_epoch: int = 0

    @property
    def epochs(self) -> int:
        return len(self.train_loss)


class MLPClassifier:
    """Feed-forward classifier: dense → ReLU → dropout blocks plus a softmax head."""

    def __init__(self, num_features: int, num_classes: int, config: MLPConfig | None = None):
        if num_features <= 0 or num_classes < 2:
            raise ConfigurationError("need at least one feature and two classes")
        self.config = config or MLPConfig()
        self.config.validate()
        self.num_features = num_features
        self.num_classes = num_classes
        self._rng = np.random.default_rng(self.config.seed)
        self._layers: list[Layer] = self._build_layers()
        self._optimizer = Adam(learning_rate=self.config.learning_rate)
        self._fitted = False
        self.history = TrainingHistory()
        # Feature standardisation parameters (fit on the training set).
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None

    # --------------------------------------------------------------- structure
    def _build_layers(self) -> list[Layer]:
        layers: list[Layer] = []
        previous = self.num_features
        for hidden in self.config.hidden_sizes:
            layers.append(Dense(previous, hidden, self._rng, l2=self.config.l2))
            layers.append(ReLU())
            if self.config.dropout > 0:
                layers.append(Dropout(self.config.dropout, self._rng))
            previous = hidden
        layers.append(Dense(previous, self.num_classes, self._rng, l2=self.config.l2))
        return layers

    def _parameters(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        parameters: list[np.ndarray] = []
        gradients: list[np.ndarray] = []
        for layer in self._layers:
            parameters.extend(layer.parameters())
            gradients.extend(layer.gradients())
        return parameters, gradients

    # ------------------------------------------------------------------ passes
    def _forward(self, features: np.ndarray, training: bool) -> np.ndarray:
        activations = features
        for layer in self._layers:
            activations = layer.forward(activations, training=training)
        return activations

    def _backward(self, grad_logits: np.ndarray) -> None:
        grad = grad_logits
        for layer in reversed(self._layers):
            grad = layer.backward(grad)

    def _standardise(self, features: np.ndarray) -> np.ndarray:
        if self._feature_mean is None or self._feature_scale is None:
            return features
        return (features - self._feature_mean) / self._feature_scale

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        warm_start: bool = False,
        max_epochs: int | None = None,
    ) -> TrainingHistory:
        """Train on ``(features, labels)``; returns the training history.

        With ``warm_start=True`` the existing weights and feature scaling are
        kept and training continues — this is how local models are finetuned
        on the weakly-labeled data DPBD generates.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2 or features.shape[1] != self.num_features:
            raise ConfigurationError(
                f"expected features of shape (n, {self.num_features}), got {features.shape}"
            )
        if len(features) != len(labels):
            raise ConfigurationError("features and labels must have the same length")
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= self.num_classes:
            raise ConfigurationError("labels out of range for the configured number of classes")
        config = self.config
        epochs = max_epochs or config.max_epochs

        if not warm_start or self._feature_mean is None:
            self._feature_mean = features.mean(axis=0)
            scale = features.std(axis=0)
            scale[scale < 1e-8] = 1.0
            self._feature_scale = scale
        standardized = self._standardise(features)

        class_weights = None
        if config.balance_classes:
            counts = np.bincount(labels, minlength=self.num_classes).astype(np.float64)
            counts[counts == 0] = 1.0
            class_weights = counts.sum() / (self.num_classes * counts)

        # Validation split for early stopping.
        num_validation = int(round(config.validation_fraction * len(standardized)))
        order = self._rng.permutation(len(standardized))
        validation_idx = order[:num_validation]
        train_idx = order[num_validation:]
        if len(train_idx) == 0:
            train_idx = order
            validation_idx = np.array([], dtype=np.int64)
        train_x, train_y = standardized[train_idx], labels[train_idx]
        valid_x, valid_y = standardized[validation_idx], labels[validation_idx]

        history = TrainingHistory()
        best_validation = np.inf
        best_weights: list[np.ndarray] | None = None
        epochs_without_improvement = 0

        for epoch in range(epochs):
            epoch_losses = []
            for batch in minibatches(len(train_x), config.batch_size, self._rng):
                logits = self._forward(train_x[batch], training=True)
                loss = cross_entropy(logits, train_y[batch], class_weights)
                grad = cross_entropy_grad(logits, train_y[batch], class_weights)
                self._backward(grad)
                parameters, gradients = self._parameters()
                self._optimizer.step(parameters, gradients)
                epoch_losses.append(loss)

            train_logits = self._forward(train_x, training=False)
            history.train_loss.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
            history.train_accuracy.append(accuracy(train_logits, train_y))

            if len(valid_x):
                valid_logits = self._forward(valid_x, training=False)
                valid_loss = cross_entropy(valid_logits, valid_y, class_weights)
                history.validation_loss.append(valid_loss)
                history.validation_accuracy.append(accuracy(valid_logits, valid_y))
                if valid_loss < best_validation - 1e-5:
                    best_validation = valid_loss
                    best_weights = [parameter.copy() for parameter in self._parameters()[0]]
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= config.patience:
                        history.stopped_epoch = epoch + 1
                        break
            history.stopped_epoch = epoch + 1

        if best_weights is not None:
            for parameter, best in zip(self._parameters()[0], best_weights):
                parameter[...] = best
        self._fitted = True
        self.history = history
        return history

    # -------------------------------------------------------------- inference
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities of shape ``(n, num_classes)``."""
        if not self._fitted:
            raise ModelNotTrainedError("MLPClassifier.predict_proba called before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        logits = self._forward(self._standardise(features), training=False)
        return softmax(logits)

    def predict_logits(self, features: np.ndarray) -> np.ndarray:
        """Raw (pre-softmax) scores — used by the energy-based OOD detector."""
        if not self._fitted:
            raise ModelNotTrainedError("MLPClassifier.predict_logits called before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        return self._forward(self._standardise(features), training=False)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Arg-max class indices."""
        return self.predict_proba(features).argmax(axis=1)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self._fitted

    # ----------------------------------------------------------- serialization
    def get_weights(self) -> list[np.ndarray]:
        """Copies of all trainable arrays (useful for snapshot/rollback)."""
        return [parameter.copy() for parameter in self._parameters()[0]]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Restore weights captured with :meth:`get_weights`."""
        parameters, _ = self._parameters()
        if len(parameters) != len(weights):
            raise ConfigurationError("weight list does not match the model architecture")
        for parameter, stored in zip(parameters, weights):
            if parameter.shape != stored.shape:
                raise ConfigurationError("weight shapes do not match the model architecture")
            parameter[...] = stored
        self._fitted = True
