"""Numerical building blocks for the numpy neural-network substrate.

The table-embedding model of the pipeline (the paper finetunes TaBERT) is
reproduced here as a feature-based multilayer perceptron; since no deep
learning framework is available offline, this subpackage implements the
necessary pieces — activations, softmax/cross-entropy, one-hot encoding,
mini-batch iteration — directly on numpy arrays.

All functions are pure and operate on 2-D ``(batch, features)`` arrays unless
stated otherwise.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "relu",
    "relu_grad",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "cross_entropy_grad",
    "one_hot",
    "accuracy",
    "minibatches",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU with respect to its input (1 where x > 0)."""
    return (x > 0.0).astype(x.dtype)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax (more stable than ``log(softmax(x))``)."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def cross_entropy(
    logits: np.ndarray,
    targets: np.ndarray,
    class_weights: np.ndarray | None = None,
) -> float:
    """Mean cross-entropy of integer *targets* given *logits*.

    ``class_weights`` (one per class) lets training counteract the label
    imbalance of corpus columns (``id`` and ``date`` dominate real tables).
    """
    log_probabilities = log_softmax(logits)
    picked = log_probabilities[np.arange(len(targets)), targets]
    if class_weights is not None:
        weights = class_weights[targets]
        return float(-(picked * weights).sum() / max(weights.sum(), 1e-12))
    return float(-picked.mean())


def cross_entropy_grad(
    logits: np.ndarray,
    targets: np.ndarray,
    class_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Gradient of :func:`cross_entropy` with respect to the logits."""
    probabilities = softmax(logits)
    grad = probabilities.copy()
    grad[np.arange(len(targets)), targets] -= 1.0
    if class_weights is not None:
        weights = class_weights[targets][:, None]
        grad = grad * weights / max(float(class_weights[targets].sum()), 1e-12)
    else:
        grad /= len(targets)
    return grad


def one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels into a ``(batch, num_classes)`` array."""
    encoded = np.zeros((len(targets), num_classes), dtype=np.float64)
    encoded[np.arange(len(targets)), targets] = 1.0
    return encoded


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of rows whose arg-max matches the target."""
    if len(targets) == 0:
        return 0.0
    return float((logits.argmax(axis=1) == targets).mean())


def minibatches(
    num_rows: int,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(num_rows)`` in mini-batches."""
    order = np.arange(num_rows)
    if shuffle:
        rng.shuffle(order)
    for start in range(0, num_rows, batch_size):
        yield order[start : start + batch_size]
