"""Column statistics used by the profiler and the feature extractors.

The DPBD subsystem infers labeling functions from "statistics of the data
distribution using a data profiler" (Section 4.2).  This module computes
those statistics: structural type, null/distinct fractions, numeric moments
and quantiles, text length statistics, character-class composition, and a
coarse character *pattern template* (``"Aa+ 9+"`` style) that summarises the
shape of the values.
"""

from __future__ import annotations

import math
import statistics as stats
from dataclasses import dataclass, field
from typing import Sequence

from repro.core import colblock
from repro.core.datatypes import DataType
from repro.core.table import Column
from repro.core.timings import stage

__all__ = ["ColumnStatistics", "profile_column", "character_template"]


def character_template(value: str, max_run: int = 3) -> str:
    """Collapse a string into a coarse character-class template.

    Letters become ``a`` (or ``A`` for upper case), digits become ``9``, and
    everything else is kept verbatim; runs longer than *max_run* are
    abbreviated with ``+``.  ``"AB-123"`` → ``"AA-99+"``.
    """
    classes = []
    for char in value:
        if char.isdigit():
            classes.append("9")
        elif char.isalpha():
            classes.append("A" if char.isupper() else "a")
        else:
            classes.append(char)
    template: list[str] = []
    run_char = ""
    run_length = 0
    for symbol in classes:
        if symbol == run_char:
            run_length += 1
            if run_length == max_run + 1:
                template.append("+")
            elif run_length <= max_run:
                template.append(symbol)
        else:
            run_char = symbol
            run_length = 1
            template.append(symbol)
    return "".join(template)


@dataclass
class ColumnStatistics:
    """A full statistical profile of one column."""

    column_name: str
    data_type: DataType
    row_count: int
    null_count: int
    distinct_count: int
    # Numeric statistics (None when the column has no numeric interpretation).
    minimum: float | None = None
    maximum: float | None = None
    mean: float | None = None
    median: float | None = None
    std_dev: float | None = None
    quartile_1: float | None = None
    quartile_3: float | None = None
    # Text statistics.
    min_length: int = 0
    max_length: int = 0
    mean_length: float = 0.0
    digit_fraction: float = 0.0
    alpha_fraction: float = 0.0
    whitespace_fraction: float = 0.0
    punctuation_fraction: float = 0.0
    most_frequent_values: list[str] = field(default_factory=list)
    #: Dominant coarse character templates, most common first.
    common_templates: list[str] = field(default_factory=list)

    @property
    def null_fraction(self) -> float:
        """Fraction of missing cells."""
        return self.null_count / self.row_count if self.row_count else 0.0

    @property
    def unique_fraction(self) -> float:
        """Distinct values over non-null values."""
        non_null = self.row_count - self.null_count
        return self.distinct_count / non_null if non_null else 0.0

    @property
    def is_numeric(self) -> bool:
        """Whether numeric moments are available."""
        return self.mean is not None

    @property
    def looks_categorical(self) -> bool:
        """Low-cardinality columns that behave like enumerations."""
        non_null = self.row_count - self.null_count
        if non_null == 0:
            return False
        return self.distinct_count <= max(20, int(0.05 * non_null))

    @property
    def looks_like_identifier(self) -> bool:
        """High-cardinality columns whose values are (nearly) all distinct."""
        return self.unique_fraction >= 0.95 and self.row_count - self.null_count >= 5

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (used in reports and examples)."""
        return {
            "column_name": self.column_name,
            "data_type": self.data_type.value,
            "row_count": self.row_count,
            "null_fraction": round(self.null_fraction, 4),
            "distinct_count": self.distinct_count,
            "unique_fraction": round(self.unique_fraction, 4),
            "minimum": self.minimum,
            "maximum": self.maximum,
            "mean": self.mean,
            "median": self.median,
            "std_dev": self.std_dev,
            "mean_length": round(self.mean_length, 2),
            "most_frequent_values": list(self.most_frequent_values),
            "common_templates": list(self.common_templates),
        }


def _quantile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation quantile of an already sorted sequence."""
    if not sorted_values:
        return math.nan
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(sorted_values[lower])
    weight = position - lower
    return float(sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight)


def profile_column(column: Column, max_frequent: int = 10, max_templates: int = 3) -> ColumnStatistics:
    """Compute the full :class:`ColumnStatistics` profile of *column*.

    Profiles are memoized on the column: the featurizer, the expectation
    profiler, and DPBD labeling-function inference all profile the same
    columns, so repeated calls return the same (shared, treat-as-immutable)
    :class:`ColumnStatistics` object.  Mutating ``column.values`` requires an
    explicit :meth:`~repro.core.table.Column.invalidate_cache` to refresh it.
    """
    def compute() -> ColumnStatistics:
        with stage("profile"):
            view = column._kernel_view()
            if view is not None:
                profile = colblock.kernel_profile(
                    view, column.name, column.data_type, max_frequent, max_templates
                )
                if profile is not None:
                    return profile
            return _compute_profile(column, max_frequent, max_templates)

    return column._memo(("profile", max_frequent, max_templates), compute)


def _compute_profile(column: Column, max_frequent: int, max_templates: int) -> ColumnStatistics:
    text_values = column.text_values()
    numeric_values = column.numeric_values()
    row_count = len(column)
    null_count = row_count - len(text_values)

    # The column's memoized occurrence counts serve the distinct count, the
    # most-frequent ranking, the character-class mix, the length statistics,
    # and the template histogram: every per-occurrence quantity is an
    # integer, so weighting each distinct value by its multiplicity is exact
    # and avoids re-walking repeated values.
    value_counts = column.value_counts()

    profile = ColumnStatistics(
        column_name=column.name,
        data_type=column.data_type,
        row_count=row_count,
        null_count=null_count,
        distinct_count=len(value_counts),
        most_frequent_values=column.most_frequent_values(max_frequent),
    )

    if numeric_values and len(numeric_values) >= max(3, int(0.5 * len(text_values))):
        ordered = sorted(numeric_values)
        profile.minimum = float(ordered[0])
        profile.maximum = float(ordered[-1])
        profile.mean = float(stats.fmean(ordered))
        profile.median = float(_quantile(ordered, 0.5))
        profile.quartile_1 = float(_quantile(ordered, 0.25))
        profile.quartile_3 = float(_quantile(ordered, 0.75))
        profile.std_dev = float(stats.pstdev(ordered)) if len(ordered) > 1 else 0.0

    if text_values:
        lengths = {value: len(value) for value in value_counts}
        profile.min_length = min(lengths.values())
        profile.max_length = max(lengths.values())
        total_chars = sum(lengths[value] * count for value, count in value_counts.items())
        profile.mean_length = total_chars / len(text_values)
        total_chars = total_chars or 1
        digits = alphas = spaces = 0
        template_counts: dict[str, int] = {}
        for value, count in value_counts.items():
            digits += count * sum(char.isdigit() for char in value)
            alphas += count * sum(char.isalpha() for char in value)
            spaces += count * sum(char.isspace() for char in value)
            template = character_template(value)
            template_counts[template] = template_counts.get(template, 0) + count
        profile.digit_fraction = digits / total_chars
        profile.alpha_fraction = alphas / total_chars
        profile.whitespace_fraction = spaces / total_chars
        profile.punctuation_fraction = max(
            0.0, 1.0 - profile.digit_fraction - profile.alpha_fraction - profile.whitespace_fraction
        )
        ranked = sorted(template_counts.items(), key=lambda item: (-item[1], item[0]))
        profile.common_templates = [template for template, _ in ranked[:max_templates]]

    return profile
