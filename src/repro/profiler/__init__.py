"""Data profiler: column statistics and expectation suites.

The offline substitute for Great Expectations used by DPBD to capture a
column's distribution and turn it into labeling functions.
"""

from repro.profiler.expectations import (
    Expectation,
    ExpectationResult,
    ExpectationSuite,
    build_expectation_suite,
)
from repro.profiler.statistics import ColumnStatistics, character_template, profile_column

__all__ = [
    "ColumnStatistics",
    "profile_column",
    "character_template",
    "Expectation",
    "ExpectationResult",
    "ExpectationSuite",
    "build_expectation_suite",
]
