"""Expectation suites — the offline Great Expectations substitute.

SigmaTyper uses a data profiler ("currently Great Expectations" in the paper)
to capture the distribution of a column the user has just relabelled.  The
captured constraints then become labeling functions for DPBD.  This module
implements that profiler contract: a small algebra of :class:`Expectation`
checks, a :class:`ExpectationSuite` that groups and validates them, and
:func:`build_expectation_suite` which derives a suite automatically from a
column's :class:`~repro.profiler.statistics.ColumnStatistics`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import ConfigurationError
from repro.core.table import Column
from repro.profiler.statistics import ColumnStatistics, character_template, profile_column

__all__ = ["ExpectationResult", "Expectation", "ExpectationSuite", "build_expectation_suite"]


@dataclass(frozen=True)
class ExpectationResult:
    """Outcome of validating one expectation against one column."""

    expectation_kind: str
    success: bool
    #: Fraction of (applicable) values that satisfied the expectation.
    observed_fraction: float
    details: str = ""


@dataclass(frozen=True)
class Expectation:
    """One declarative constraint on a column.

    Supported kinds and their ``params``:

    ``values_between``          ``{"min": float, "max": float}``
    ``mean_between``            ``{"min": float, "max": float}``
    ``std_dev_between``         ``{"min": float, "max": float}``
    ``values_in_set``           ``{"values": list[str], "case_sensitive": bool}``
    ``values_match_regex``      ``{"pattern": str}``
    ``values_match_template``   ``{"templates": list[str]}``
    ``null_fraction_at_most``   ``{"max": float}``
    ``distinct_count_between``  ``{"min": int, "max": int}``
    ``value_lengths_between``   ``{"min": int, "max": int}``
    ``unique_fraction_at_least````{"min": float}``
    """

    kind: str
    params: dict = field(default_factory=dict)
    #: Minimum fraction of values that must satisfy a per-value expectation.
    mostly: float = 0.9

    def __post_init__(self) -> None:
        if self.kind not in _CHECKS:
            raise ConfigurationError(
                f"unknown expectation kind {self.kind!r}; expected one of {sorted(_CHECKS)}"
            )
        if not 0.0 < self.mostly <= 1.0:
            raise ConfigurationError("mostly must be in (0, 1]")

    def check(self, column: Column) -> ExpectationResult:
        """Validate the expectation against *column*."""
        return _CHECKS[self.kind](self, column)

    def describe(self) -> str:
        """Human-readable rendering used in explanations and examples."""
        rendered = ", ".join(f"{key}={value!r}" for key, value in sorted(self.params.items()))
        return f"{self.kind}({rendered})"


# ----------------------------------------------------------------------- checks
def _per_value_result(
    expectation: Expectation, column: Column, predicate: Callable[[str], bool], applicable_numeric: bool = False
) -> ExpectationResult:
    values = column.numeric_values() if applicable_numeric else column.text_values()
    if not values:
        return ExpectationResult(expectation.kind, False, 0.0, "no applicable values")
    hits = sum(1 for value in values if predicate(value))
    fraction = hits / len(values)
    return ExpectationResult(expectation.kind, fraction >= expectation.mostly, fraction)


def _check_values_between(expectation: Expectation, column: Column) -> ExpectationResult:
    low = float(expectation.params["min"])
    high = float(expectation.params["max"])
    return _per_value_result(expectation, column, lambda v: low <= v <= high, applicable_numeric=True)


def _check_mean_between(expectation: Expectation, column: Column) -> ExpectationResult:
    values = column.numeric_values()
    if not values:
        return ExpectationResult(expectation.kind, False, 0.0, "no numeric values")
    mean = sum(values) / len(values)
    low, high = float(expectation.params["min"]), float(expectation.params["max"])
    success = low <= mean <= high
    return ExpectationResult(expectation.kind, success, 1.0 if success else 0.0, f"mean={mean:.4g}")


def _check_std_dev_between(expectation: Expectation, column: Column) -> ExpectationResult:
    values = column.numeric_values()
    if len(values) < 2:
        return ExpectationResult(expectation.kind, False, 0.0, "not enough numeric values")
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    std_dev = variance ** 0.5
    low, high = float(expectation.params["min"]), float(expectation.params["max"])
    success = low <= std_dev <= high
    return ExpectationResult(expectation.kind, success, 1.0 if success else 0.0, f"std={std_dev:.4g}")


def _check_values_in_set(expectation: Expectation, column: Column) -> ExpectationResult:
    allowed = expectation.params["values"]
    case_sensitive = bool(expectation.params.get("case_sensitive", False))
    if case_sensitive:
        allowed_set = set(allowed)
        return _per_value_result(expectation, column, lambda v: v in allowed_set)
    allowed_set = {str(value).lower() for value in allowed}
    return _per_value_result(expectation, column, lambda v: v.lower() in allowed_set)


def _check_values_match_regex(expectation: Expectation, column: Column) -> ExpectationResult:
    pattern = re.compile(expectation.params["pattern"])
    return _per_value_result(expectation, column, lambda v: bool(pattern.fullmatch(v)))


def _check_values_match_template(expectation: Expectation, column: Column) -> ExpectationResult:
    templates = set(expectation.params["templates"])
    return _per_value_result(expectation, column, lambda v: character_template(v) in templates)


def _check_null_fraction_at_most(expectation: Expectation, column: Column) -> ExpectationResult:
    limit = float(expectation.params["max"])
    fraction = column.null_fraction()
    return ExpectationResult(expectation.kind, fraction <= limit, 1.0 - fraction, f"null_fraction={fraction:.4g}")


def _check_distinct_count_between(expectation: Expectation, column: Column) -> ExpectationResult:
    low = int(expectation.params["min"])
    high = int(expectation.params["max"])
    distinct = len(column.value_counts())
    success = low <= distinct <= high
    return ExpectationResult(expectation.kind, success, 1.0 if success else 0.0, f"distinct={distinct}")


def _check_value_lengths_between(expectation: Expectation, column: Column) -> ExpectationResult:
    low = int(expectation.params["min"])
    high = int(expectation.params["max"])
    return _per_value_result(expectation, column, lambda v: low <= len(v) <= high)


def _check_unique_fraction_at_least(expectation: Expectation, column: Column) -> ExpectationResult:
    minimum = float(expectation.params["min"])
    fraction = column.unique_fraction()
    return ExpectationResult(expectation.kind, fraction >= minimum, fraction, f"unique_fraction={fraction:.4g}")


_CHECKS: dict[str, Callable[[Expectation, Column], ExpectationResult]] = {
    "values_between": _check_values_between,
    "mean_between": _check_mean_between,
    "std_dev_between": _check_std_dev_between,
    "values_in_set": _check_values_in_set,
    "values_match_regex": _check_values_match_regex,
    "values_match_template": _check_values_match_template,
    "null_fraction_at_most": _check_null_fraction_at_most,
    "distinct_count_between": _check_distinct_count_between,
    "value_lengths_between": _check_value_lengths_between,
    "unique_fraction_at_least": _check_unique_fraction_at_least,
}


@dataclass
class ExpectationSuite:
    """A named collection of expectations describing one column's distribution."""

    name: str
    expectations: list[Expectation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.expectations)

    def __iter__(self):
        return iter(self.expectations)

    def add(self, expectation: Expectation) -> None:
        """Append an expectation to the suite."""
        self.expectations.append(expectation)

    def validate(self, column: Column) -> list[ExpectationResult]:
        """Check every expectation against *column*."""
        return [expectation.check(column) for expectation in self.expectations]

    def success_fraction(self, column: Column) -> float:
        """Fraction of expectations the column satisfies (1.0 for an empty suite)."""
        if not self.expectations:
            return 1.0
        results = self.validate(column)
        return sum(result.success for result in results) / len(results)

    def matches(self, column: Column, required_fraction: float = 0.8) -> bool:
        """Whether the column satisfies at least *required_fraction* of the suite."""
        return self.success_fraction(column) >= required_fraction


def build_expectation_suite(
    column: Column,
    statistics: ColumnStatistics | None = None,
    name: str | None = None,
    numeric_margin: float = 0.25,
    max_set_size: int = 30,
) -> ExpectationSuite:
    """Derive a descriptive expectation suite from a column's observed values.

    This is the profiling half of DPBD: given a column the user just labelled,
    capture its distribution as declarative constraints that later double as
    labeling functions.

    Parameters
    ----------
    numeric_margin:
        Numeric ranges are widened by this relative margin so near-identical
        columns in the corpus still match the derived range expectations.
    max_set_size:
        Columns with at most this many distinct values additionally get a
        ``values_in_set`` expectation.
    """
    # profile_column is memoized on the column, so deriving a suite for a
    # column the featurizer or DPBD already profiled reuses that profile.
    statistics = statistics or profile_column(column)
    suite = ExpectationSuite(name=name or f"profile:{column.name}")

    suite.add(Expectation("null_fraction_at_most", {"max": max(0.05, statistics.null_fraction * 2)}))

    if statistics.is_numeric and statistics.minimum is not None and statistics.maximum is not None:
        span = max(abs(statistics.maximum - statistics.minimum), abs(statistics.maximum), 1e-9)
        margin = numeric_margin * span
        suite.add(
            Expectation(
                "values_between",
                {"min": statistics.minimum - margin, "max": statistics.maximum + margin},
                mostly=0.85,
            )
        )
        if statistics.mean is not None and statistics.std_dev is not None:
            mean_margin = max(statistics.std_dev, 0.1 * abs(statistics.mean), 1e-9)
            suite.add(
                Expectation(
                    "mean_between",
                    {"min": statistics.mean - mean_margin, "max": statistics.mean + mean_margin},
                )
            )
    else:
        if statistics.max_length:
            suite.add(
                Expectation(
                    "value_lengths_between",
                    {"min": max(1, statistics.min_length - 2), "max": statistics.max_length + 5},
                    mostly=0.85,
                )
            )
        if statistics.common_templates:
            suite.add(
                Expectation(
                    "values_match_template",
                    {"templates": list(statistics.common_templates)},
                    mostly=0.6,
                )
            )

    if statistics.looks_categorical and 0 < statistics.distinct_count <= max_set_size:
        suite.add(
            Expectation(
                "values_in_set",
                {"values": sorted(set(column.text_values())), "case_sensitive": False},
                mostly=0.8,
            )
        )
    if statistics.looks_like_identifier:
        suite.add(Expectation("unique_fraction_at_least", {"min": 0.9}))
    return suite
