"""``python -m repro.analysis`` — see :mod:`repro.analysis.cli`."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
