"""The checked-in registry of every ``REPRO_*`` environment knob.

This is the single source of truth three consumers share:

* **RL006** (env-knob-registry) statically finds every ``os.environ`` read
  of a ``REPRO_*`` name under ``src/`` and fails when the name is not
  registered here — and, inversely, when a registered knob is read nowhere.
* ``python scripts/repro_lint.py --knobs`` renders this registry as the
  markdown table embedded in ``docs/SERVING.md`` between the
  ``knob-table:begin``/``end`` markers.
* ``scripts/check_doc_links.py`` (the CI docs job) re-renders the table and
  fails when the embedded copy drifted — a removed or stale row is a CI
  failure, not silent doc rot.

Adding a knob is therefore one code read + one registry entry + rerunning
``--knobs`` into the doc, and CI holds the three in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Markers delimiting the generated table inside docs/SERVING.md.
TABLE_BEGIN = "<!-- knob-table:begin -->"
TABLE_END = "<!-- knob-table:end -->"


@dataclass(frozen=True)
class Knob:
    name: str  # the environment variable, e.g. "REPRO_NET_IO_TIMEOUT"
    default: str  # rendered default ("unset" when there is none)
    knob_type: str  # operator-facing type, e.g. "float, seconds"
    defined_in: str  # repo-relative module that reads it
    description: str  # one-line operator meaning


KNOWN_KNOBS = (
    Knob(
        name="REPRO_COLUMNAR_KERNELS",
        default="1",
        knob_type="bool (0/false/no/off disable)",
        defined_in="src/repro/core/colblock.py",
        description="Kill switch for the block-native columnar kernels; "
        "disabled processes fall back to per-value profiling.",
    ),
    Knob(
        name="REPRO_NET_PEERS",
        default="unset",
        knob_type="host:port[,host:port...]",
        defined_in="src/repro/serving/net.py",
        description='Worker peers for the bare "+tcp" backend spec '
        "(specs with an inline peer list ignore it).",
    ),
    Knob(
        name="REPRO_NET_CONNECT_TIMEOUT",
        default="2.0",
        knob_type="float, seconds",
        defined_in="src/repro/serving/net.py",
        description="Deadline for one TCP dial to a block worker peer.",
    ),
    Knob(
        name="REPRO_NET_IO_TIMEOUT",
        default="30.0",
        knob_type="float, seconds",
        defined_in="src/repro/serving/net.py",
        description="Deadline for each framed read/write on an established "
        "connection.",
    ),
    Knob(
        name="REPRO_NET_CONNECT_RETRIES",
        default="2",
        knob_type="int",
        defined_in="src/repro/serving/net.py",
        description="Additional connect attempts after the first (0 = dial "
        "once).",
    ),
    Knob(
        name="REPRO_NET_BACKOFF_BASE",
        default="0.05",
        knob_type="float, seconds",
        defined_in="src/repro/serving/net.py",
        description="First reconnect backoff; each later retry doubles it.",
    ),
    Knob(
        name="REPRO_NET_BACKOFF_MAX",
        default="1.0",
        knob_type="float, seconds",
        defined_in="src/repro/serving/net.py",
        description="Cap on the exponential reconnect backoff.",
    ),
    Knob(
        name="REPRO_NET_MAX_MESSAGE_BYTES",
        default="268435456",
        knob_type="int, bytes",
        defined_in="src/repro/serving/net.py",
        description="Frame-length bound, checked before the payload is read "
        "(256 MB).",
    ),
)


def knob_names() -> frozenset:
    return frozenset(knob.name for knob in KNOWN_KNOBS)


def render_knob_table() -> str:
    """The markdown table (no markers) docs/SERVING.md embeds verbatim."""
    lines = [
        "| Knob | Default | Type | Defined in | Meaning |",
        "| --- | --- | --- | --- | --- |",
    ]
    for knob in sorted(KNOWN_KNOBS, key=lambda k: k.name):
        lines.append(
            f"| `{knob.name}` | `{knob.default}` | {knob.knob_type} "
            f"| `{knob.defined_in}` | {knob.description} |"
        )
    return "\n".join(lines)


def embedded_table_problems(markdown_text: str) -> list:
    """Why *markdown_text*'s embedded knob table does not match the registry.

    Returns human-readable problem strings (empty = in sync).  Used by
    ``scripts/check_doc_links.py`` on ``docs/SERVING.md`` and directly by the
    test suite on doctored copies.
    """
    problems = []
    if TABLE_BEGIN not in markdown_text or TABLE_END not in markdown_text:
        return [
            f"knob-table markers missing ({TABLE_BEGIN} / {TABLE_END}) — "
            "regenerate with: python scripts/repro_lint.py --knobs"
        ]
    embedded = markdown_text.split(TABLE_BEGIN, 1)[1].split(TABLE_END, 1)[0].strip()
    expected = render_knob_table()
    if embedded == expected:
        return problems
    embedded_rows = {
        line.split("|")[1].strip() for line in embedded.splitlines() if line.startswith("| `")
    }
    expected_rows = {
        line.split("|")[1].strip() for line in expected.splitlines() if line.startswith("| `")
    }
    for missing in sorted(expected_rows - embedded_rows):
        problems.append(f"knob table: registered knob {missing} has no row")
    for unknown in sorted(embedded_rows - expected_rows):
        problems.append(f"knob table: row {unknown} is not in the registry")
    if not problems:
        problems.append("knob table: rows present but content drifted")
    problems.append("regenerate with: python scripts/repro_lint.py --knobs")
    return problems
