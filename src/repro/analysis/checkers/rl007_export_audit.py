"""RL007: every public serving class is reachable from the package root.

The PR 10 export-audit rule: the serving layer is consumed as one package
(``from repro.serving import AnnotationPool``), so a class a submodule
declares public (listed in its ``__all__``) that the package root's
``__all__`` does not re-export is an API hole — reachable only through the
submodule path, invisible to ``import *`` consumers and to the docs' root
namespace.  Wire-protocol constants and frame helpers stay submodule-level
on purpose; the audit binds *classes*, the unit the serving API is built
from.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker

_PACKAGE_DIR = "src/repro/serving"
_PACKAGE_INIT = f"{_PACKAGE_DIR}/__init__.py"


def _declared_all(tree: ast.Module) -> tuple[list[str], ast.AST | None]:
    """The module's literal ``__all__`` names and the assignment node."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            if isinstance(node.value, (ast.List, ast.Tuple)):
                names = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant) and isinstance(element.value, str)
                ]
                return names, node
    return [], None


class ExportAuditChecker(Checker):
    id = "RL007"
    name = "serving-export-audit"
    scopes = ("src",)
    fix_hint = (
        "import the class in src/repro/serving/__init__.py and add it to the "
        "package __all__ (or drop it from the submodule __all__ if it is not "
        "public API)"
    )
    explain = """\
RL007 serving-export-audit (src/ only, whole-project)

Every class a src/repro/serving/*.py submodule lists in its __all__ must
also appear in the package root __all__ (src/repro/serving/__init__.py), so
`from repro.serving import X` works for every public serving class.

Why: the serving API is documented and consumed at the package root; a
class that is public in its submodule but missing from the root is an
export hole that only shows up as a user's ImportError.  Constants and
functions (frame helpers, wire message ids) are deliberately out of scope —
they are protocol surface, not API classes.

The finding anchors at the submodule's __all__ assignment; fix it in the
package __init__ (import + __all__ entry).
"""

    def __init__(self) -> None:
        #: submodule → (public class names, __all__ node, module context).
        self._submodules: dict[str, tuple[list[str], ast.AST, object]] = {}
        self._root_names: set[str] | None = None

    def check_module(self, module):
        if not module.rel_path.startswith(_PACKAGE_DIR + "/"):
            return
        names, node = _declared_all(module.tree)
        if module.rel_path == _PACKAGE_INIT:
            self._root_names = set(names)
            return
        if node is None:
            return
        top_level_classes = {
            statement.name
            for statement in module.tree.body
            if isinstance(statement, ast.ClassDef)
        }
        public_classes = [name for name in names if name in top_level_classes]
        if public_classes:
            self._submodules[module.rel_path] = (public_classes, node, module)
        return
        yield  # pragma: no cover - makes this a generator like its siblings

    def finish(self, project):
        if self._root_names is None:
            # The serving package was not part of this run's file set (e.g. a
            # lint fixture tree); nothing to reconcile against.
            return
        for classes, node, module in self._submodules.values():
            missing = [name for name in classes if name not in self._root_names]
            if missing:
                yield self.finding(
                    module,
                    node,
                    f"public serving class(es) {', '.join(missing)} not re-exported "
                    f"by {_PACKAGE_INIT} __all__",
                )
