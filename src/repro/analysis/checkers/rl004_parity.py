"""RL004: parity hygiene — no nondeterminism sources in production code.

The parity contract (docs/ARCHITECTURE.md): every execution shape — serial,
threaded, multiprocess, shm/tcp transports, kernels on or off — produces
bit-identical predictions.  That contract dies the moment an unseeded RNG,
a wall-clock value, a PYTHONHASHSEED-dependent ``hash()``, or a set
iteration order can reach a result or a codec byte layout.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import call_name, enclosing_function
from repro.analysis.core import Checker

#: Legacy global-RNG entry points are banned outright; seeded constructors
#: (`random.Random(seed)`, `np.random.default_rng(seed)`) are the idiom.
_NP_ALLOWED = frozenset(
    {"default_rng", "Generator", "RandomState", "SeedSequence", "PCG64", "MT19937"}
)

#: Wall-clock / entropy calls whose value must never reach results.
_NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
    }
)

#: Order-insensitive consumers that neutralise set iteration order.
_ORDER_SAFE_CONSUMERS = frozenset({"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"})

#: Consumers that materialise iteration order into a sequence.
_ORDER_MATERIALISERS = frozenset({"list", "tuple", "enumerate", "iter"})


class ParityHygieneChecker(Checker):
    id = "RL004"
    name = "parity-hygiene"
    scopes = ("src",)
    fix_hint = (
        "thread a seeded random.Random / np.random.default_rng(seed) through; "
        "sort sets before iterating; derive ids from content (blake2b), never "
        "from hash()/id()/clocks"
    )
    explain = """\
RL004 parity-hygiene (src/ only)

Flags nondeterminism sources in production code:

  * global-RNG calls: `random.<fn>()` (module-level RNG) and legacy
    `np.random.<fn>()`; `np.random.default_rng()` with NO seed argument;
  * wall-clock/entropy values: time.time, datetime.now/utcnow, uuid.uuid1/4,
    os.urandom (time.monotonic is fine — it is a duration tool, flagged
    nowhere);
  * builtin hash() outside __hash__ (PYTHONHASHSEED-dependent) and id() in
    a return value (address-dependent);
  * iterating a set (set()/frozenset() calls, set literals/comprehensions,
    set-algebra expressions) in a for loop or comprehension, or
    materialising one via list()/tuple()/enumerate() — set order is
    hash-seed-dependent; `sorted(...)` first.  Order-insensitive consumers
    (sorted/len/sum/min/max/any/all) are fine.

Why: the parity contract says serial == threaded == multiprocess == +shm ==
+tcp, bit-identical.  Content-addressed caching (Column.content_hash),
codec byte layouts, and the E10-E16 parity gates all assume it.  Legitimate
process-local uses (e.g. os.urandom in a shm segment NAME that never
reaches results) carry a suppression naming that fact.
"""

    def check_module(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if self._is_set_expr(iterable) and not self._order_safe(module, iterable):
                    yield self.finding(
                        module,
                        iterable,
                        "iterating a set: order is hash-seed-dependent — "
                        "sort (or otherwise canonicalise) first",
                    )

    def _check_call(self, module, node: ast.Call):
        name = call_name(node)
        if not name:
            return
        head, _, tail = name.rpartition(".")
        if head == "random" and tail != "Random":
            yield self.finding(
                module,
                node,
                f"{name}() uses the process-global RNG — thread a seeded "
                "random.Random through instead",
            )
        elif head in ("np.random", "numpy.random"):
            if tail not in _NP_ALLOWED:
                yield self.finding(
                    module,
                    node,
                    f"{name}() uses numpy's legacy global RNG — use "
                    "np.random.default_rng(seed)",
                )
            elif tail == "default_rng" and not node.args:
                yield self.finding(
                    module, node, "np.random.default_rng() without a seed"
                )
        elif name in _NONDETERMINISTIC_CALLS:
            yield self.finding(
                module,
                node,
                f"{name}() is nondeterministic — its value must never reach "
                "results or codec byte layouts",
            )
        elif name == "hash":
            func = enclosing_function(module, node)
            if func is None or func.name != "__hash__":
                yield self.finding(
                    module,
                    node,
                    "builtin hash() is PYTHONHASHSEED-dependent — use a "
                    "content digest (blake2b) instead",
                )
        elif name == "id":
            parent = module.parent(node)
            if isinstance(parent, ast.Return):
                yield self.finding(
                    module,
                    node,
                    "returning id(): address-dependent values must not leave "
                    "the process",
                )
        elif tail in _ORDER_MATERIALISERS and not head:
            if node.args and self._is_set_expr(node.args[0]):
                yield self.finding(
                    module,
                    node.args[0],
                    f"{name}(set(...)) materialises hash-seed-dependent order "
                    "— use sorted(...)",
                )

    # ------------------------------------------------------------- set exprs
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and call_name(node) in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _order_safe(self, module, node: ast.AST) -> bool:
        parent = module.parent(node)
        while isinstance(parent, ast.BinOp):
            parent = module.parent(parent)
        if isinstance(parent, ast.Call):
            name = call_name(parent)
            if name and name.rsplit(".", 1)[-1] in _ORDER_SAFE_CONSUMERS:
                return True
        return False
