"""Checker registry: one module per RL id, assembled here.

Adding a checker: write the module, append the class, give it fixtures in
``tests/test_repro_lint.py`` (at least one positive and one negative), and
document it in the ``docs/ARCHITECTURE.md`` static-analysis catalogue.
"""

from repro.analysis.checkers.rl001_async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.rl002_lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.rl003_resource_lifecycle import ResourceLifecycleChecker
from repro.analysis.checkers.rl004_parity import ParityHygieneChecker
from repro.analysis.checkers.rl005_stats_lock import StatsLockChecker
from repro.analysis.checkers.rl006_env_knobs import EnvKnobChecker
from repro.analysis.checkers.rl007_export_audit import ExportAuditChecker

ALL_CHECKERS = (
    AsyncBlockingChecker,
    LockDisciplineChecker,
    ResourceLifecycleChecker,
    ParityHygieneChecker,
    StatsLockChecker,
    EnvKnobChecker,
    ExportAuditChecker,
)

__all__ = ["ALL_CHECKERS"]
