"""RL002: lock acquire/release discipline + fork-safe module locks.

The PR 4 deadlock class: the write-behind flusher held a store lock at
``fork()``, so the child inherited a lock nobody would ever release.  Two
static invariants close that class:

* an explicit ``.acquire()`` must have its ``.release()`` guaranteed by a
  ``try/finally`` (or be a ``with`` block, which never calls ``.acquire()``
  in source);
* a module-level lock in a module that registers at-fork handlers must be
  re-initialised in the after-fork-in-child handler — an inherited held
  lock is a wedge.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import (
    call_name,
    dotted_name,
    looks_like_lock,
    release_targets,
    statement_block_of,
)
from repro.analysis.core import Checker

_LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "Lock", "RLock", "multiprocessing.Lock"}
)


class LockDisciplineChecker(Checker):
    id = "RL002"
    name = "lock-discipline"
    fix_hint = (
        "prefer `with lock:`; if acquire must be explicit, pair it with a "
        "try/finally releasing the same lock, and re-init module-level locks "
        "in the after-fork-in-child handler"
    )
    explain = """\
RL002 lock-discipline

Two sub-rules, both grounded in the PR 4 flusher-lock fork deadlock:

1. Explicit `.acquire()` on a lock-like receiver must have its `.release()`
   guaranteed: either the acquire sits inside a `try` whose `finally` (or
   handlers) release the SAME receiver, or a later sibling statement in the
   same block is such a `try`.  (`with lock:` is always the preferred form
   and never triggers the rule.)

2. In any module that calls os.register_at_fork, every module-level
   `NAME = threading.Lock()/RLock()` must be re-assigned inside an
   after-fork-in-child handler (a function whose name mentions fork+child).
   A child that inherits a lock held by a parent-only thread (classically
   the write-behind flusher) is wedged forever — the exact PR 4 bug.

Cross-function ownership transfers (an at-fork *before* handler acquiring
locks the *after* handlers release) are legitimate but unprovable statically:
suppress those sites with the reason naming the releasing function.
"""

    def check_module(self, module):
        yield from self._check_acquires(module)
        yield from self._check_module_locks(module)

    # ------------------------------------------------------- explicit acquire
    def _check_acquires(self, module):
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                continue
            receiver = dotted_name(node.func.value)
            if not looks_like_lock(receiver):
                continue
            if self._release_guaranteed(module, node, receiver):
                continue
            yield self.finding(
                module,
                node,
                f"{receiver}.acquire() without a try/finally releasing it "
                "on every path — prefer `with {0}:`".format(receiver),
            )

    def _release_guaranteed(self, module, call, receiver: str) -> bool:
        # The acquire's own statement (innermost ast.stmt ancestor).
        statement = None
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.stmt):
                statement = ancestor
                break
        if statement is None:
            return False
        # Inside a try whose finally/except releases the receiver.
        probe = statement
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.Try) and probe not in ancestor.finalbody:
                if receiver in release_targets(ancestor, ("release",)):
                    return True
            if isinstance(ancestor, ast.stmt):
                probe = ancestor
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        # Or immediately followed (same block) by such a try.
        _, block = statement_block_of(module, statement)
        if block is not None:
            index = block.index(statement)
            for sibling in block[index + 1 :]:
                if isinstance(sibling, ast.Try) and receiver in release_targets(
                    sibling, ("release",)
                ):
                    return True
        return False

    # --------------------------------------------------- module-level + fork
    def _check_module_locks(self, module):
        registers_at_fork = any(
            isinstance(node, ast.Call)
            and (call_name(node) or "").endswith("register_at_fork")
            for node in ast.walk(module.tree)
        )
        if not registers_at_fork:
            return
        module_locks = {}
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and call_name(stmt.value) in _LOCK_CONSTRUCTORS
            ):
                module_locks[stmt.targets[0].id] = stmt
        if not module_locks:
            return
        reinitialised = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = node.name.lower()
            if not ("fork" in name and "child" in name):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            reinitialised.add(target.id)
        for lock_name, stmt in sorted(module_locks.items()):
            if lock_name not in reinitialised:
                yield self.finding(
                    module,
                    stmt,
                    f"module-level lock {lock_name} in a fork-registering module "
                    "is never re-initialised in an after-fork-in-child handler "
                    "(inherited held locks wedge the child)",
                )
