"""RL006: every ``REPRO_*`` env knob read in src/ is registered.

The registry (:mod:`repro.analysis.knobs`) is what the docs tables are
generated from and validated against; an unregistered read is a knob
operators can set but never discover — exactly the silent doc drift the
env-knob satellite ends.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import call_name, dotted_name
from repro.analysis.core import Checker
from repro.analysis.knobs import knob_names

_PREFIX = "REPRO_"


def _literal_head(node: ast.AST) -> tuple | None:
    """(text, is_exact) for a string literal or an f-string's leading
    literal run; None when the expression cannot start with a literal."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, len(node.values) == 1
    return None


class _RegistryLocation:
    """Stand-in module context pointing whole-project findings at the
    registry module, where the fix goes."""

    rel_path = "src/repro/analysis/knobs.py"
    lines: tuple = ()


class _RegistryNode:
    lineno = 1
    col_offset = 0


class EnvKnobChecker(Checker):
    id = "RL006"
    name = "env-knob-registry"
    scopes = ("src",)
    fix_hint = (
        "register the knob in src/repro/analysis/knobs.py and refresh the doc "
        "table: python scripts/repro_lint.py --knobs"
    )
    explain = """\
RL006 env-knob-registry (src/ only)

Every environment read of a `REPRO_*` name — os.environ.get/[...],
os.getenv, or any `.get()` on an environ-like mapping — must resolve to a
knob registered in src/repro/analysis/knobs.py:

  * literal names must be registered exactly;
  * dynamic names (f-strings like f"REPRO_NET_{field.upper()}") must carry a
    literal prefix longer than "REPRO_" matching at least one registered
    knob;
  * inversely, a registered knob that no src/ code reads is a stale registry
    entry (reported once, against the registry module).

Why: the registry is the single source the docs/SERVING.md knob table is
generated from (scripts/repro_lint.py --knobs) and validated against in the
CI docs job — RL006 is the code-side half of that loop, so a knob cannot
ship readable-but-undocumented, or documented-but-dead.
"""

    def __init__(self) -> None:
        self._read_names: set = set()
        self._read_prefixes: set = set()

    def check_module(self, module):
        registered = knob_names()
        for node in ast.walk(module.tree):
            arg = self._env_read_arg(node)
            if arg is None:
                continue
            head = _literal_head(arg)
            if head is None:
                continue
            text, exact = head
            if not text.startswith(_PREFIX):
                continue
            if exact:
                self._read_names.add(text)
                if text not in registered:
                    yield self.finding(
                        module,
                        node,
                        f"env knob {text} is read here but not registered in "
                        "repro.analysis.knobs",
                    )
            else:
                self._read_prefixes.add(text)
                if text == _PREFIX or not any(
                    name.startswith(text) for name in registered
                ):
                    yield self.finding(
                        module,
                        node,
                        f"dynamic env knob read with prefix {text!r} matches no "
                        "registered knob (and bare REPRO_ is too broad to check)",
                    )

    def finish(self, project):
        registered = knob_names()
        covered = set(self._read_names)
        for prefix in self._read_prefixes:
            covered.update(name for name in registered if name.startswith(prefix))
        for name in sorted(registered - covered):
            yield self.finding(
                _RegistryLocation(),
                _RegistryNode(),
                f"registered knob {name} is read nowhere under src/ — stale "
                "registry entry",
            )

    @staticmethod
    def _env_read_arg(node: ast.AST):
        """The name-expression of an environ read, else None."""
        if isinstance(node, ast.Call):
            name = call_name(node) or ""
            if name == "os.getenv" or name.endswith(("environ.get", "env.get")):
                return node.args[0] if node.args else None
        if isinstance(node, ast.Subscript):
            if dotted_name(node.value) == "os.environ" and isinstance(
                node.slice, ast.expr
            ):
                return node.slice
        return None
