"""RL005: stats/counter mutations happen under the owning lock.

The PR 8 aggregation-bug class: transport stats were double-counted because
mutation paths and the registry disagreed about ownership.  In any class
that declares its own lock, incrementing shared counters outside that lock
is either a torn read/write (threads) or an accounting bug waiting for one.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import call_name, dotted_name
from repro.analysis.core import Checker

_LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "Lock", "RLock", "multiprocessing.Lock"}
)


class StatsLockChecker(Checker):
    id = "RL005"
    name = "stats-counter-safety"
    scopes = ("src",)
    fix_hint = (
        "wrap the mutation in `with self.<lock>:` (RLock makes this safe even "
        "when callers already hold it), or move the counter under the lock's "
        "owner"
    )
    explain = """\
RL005 stats-counter-safety (src/ only)

In any class whose __init__ declares a lock attribute
(`self._lock = threading.Lock()/RLock()`), every augmented assignment to an
instance attribute (`self.hits += 1`, `self.stats.shm_bytes += n`,
`self.stats["frame_errors"] += 1`) must sit lexically inside
`with self.<that lock>:` — or the whole method must carry a lock-taking
decorator (any decorator whose name mentions "lock", e.g.
`@_holding_store_lock`).  __init__ itself and after-fork re-init methods
are exempt (single-threaded by construction).

Why: the PR 8 transport-stats double count came from mutation paths
disagreeing with the stats registry about ownership.  Counters feed
`summary()`, ServiceStats, and the CI benchmark gates — a torn increment is
a silently wrong gate.  Helpers that are ONLY called with the lock held
still pass trivially once wrapped (the stores use RLock precisely so
re-entry is free); truly lock-free counters (single-threaded contexts)
carry a suppression saying so.
"""

    def check_module(self, module):
        classes = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for klass in classes.values():
            yield from self._check_class(module, klass, classes)

    def _check_class(self, module, klass: ast.ClassDef, classes: dict):
        lock_attr = self._effective_lock(klass, classes)
        if lock_attr is None:
            return
        lock_path = f"self.{lock_attr}"
        for method in klass.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = method.name.lower()
            if method.name == "__init__" or ("fork" in name and "child" in name):
                continue
            if self._lock_decorated(method):
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.AugAssign):
                    continue
                target = self._self_counter_path(node.target)
                if target is None:
                    continue
                if target == lock_path or target.startswith(lock_path + "."):
                    continue
                if not self._under_lock(module, node, method, lock_path):
                    yield self.finding(
                        module,
                        node,
                        f"`{target} {self._op(node)}= ...` outside "
                        f"`with {lock_path}:` in a lock-owning class "
                        f"({klass.name})",
                    )

    @staticmethod
    def _lock_decorated(method) -> bool:
        """True if any decorator's name mentions a lock (e.g.
        ``@_holding_store_lock``): the wrapper takes the lock for the body."""
        for deco in method.decorator_list:
            expr = deco.func if isinstance(deco, ast.Call) else deco
            name = dotted_name(expr) or ""
            if "lock" in name.rsplit(".", 1)[-1].lower():
                return True
        return False

    @staticmethod
    def _op(node: ast.AugAssign) -> str:
        return {"Add": "+", "Sub": "-"}.get(type(node.op).__name__, "?")

    def _effective_lock(
        self, klass: ast.ClassDef, classes: dict, depth: int = 0
    ) -> str | None:
        """The class's own declared lock, or one inherited from a base class
        defined in the same module (subclasses share the base's lock)."""
        own = self._declared_lock(klass)
        if own is not None or depth > 8:
            return own
        for base in klass.bases:
            if isinstance(base, ast.Name) and base.id in classes:
                inherited = self._effective_lock(classes[base.id], classes, depth + 1)
                if inherited is not None:
                    return inherited
        return None

    @staticmethod
    def _declared_lock(klass: ast.ClassDef) -> str | None:
        for method in klass.body:
            if isinstance(method, ast.FunctionDef) and method.name == "__init__":
                for node in ast.walk(method):
                    if (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and isinstance(node.targets[0].value, ast.Name)
                        and node.targets[0].value.id == "self"
                        and "lock" in node.targets[0].attr.lower()
                        and isinstance(node.value, ast.Call)
                        and call_name(node.value) in _LOCK_CONSTRUCTORS
                    ):
                        return node.targets[0].attr
        return None

    @staticmethod
    def _self_counter_path(target: ast.AST) -> str | None:
        """`self.a`, `self.a.b`, `self.a[...]` as a display path, else None."""
        if isinstance(target, ast.Subscript):
            base = dotted_name(target.value)
            return f"{base}[...]" if base and base.startswith("self.") else None
        path = dotted_name(target)
        if path and path.startswith("self.") and path.count(".") <= 2:
            return path
        return None

    def _under_lock(self, module, node, method, lock_path: str) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if dotted_name(item.context_expr) == lock_path:
                        return True
            if ancestor is method:
                break
        return False
