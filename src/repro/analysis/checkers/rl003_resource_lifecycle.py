"""RL003: resource lifecycle — close/unlink guaranteed on all paths.

The invariant the E13/E16 ``/dev/shm`` scans and "LEAKED SEGMENT"/"LEAKED
SOCKET" log greps probe at *runtime*: every ``SharedMemory`` segment,
``mmap``, socket, and file handle must be released on every path — context
manager, ``finally``, or an explicit ownership transfer to an object whose
lifecycle releases it.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import (
    call_name,
    iter_functions,
    walk_in_function,
)
from repro.analysis.core import Checker

#: Constructors returning a handle that must be closed.
_RESOURCE_CONSTRUCTORS = frozenset(
    {
        "shared_memory.SharedMemory",
        "multiprocessing.shared_memory.SharedMemory",
        "SharedMemory",
        "mmap.mmap",
        "socket.socket",
        "socket.create_connection",
        "open",
    }
)

#: Methods whose presence in a finally/except counts as guaranteed cleanup.
_CLEANUP_METHODS = ("close", "unlink", "release", "shutdown", "stop", "terminate")

#: Callees that adopt a handle passed as an argument: context-manager
#: adapters, cleanup registries, and container inserts (ownership moves to
#: the container, whose owner closes it).
_ADOPTING_CALLEES = frozenset(
    {
        "closing",
        "enter_context",
        "register",
        "callback",
        "push",
        "addCleanup",
        "add",
        "update",
        "append",
        "appendleft",
        "put",
        "put_nowait",
        "insert",
        "setdefault",
    }
)


class ResourceLifecycleChecker(Checker):
    id = "RL003"
    name = "resource-lifecycle"
    fix_hint = (
        "wrap the handle in `with ...:`, close it in a try/finally, or hand "
        "ownership to an object/closure that guarantees the close"
    )
    explain = """\
RL003 resource-lifecycle

Flags SharedMemory / mmap.mmap / socket.socket / socket.create_connection /
open() handles that are not guaranteed to be released, i.e. none of:

  * created as a `with` context (or later used as one);
  * a close/unlink/release/shutdown/stop on the bound name inside ANY
    try/finally or except handler of the same function;
  * ownership transfer: returned, yielded, stored on an attribute or into a
    container, captured by a nested function (cleanup closures), or passed
    to an adopting callee (contextlib.closing, ExitStack.enter_context,
    atexit.register, addCleanup);
  * a bare constructor expression (e.g. `json.load(open(p))`) is always a
    leak: nobody holds the handle.

Why: the transport layer's segments outlive exceptions ONLY because every
path releases them — PR 5's lifecycle tests and the E13/E16 CI scans check
this dynamically, per run; RL003 checks every path, per commit.
"""

    def check_module(self, module):
        for func in iter_functions(module.tree):
            yield from self._check_function(module, func)

    def _check_function(self, module, func):
        # Names with cleanup guaranteed by a try in this function.
        guaranteed = set()
        for node in walk_in_function(func):
            if isinstance(node, ast.Try):
                blocks = list(node.finalbody)
                for handler in node.handlers:
                    blocks.extend(handler.body)
                for stmt in blocks:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in _CLEANUP_METHODS
                            and isinstance(sub.func.value, ast.Name)
                        ):
                            guaranteed.add(sub.func.value.id)

        escaped = self._escaped_names(func)

        for node in walk_in_function(func):
            if not (isinstance(node, ast.Call) and call_name(node) in _RESOURCE_CONSTRUCTORS):
                continue
            parent = module.parent(node)
            if isinstance(parent, ast.withitem):
                continue
            if isinstance(parent, (ast.Return, ast.Yield, ast.Await)):
                continue
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                target = parent.targets[0]
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue  # ownership moved to an object/container
                if isinstance(target, ast.Name):
                    name = target.id
                    if name in guaranteed or name in escaped:
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"{call_name(node)}() bound to `{name}` has no guaranteed "
                        "close (no with/finally, never escapes this function)",
                    )
                    continue
            if isinstance(parent, ast.Call) and self._adopting(parent):
                continue
            yield self.finding(
                module,
                node,
                f"{call_name(node)}() result is never bound — the handle "
                "cannot be closed on any path",
            )

    @staticmethod
    def _adopting(call: ast.Call) -> bool:
        name = call_name(call)
        return bool(name) and name.rsplit(".", 1)[-1] in _ADOPTING_CALLEES

    @staticmethod
    def _escaped_names(func) -> set:
        escaped = set()
        for node in walk_in_function(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) and node.value:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)
            elif isinstance(node, ast.Assign):
                if any(isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets):
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name):
                            escaped.add(sub.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name and name.rsplit(".", 1)[-1] in _ADOPTING_CALLEES:
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Name):
                                escaped.add(sub.id)
            elif isinstance(node, ast.With):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if isinstance(sub, ast.Name):
                            escaped.add(sub.id)
        return escaped
