"""RL001: no blocking call inside ``async def``.

``frontend.py`` and ``service.py`` are pure asyncio: one blocked event loop
stalls every tenant at once, which is precisely the failure the SLO front
end exists to prevent.  A synchronous sleep, socket dial, file open, or
threading-lock acquire inside a coroutine silently serializes the server.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import (
    call_name,
    dotted_name,
    looks_like_lock,
    walk_in_function,
)
from repro.analysis.core import Checker

#: Callables that block the calling thread outright.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.waitpid",
        "urllib.request.urlopen",
        "open",
    }
)


class AsyncBlockingChecker(Checker):
    id = "RL001"
    name = "blocking-call-in-async"
    fix_hint = (
        "use the asyncio equivalent (asyncio.sleep, asyncio.open_connection, "
        "asyncio.Lock) or push the call off-loop via asyncio.to_thread/run_in_executor"
    )
    explain = """\
RL001 blocking-call-in-async

Flags synchronous blocking calls lexically inside an `async def`:

  * time.sleep, socket dials/DNS, subprocess spawns, os.system, builtin open();
  * non-awaited `.acquire()` on a threading-style lock (a receiver whose name
    mentions lock/mutex/sem) — `await asyncio_lock.acquire()` is fine.

Why: repro.serving.frontend / repro.serving.service run ONE event loop for
every tenant.  A single blocking call inside a coroutine freezes admission
control, deadline bookkeeping, and every in-flight request at once — the
outage mode the SLO front end (PR 6) exists to prevent.  Nested synchronous
`def`s are not flagged (they run when called, under the caller's rules).

Fix: asyncio.sleep / asyncio.open_connection / asyncio.Lock, or wrap the
blocking work in asyncio.to_thread(...).  Suppress (with a reason) only for
calls proven O(microseconds), e.g. a contended-free stats peek.
"""

    def check_module(self, module):
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            awaited = set()
            for node in walk_in_function(func):
                if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                    awaited.add(id(node.value))
            for node in walk_in_function(func):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name in _BLOCKING_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"blocking call {name}() inside async def {func.name}()",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and id(node) not in awaited
                    and looks_like_lock(dotted_name(node.func.value))
                ):
                    yield self.finding(
                        module,
                        node,
                        f"non-awaited lock acquire {name}() inside async def "
                        f"{func.name}() blocks the event loop",
                    )
