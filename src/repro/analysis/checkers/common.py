"""Shared AST helpers for the RL checkers."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, None for anything richer."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee."""
    return dotted_name(call.func)


def looks_like_lock(name: str | None) -> bool:
    """Heuristic: the receiver of ``.acquire()`` is a lock, not e.g. a
    token bucket — its dotted name mentions lock/mutex/sem."""
    if not name:
        return False
    last = name.rsplit(".", 1)[-1].lower()
    return any(token in last for token in ("lock", "mutex", "sem"))


def iter_functions(tree: ast.AST):
    """Every function/async function in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_in_function(func: ast.AST):
    """Walk a function body without descending into nested function defs
    (their bodies run on their own call, under their own rules)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def name_loaded_in(node: ast.AST, name: str) -> bool:
    """Is *name* read anywhere under *node* (including nested functions)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == name:
            return True
    return False


def statement_block_of(module, node: ast.stmt):
    """(parent, field-list) containing statement *node*, or (None, None)."""
    parent = module.parent(node)
    while parent is not None:
        for field in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(parent, field, None)
            if isinstance(block, list) and node in block:
                return parent, block
        node = parent
        parent = module.parent(parent)
    return None, None


def enclosing_function(module, node: ast.AST):
    """Innermost function def lexically containing *node*, or None."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(module, node: ast.AST):
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def release_targets(try_node: ast.Try, methods: tuple) -> set:
    """Dotted receivers of ``.X()`` calls (X in *methods*) in a try's
    finally and except blocks — where cleanup is guaranteed/attempted."""
    receivers = set()
    blocks = list(try_node.finalbody)
    for handler in try_node.handlers:
        blocks.extend(handler.body)
    for stmt in blocks:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in methods
            ):
                receiver = dotted_name(sub.func.value)
                if receiver:
                    receivers.add(receiver)
    return receivers
