"""Text and JSON reporters for a lint run."""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult


def render_text(result: LintResult, verbose_baseline: bool = False) -> str:
    """Human report: one line per finding, grouped by file, summary last."""
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.check_id} [{finding.severity}] {finding.message}"
        )
        if finding.fix_hint:
            lines.append(f"    hint: {finding.fix_hint}")
    if verbose_baseline:
        for finding in result.baselined:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col + 1}: "
                f"{finding.check_id} [baselined] {finding.message}"
            )
    summary = (
        f"{len(result.findings)} finding(s), {len(result.baselined)} baselined, "
        f"{result.suppressed_count} suppressed across {result.module_count} module(s) "
        f"({len(result.checkers)} checkers)"
    )
    lines.append(summary if not lines else "\n" + summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine report — uploaded as the CI artifact."""

    def encode(finding, baselined: bool) -> dict:
        return {
            "check_id": finding.check_id,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "severity": finding.severity,
            "message": finding.message,
            "fix_hint": finding.fix_hint,
            "fingerprint": finding.fingerprint,
            "baselined": baselined,
        }

    payload = {
        "tool": "repro-lint",
        "version": 1,
        "summary": {
            "new_findings": len(result.findings),
            "baselined_findings": len(result.baselined),
            "suppressed": result.suppressed_count,
            "modules": result.module_count,
            "checkers": [c.id for c in result.checkers],
        },
        "findings": [encode(f, False) for f in result.findings]
        + [encode(f, True) for f in result.baselined],
    }
    return json.dumps(payload, indent=2)
