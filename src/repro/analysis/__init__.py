"""repro-lint: AST-based project-invariant checks, enforced in CI.

The serving stack's core invariants — bit-identical parity, airtight
segment/socket lifecycle, fork-safe locking — were historically enforced
only *dynamically* (chaos suites, ``/dev/shm`` scans, log greps).  This
package enforces the same invariants *statically*: a dependency-free
framework over the stdlib :mod:`ast` module running a registry of pluggable
checkers, each grounded in a bug class that actually shipped here (the PR 4
flusher-lock fork deadlock, the PR 8 transport-stats double count, the
E13/E16 segment-leak greps).

Usage (CI runs exactly this, as a hard gate)::

    PYTHONPATH=src python -m repro.analysis src tests benchmarks

See ``python -m repro.analysis --explain RL001`` for per-checker docs and
``docs/ARCHITECTURE.md`` ("Static analysis") for the catalogue, the
suppression policy (``# repro-lint: disable=RL00x <reason>``) and the
baseline policy (grandfathered findings live in ``.repro-lint-baseline.json``;
*new* findings always fail).
"""

from repro.analysis.core import Checker, Finding, Severity, all_checkers
from repro.analysis.engine import LintResult, run_lint

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "Severity",
    "all_checkers",
    "run_lint",
]
