"""Finding/checker model and the checker registry.

A checker is a small class with an ``id`` (``RL001``...), a severity, a
fix hint, a docs link, and a ``check_module`` generator over one parsed
module.  Checkers that need whole-project state (RL006's registry/readers
reconciliation) also implement ``finish``.  The registry is assembled in
:mod:`repro.analysis.checkers` — adding a checker is: write the class,
append it to ``ALL_CHECKERS``, add fixtures to ``tests/test_repro_lint.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import ModuleContext, ProjectContext


class Severity:
    """Finding severities; both fail the gate, warnings are advisory-styled."""

    ERROR = "error"
    WARNING = "warning"


#: Checker id used for framework-level findings (syntax errors, malformed
#: suppression comments) that no registered checker owns.
FRAMEWORK_ID = "RL000"

#: Anchor in the architecture doc every checker links back to.
DOCS_BASE = "docs/ARCHITECTURE.md#static-analysis"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    check_id: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    severity: str = Severity.ERROR
    fix_hint: str = ""
    #: Source text of the offending line, used for the stable fingerprint.
    line_text: str = ""
    #: Stable identity for baseline matching; filled by the engine.
    fingerprint: str = ""
    #: True when the finding is grandfathered by the committed baseline.
    baselined: bool = field(default=False, compare=False)

    def with_fingerprint(self, occurrence: int) -> "Finding":
        """Fingerprint from content, not position: the check id, the file,
        the *text* of the offending line, and an occurrence index among
        identical lines — stable across unrelated edits that renumber
        lines, which is what keeps the baseline from churning."""
        digest = hashlib.sha1(
            f"{self.check_id}|{self.path}|{self.line_text.strip()}|{occurrence}".encode()
        ).hexdigest()[:16]
        return Finding(
            check_id=self.check_id,
            path=self.path,
            line=self.line,
            col=self.col,
            message=self.message,
            severity=self.severity,
            fix_hint=self.fix_hint,
            line_text=self.line_text,
            fingerprint=digest,
        )


class Checker:
    """Base class: subclasses override ``check_module`` (and ``finish``)."""

    id: str = "RL00?"
    name: str = "unnamed"
    severity: str = Severity.ERROR
    fix_hint: str = ""
    #: Top-level directories the checker applies to; parity/locking rules
    #: bind production code (``src``) while lifecycle/async rules bind the
    #: whole tree.
    scopes: tuple = ("src", "tests", "benchmarks")
    #: Long-form documentation printed by ``--explain``.
    explain: str = ""

    @property
    def doc_link(self) -> str:
        return DOCS_BASE

    def check_module(self, module: "ModuleContext") -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finish(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield whole-project findings after every module was scanned."""
        return iter(())

    # ------------------------------------------------------------ convenience
    def finding(
        self,
        module: "ModuleContext",
        node,
        message: str,
        severity: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = module.lines[line - 1] if 0 < line <= len(module.lines) else ""
        return Finding(
            check_id=self.id,
            path=module.rel_path,
            line=line,
            col=col,
            message=message,
            severity=severity or self.severity,
            fix_hint=self.fix_hint,
            line_text=text,
        )


def all_checkers() -> list:
    """Fresh instances of every registered checker (stateful per run)."""
    from repro.analysis.checkers import ALL_CHECKERS

    return [cls() for cls in ALL_CHECKERS]


def checker_by_id(check_id: str) -> Checker | None:
    for checker in all_checkers():
        if checker.id == check_id.upper():
            return checker
    return None


def assign_fingerprints(findings: Iterable[Finding]) -> list:
    """Stable fingerprints: occurrence-indexed among identical line texts."""
    seen: dict = {}
    out = []
    for finding in findings:
        key = (finding.check_id, finding.path, finding.line_text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(finding.with_fingerprint(occurrence))
    return out
