"""File discovery, parsing, suppression handling, and the lint run itself.

Suppressions are per-line comments carrying a mandatory reason::

    lock.acquire()  # repro-lint: disable=RL002 released by the fork handler

A standalone comment line suppresses the next statement line instead, for
lines too long to carry a trailing comment.  A suppression without a reason
is itself a finding (RL000): the reason is the reviewable artifact.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.core import (
    FRAMEWORK_ID,
    Checker,
    Finding,
    Severity,
    all_checkers,
    assign_fingerprints,
)

#: ``# repro-lint: disable=RL001,RL002 <reason>``
_SUPPRESS = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Za-z0-9,\s]+?)(?:\s+(?P<reason>\S.*))?$"
)

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache"}


@dataclass
class Suppression:
    line: int  # line the suppression applies to
    ids: frozenset
    reason: str
    comment_line: int  # line the comment itself is on


@dataclass
class ModuleContext:
    """One parsed source file plus everything checkers need around it."""

    path: Path
    rel_path: str  # repo-relative posix path
    scope: str  # first path component: "src" / "tests" / "benchmarks"
    source: str
    lines: list
    tree: ast.AST
    _parents: dict = field(default_factory=dict, repr=False)

    def parent(self, node: ast.AST):
        if not self._parents:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    def ancestors(self, node: ast.AST):
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


@dataclass
class ProjectContext:
    """Whole-run state handed to ``Checker.finish``."""

    root: Path
    modules: list


@dataclass
class LintResult:
    findings: list  # new (failing) findings, fingerprinted
    baselined: list  # grandfathered findings, still reported
    suppressed_count: int
    module_count: int
    checkers: list

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def parse_suppressions(lines: Iterable[str]) -> list:
    """All suppression comments in a file, resolved to the line they cover."""
    suppressions = []
    for lineno, line in enumerate(lines, 1):
        match = _SUPPRESS.search(line)
        if not match:
            continue
        ids = frozenset(
            part.strip().upper() for part in match.group("ids").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        standalone = line.strip().startswith("#")
        covered = lineno + 1 if standalone else lineno
        suppressions.append(
            Suppression(line=covered, ids=ids, reason=reason, comment_line=lineno)
        )
    return suppressions


def discover_files(paths: Iterable[Path], root: Path) -> list:
    """Every ``.py`` file under *paths*, sorted, caches skipped."""
    found = []
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_file() and path.suffix == ".py":
            found.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIR_NAMES for part in candidate.parts):
                continue
            found.append(candidate)
    return found


def load_module(path: Path, root: Path) -> ModuleContext | Finding:
    """Parse one file; a syntax error is itself a finding, not a crash."""
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    scope = rel.split("/", 1)[0]
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            check_id=FRAMEWORK_ID,
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
            severity=Severity.ERROR,
            line_text=(exc.text or "").rstrip("\n"),
        )
    return ModuleContext(
        path=path,
        rel_path=rel,
        scope=scope,
        source=source,
        lines=source.splitlines(),
        tree=tree,
    )


def run_lint(
    paths: Iterable,
    root: Path | str = ".",
    checkers: list | None = None,
    baseline_fingerprints: frozenset = frozenset(),
) -> LintResult:
    """Run every checker over every file under *paths*.

    Returns new findings, baselined findings, and counts.  The caller (CLI)
    owns baseline IO; this function only needs the fingerprint set so it is
    trivially testable on snippets.
    """
    root = Path(root)
    active = list(checkers) if checkers is not None else all_checkers()
    raw_findings: list = []
    modules: list = []

    for path in discover_files([Path(p) for p in paths], root):
        loaded = load_module(path, root)
        if isinstance(loaded, Finding):
            raw_findings.append(loaded)
            continue
        modules.append(loaded)
        for checker in active:
            if loaded.scope in checker.scopes:
                raw_findings.extend(checker.check_module(loaded))

    project = ProjectContext(root=root, modules=modules)
    for checker in active:
        raw_findings.extend(checker.finish(project))

    # ------------------------------------------------------------ suppression
    suppression_map: dict = {}
    for module in modules:
        for suppression in parse_suppressions(module.lines):
            suppression_map.setdefault((module.rel_path, suppression.line), []).append(
                suppression
            )
            if not suppression.reason:
                raw_findings.append(
                    Finding(
                        check_id=FRAMEWORK_ID,
                        path=module.rel_path,
                        line=suppression.comment_line,
                        col=0,
                        message=(
                            "suppression without a reason — write "
                            "`# repro-lint: disable=<ID> <why this is safe>`"
                        ),
                        line_text=module.lines[suppression.comment_line - 1],
                    )
                )

    kept, suppressed = [], 0
    for finding in raw_findings:
        covering = suppression_map.get((finding.path, finding.line), [])
        if any(finding.check_id in s.ids and s.reason for s in covering):
            suppressed += 1
            continue
        kept.append(finding)

    kept = assign_fingerprints(
        sorted(kept, key=lambda f: (f.path, f.line, f.col, f.check_id))
    )
    new = [f for f in kept if f.fingerprint not in baseline_fingerprints]
    baselined = [f for f in kept if f.fingerprint in baseline_fingerprints]
    return LintResult(
        findings=new,
        baselined=baselined,
        suppressed_count=suppressed,
        module_count=len(modules),
        checkers=active,
    )
