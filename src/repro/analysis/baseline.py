"""Baseline file: grandfathered findings that do not fail the gate.

The committed baseline (``.repro-lint-baseline.json`` at the repo root) is a
list of finding fingerprints with enough context to review them.  Policy:

* the baseline only ever *shrinks* — new findings always fail; fixing a
  grandfathered finding and regenerating removes its entry;
* regenerate with ``--write-baseline`` (review the diff like code);
* fingerprints hash the offending line's *text*, not its number, so
  unrelated edits do not churn the file.
"""

from __future__ import annotations

import json
from pathlib import Path

BASELINE_NAME = ".repro-lint-baseline.json"
_VERSION = 1


def load_baseline(path: Path) -> frozenset:
    """Fingerprint set from a baseline file; empty when absent."""
    if not path.exists():
        return frozenset()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r} "
            f"(expected {_VERSION})"
        )
    return frozenset(entry["fingerprint"] for entry in data.get("findings", []))


def write_baseline(path: Path, findings) -> None:
    """Serialize *findings* (new + still-baselined) as the fresh baseline."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "check_id": f.check_id,
            "path": f.path,
            "line": f.line,
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.check_id))
    ]
    payload = {
        "version": _VERSION,
        "comment": (
            "Grandfathered repro-lint findings. Only shrink this file: fix the "
            "finding and run `python -m repro.analysis src tests benchmarks "
            "--write-baseline`. New findings always fail CI."
        ),
        "findings": entries,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
