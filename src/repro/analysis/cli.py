"""Command-line entry point: ``python -m repro.analysis`` / ``scripts/repro_lint.py``.

Exit codes: 0 clean (baselined findings allowed), 1 new findings, 2 usage
errors.  ``--json`` writes the machine report CI uploads as an artifact;
``--explain RL00x`` prints one checker's long-form docs; ``--knobs`` emits
the env-knob registry as the markdown table embedded in docs/SERVING.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import BASELINE_NAME, load_baseline, write_baseline
from repro.analysis.core import all_checkers, checker_by_id
from repro.analysis.engine import run_lint
from repro.analysis.knobs import TABLE_BEGIN, TABLE_END, render_knob_table
from repro.analysis.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based project-invariant checks (concurrency, resource "
        "lifecycle, parity) for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument("--json", metavar="FILE", help="write the JSON report ('-' = stdout)")
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline entirely"
    )
    parser.add_argument(
        "--root", default=".", help="repo root paths are resolved against (default: cwd)"
    )
    parser.add_argument(
        "--explain", metavar="RL00x", help="print one checker's documentation and exit"
    )
    parser.add_argument(
        "--knobs",
        action="store_true",
        help="print the REPRO_* env-knob registry as markdown and exit",
    )
    parser.add_argument(
        "--list-checkers", action="store_true", help="list registered checkers and exit"
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print grandfathered findings in the text report",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.knobs:
        print(TABLE_BEGIN)
        print(render_knob_table())
        print(TABLE_END)
        return 0

    if args.list_checkers:
        for checker in all_checkers():
            scopes = ",".join(checker.scopes)
            print(f"{checker.id}  {checker.name}  [{checker.severity}; scopes: {scopes}]")
        return 0

    if args.explain:
        checker = checker_by_id(args.explain)
        if checker is None:
            known = ", ".join(c.id for c in all_checkers())
            print(f"unknown checker {args.explain!r} (known: {known})", file=sys.stderr)
            return 2
        print(checker.explain.rstrip())
        print(f"\ndocs: {checker.doc_link}")
        return 0

    root = Path(args.root).resolve()
    baseline_path = Path(args.baseline) if args.baseline else root / BASELINE_NAME
    fingerprints = frozenset()
    if not args.no_baseline and not args.write_baseline:
        try:
            fingerprints = load_baseline(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    missing = [p for p in args.paths if not (root / p).exists() and not Path(p).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    result = run_lint(args.paths, root=root, baseline_fingerprints=fingerprints)

    if args.write_baseline:
        write_baseline(baseline_path, result.findings + result.baselined)
        print(
            f"wrote {baseline_path} with "
            f"{len(result.findings) + len(result.baselined)} grandfathered finding(s)"
        )
        return 0

    if args.json:
        report = render_json(result)
        if args.json == "-":
            print(report)
        else:
            Path(args.json).write_text(report + "\n", encoding="utf-8")
    print(render_text(result, verbose_baseline=args.show_baselined))
    return result.exit_code
