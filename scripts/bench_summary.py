#!/usr/bin/env python3
"""Aggregate the committed ``BENCH_*.json`` artifacts into one trajectory table.

Every benchmark (E10+) writes a machine-readable JSON file at the repo root;
each file pins the headline property of the PR that introduced it.  This
script collects them all into ``docs/BENCHMARKS.md`` so the performance
trajectory of the system is readable in one place instead of six artifacts:

    python scripts/bench_summary.py            # rewrite docs/BENCHMARKS.md
    python scripts/bench_summary.py --check    # fail if the doc is stale

``--check`` lets CI catch a benchmark artifact landing without the summary
being regenerated.  Unknown experiments (future PRs) still appear in the
table with their raw gate fields, so the script never needs to be updated in
lockstep with a new benchmark.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "docs" / "BENCHMARKS.md"

#: Experiment id → (PR that introduced it, one-line scope).
EXPERIMENTS = {
    "E10_cascade_latency": ("PR 1", "confidence-gated cascade vs exhaustive pipeline"),
    "E11_serving_throughput": ("PR 2", "execution backends sharding a corpus by table"),
    "E12_store_persistence": ("PR 3/4", "profile store reuse across process restarts"),
    "E13_shard_transport": ("PR 5", "zero-copy shm column blocks vs pickled shards"),
    "E14_frontend_slo": ("PR 6", "HTTP front end under overload (shedding + SLO degrade)"),
    "E15_columnar_kernels": ("PR 7", "block-native vectorized profiling & featurization"),
    "E16_net_transport": ("PR 8", "column blocks over TCP to remote block workers, chaos-hardened"),
    "E17_pool_routing": ("PR 10", "store-aware worker pool: warm routing vs blind round-robin, kill drill"),
}


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _headline(experiment: str, data: dict) -> str:
    """The one number each benchmark exists to pin, with its gate."""
    configs = data.get("configurations", [])
    if experiment == "E10_cascade_latency":
        by_name = {c.get("configuration", ""): c for c in configs}
        exhaustive = next((c for n, c in by_name.items() if n.startswith("exhaustive")), None)
        default = next((c for n, c in by_name.items() if "default" in n), None)
        if exhaustive and default:
            ratio = default["columns_per_second"] / exhaustive["columns_per_second"]
            return (
                f"cascade {default['columns_per_second']:,.0f} col/s vs exhaustive "
                f"{exhaustive['columns_per_second']:,.0f} ({ratio:.1f}x), "
                f"accuracy {default['accuracy']:.3f} (>= exhaustive's "
                f"{exhaustive['accuracy']:.3f})"
            )
    if experiment == "E11_serving_throughput":
        best = max(
            (c for c in configs if "speedup_vs_serial" in c),
            key=lambda c: c["speedup_vs_serial"],
            default=None,
        )
        if best:
            return (
                f"best backend {best['backend']}:{best['workers']} at "
                f"{best['speedup_vs_serial']:g}x serial "
                f"({best['columns_per_second']:,.0f} col/s, "
                f"{data.get('usable_cpus', '?')} usable CPU(s))"
            )
    if experiment == "E12_store_persistence":
        return (
            f"restart hit rate {data['restart_hit_rate']:.0%} "
            f"({data['restart_disk_hits']} of {data['flushed_entries']} flushed "
            f"entries served from disk, zero recomputation)"
        )
    if experiment == "E13_shard_transport":
        return (
            f"shm ships {data['bytes_per_shard_ratio']:,.0f}x fewer result bytes "
            f"per shard than pickle (gate {data['bytes_ratio_bar']:g}x), "
            f"{len(data.get('leaked_segments', []))} leaked segments"
        )
    if experiment == "E14_frontend_slo":
        return (
            f"HTTP capacity {data['http_capacity_per_second']:g}/s of serial "
            f"{data['serial_capacity_per_second']:g}/s; pending bounded at "
            f"{data['max_pending_total']} under 2x overload"
        )
    if experiment == "E15_columnar_kernels":
        return (
            f"block-native profiling+featurization {data['speedup']:g}x faster "
            f"than the rebuild path (gate {data['speedup_bar']:g}x), "
            f"predictions bit-identical"
        )
    if experiment == "E16_net_transport":
        chaos = next(
            (c for c in configs if "chaos" in c.get("configuration", "")), {}
        )
        return (
            f"loopback TCP bit-identical to serial; chaos run "
            f"({len(data.get('chaos_faults', []))} injected faults) also "
            f"bit-identical with {chaos.get('local_fallbacks', '?')} counted local "
            f"fallbacks, {len(data.get('leaked_segments', []))} leaked segments, "
            f"{len(data.get('leaked_sockets', []))} leaked sockets"
        )
    if experiment == "E17_pool_routing":
        drill = data.get("kill_drill", {})
        return (
            f"warm-routing affinity {data['affinity_hit_rate']:.0%} (gate 90%) vs "
            f"blind round-robin, predictions bit-identical on every leg; SIGKILL "
            f"drill re-dispatched {drill.get('redispatches', '?')} in-flight "
            f"requests with {drill.get('lost_requests', '?')} lost"
        )
    # Future experiments: surface any scalar that looks like a pinned gate.
    gates = {
        k: v
        for k, v in data.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    return ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(gates.items())) or "(see JSON)"


def _scale(experiment: str, data: dict) -> str:
    parts = []
    if "num_tables" in data:
        parts.append(f"{data['num_tables']} tables")
    if "num_columns" in data:
        parts.append(f"{data['num_columns']} columns")
    if "min_rows" in data and "max_rows" in data:
        parts.append(f"{data['min_rows']}-{data['max_rows']} rows")
    if "workers" in data:
        parts.append(f"{data['workers']} workers")
    return ", ".join(parts) or "—"


def render() -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "Generated by [`scripts/bench_summary.py`](../scripts/bench_summary.py)",
        "from the committed `BENCH_*.json` artifacts at the repo root — do not",
        "edit by hand.  Each experiment pins the headline property of the PR",
        "that introduced it and is re-asserted on every benchmark run (numbers",
        "below are from the last committed run of each; absolute timings vary",
        "with the machine, the *gates* do not).",
        "",
        "| Experiment | PR | What it measures | Scale | Headline (gated) |",
        "| --- | --- | --- | --- | --- |",
    ]
    artifacts = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not artifacts:
        raise SystemExit("no BENCH_*.json artifacts found at the repo root")
    rows = []
    for path in artifacts:
        data = json.loads(path.read_text(encoding="utf-8"))
        experiment = data.get("experiment", path.stem)
        pr, scope = EXPERIMENTS.get(experiment, ("—", "(new experiment)"))
        rows.append(
            (
                experiment,
                f"| `{experiment}` | {pr} | {scope} | {_scale(experiment, data)} "
                f"| {_headline(experiment, data)} |",
            )
        )
    lines.extend(row for _, row in sorted(rows))
    lines += [
        "",
        "Per-run human-readable tables live in `benchmarks/results/`; the",
        "benchmarks themselves (corpus seeds, gates, parity assertions) are in",
        "[`benchmarks/`](../benchmarks).",
        "",
    ]
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    content = render()
    if "--check" in argv:
        current = OUTPUT_PATH.read_text(encoding="utf-8") if OUTPUT_PATH.exists() else ""
        if current != content:
            print(
                f"{OUTPUT_PATH.relative_to(REPO_ROOT)} is stale — "
                "run: python scripts/bench_summary.py",
                file=sys.stderr,
            )
            return 1
        print(f"{OUTPUT_PATH.relative_to(REPO_ROOT)} is up to date")
        return 0
    OUTPUT_PATH.write_text(content, encoding="utf-8")
    print(f"wrote {OUTPUT_PATH.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
